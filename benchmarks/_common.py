"""Shared helpers for the per-figure benchmark drivers.

Every benchmark regenerates one figure of the paper at a reduced scale
(identical code paths, shorter simulated duration, fewer topologies) and
writes the resulting tables to ``benchmarks/output/<name>.txt`` so the
numbers can be inspected and compared against EXPERIMENTS.md after
``pytest benchmarks/ --benchmark-only``.

Scale knobs can be raised via environment variables:

* ``REPRO_BENCH_DURATION`` — simulated publish window per run (seconds);
* ``REPRO_BENCH_SEEDS`` — number of repeated topologies per data point.
"""

from __future__ import annotations

import os
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_duration(default: float) -> float:
    """The per-run simulated duration, overridable via the environment."""
    return float(os.environ.get("REPRO_BENCH_DURATION", default))


def bench_seeds(default: int) -> tuple:
    """The seed tuple, overridable via the environment."""
    count = int(os.environ.get("REPRO_BENCH_SEEDS", default))
    return tuple(range(count))


def save_report(name: str, text: str) -> Path:
    """Persist a rendered table and echo it to stdout."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path

"""Ablation bench: ACK-timeout factor and monitoring mode.

These are the two design decisions DESIGN.md §2 documents; the bench pins
their measured cost so regressions in either trade-off are caught.
"""

from repro.extensions.ablations import ack_timeout_ablation, monitoring_mode_ablation
from repro.experiments.report import render_sweep

from _common import bench_duration, bench_seeds, save_report


def run():
    timeout = ack_timeout_ablation(
        duration=bench_duration(15.0), seeds=bench_seeds(1), factors=(2.0, 3.0, 4.0)
    )
    monitoring = monitoring_mode_ablation(
        duration=bench_duration(15.0), seeds=bench_seeds(1)
    )
    return timeout, monitoring


def test_ablations(benchmark):
    timeout, monitoring = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        render_sweep(timeout, "qos_delivery_ratio")
        + "\n\n"
        + render_sweep(monitoring, "qos_delivery_ratio")
    )
    save_report("ablations", text)
    # Patience burns deadline budget: QoS decreases with the factor.
    qos = timeout.series("DCRD", "qos_delivery_ratio")
    assert qos[0] >= qos[-1]
    # Probe-based monitoring costs at most a couple of points.
    analytic = monitoring.cell("analytic", "DCRD").qos_delivery_ratio
    sampled = monitoring.cell("sampled", "DCRD").qos_delivery_ratio
    assert abs(analytic - sampled) < 0.05

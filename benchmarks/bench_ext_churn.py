"""Extension bench: subscriber churn under the paper's failure setting."""

from repro.extensions.churn import churn_study
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report


def run():
    return churn_study(
        duration=bench_duration(15.0),
        seeds=bench_seeds(1),
        churn_rates=(0.0, 2.0, 8.0),
    )


def test_churn(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_churn",
        render_panels(result, ("delivery_ratio", "qos_delivery_ratio")),
    )
    # Churn must not break correctness: delivery stays high at every rate.
    for rate in result.x_values:
        assert result.cell(rate, "DCRD").delivery_ratio > 0.95

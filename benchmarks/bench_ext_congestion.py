"""Ablation bench: congestion collapse and the adaptive-RTO fix.

Not a paper figure — DESIGN.md §2 calls out the ACK-timer interpretation as
this reproduction's main design decision, and this bench quantifies its
consequence on finite-capacity links: the static timer melts down under
load, the Jacobson/Karn variant tracks the fixed tree.
"""

from repro.extensions.congestion import congestion_study
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report


def run():
    return congestion_study(
        duration=bench_duration(10.0),
        seeds=bench_seeds(1),
        publish_intervals=(1.0, 0.25, 0.125),
    )


def test_congestion_ablation(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_congestion",
        render_panels(result, ("qos_delivery_ratio", "packets_per_subscriber")),
    )
    # Regime 1 (mis-calibration): even at light load the static timer
    # melts down while the adaptive variant matches the tree.
    light = result.x_values[0]
    static = result.cell(light, "DCRD")
    adaptive = result.cell(light, "DCRD+adaptive")
    dtree = result.cell(light, "D-Tree")
    assert static.qos_delivery_ratio < 0.5
    assert static.packets_per_subscriber > 3 * dtree.packets_per_subscriber
    assert adaptive.qos_delivery_ratio >= dtree.qos_delivery_ratio - 0.02
    assert adaptive.packets_per_subscriber < 1.2 * dtree.packets_per_subscriber
    # At every load level the adaptive timer dominates the static one
    # (the saturated regime is metastable, so no tree comparison there).
    for x in result.x_values:
        assert (
            result.cell(x, "DCRD+adaptive").qos_delivery_ratio
            >= result.cell(x, "DCRD").qos_delivery_ratio
        )

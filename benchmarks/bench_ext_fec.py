"""Extension bench: FEC redundancy vs duplication vs dynamic rerouting."""

from repro.extensions.fec import fec_study
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report


def run():
    return fec_study(
        duration=bench_duration(15.0),
        seeds=bench_seeds(1),
        failure_probabilities=(0.0, 0.06, 0.1),
    )


def test_fec(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_fec",
        render_panels(
            result,
            ("delivery_ratio", "qos_delivery_ratio", "traffic_per_subscriber"),
        ),
    )
    worst = result.x_values[-1]
    fec = result.cell(worst, "FEC")
    multipath = result.cell(worst, "Multipath")
    dcrd = result.cell(worst, "DCRD")
    dtree = result.cell(worst, "D-Tree")
    # Redundancy beats no redundancy, dynamic rerouting beats both.
    assert fec.delivery_ratio > dtree.delivery_ratio
    assert dcrd.delivery_ratio >= fec.delivery_ratio
    # The (3, 2) code is cheaper in volume than full duplication.
    assert fec.traffic_per_subscriber < multipath.traffic_per_subscriber

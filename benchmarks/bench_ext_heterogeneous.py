"""Extension bench: Theorem 1's ordering under heterogeneous link loss.

With uniform loss (the paper's setting) the d/r sort nearly coincides with
a delay sort; drawing each link's loss independently makes the two orders
diverge and measures the theorem's runtime value against the
delay-only-ordered ablation (``DCRD-naive-order``).
"""

from repro.extensions.heterogeneous import heterogeneity_study
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report


def run():
    return heterogeneity_study(
        duration=bench_duration(20.0),
        seeds=bench_seeds(2),
        spreads=((0.1, 0.1), (0.0, 0.3)),
    )


def test_heterogeneity(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_heterogeneous",
        render_panels(result, ("qos_delivery_ratio", "packets_per_subscriber")),
    )
    spread = result.x_values[-1]
    theorem = result.cell(spread, "DCRD")
    naive = result.cell(spread, "DCRD-naive-order")
    # Trying clean links first wastes fewer transmissions.
    assert theorem.packets_per_subscriber <= naive.packets_per_subscriber
    assert theorem.qos_delivery_ratio >= naive.qos_delivery_ratio - 0.03

"""Extension bench: node failures (the paper's §V future-work study)."""

from repro.extensions.node_failures import node_failure_study
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report


def run():
    return node_failure_study(
        duration=bench_duration(15.0),
        seeds=bench_seeds(1),
        probabilities=(0.0, 0.02, 0.06),
    )


def test_node_failures(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_node_failures",
        render_panels(result, ("delivery_ratio", "qos_delivery_ratio")),
    )
    worst = result.x_values[-1]
    dcrd = result.cell(worst, "DCRD")
    dtree = result.cell(worst, "D-Tree")
    # DCRD bypasses crashed next-hops like failed links.
    assert dcrd.delivery_ratio > dtree.delivery_ratio

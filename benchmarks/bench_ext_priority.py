"""Extension bench: priority queueing (EDF / drop-expired) under load."""

from repro.extensions.priority import priority_queueing_study
from repro.experiments.report import render_sweep

from _common import bench_duration, bench_seeds, save_report


def run():
    return priority_queueing_study(
        duration=bench_duration(15.0),
        seeds=bench_seeds(1),
        publish_intervals=(0.5, 0.0625),
    )


def test_priority_queueing(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(
        render_sweep(results[mode], "qos_delivery_ratio") for mode in results
    )
    save_report("ext_priority", text)
    overload = 0.0625
    fifo = results["fifo"].cell(overload, "P-DTree")
    edf = results["edf"].cell(overload, "P-DTree")
    drop = results["edf+drop"].cell(overload, "P-DTree")
    # EDF alone cannot beat the overload; dropping expired frames can —
    # at the price of delivery ratio.
    assert drop.qos_delivery_ratio > max(fifo.qos_delivery_ratio, edf.qos_delivery_ratio)
    assert drop.delivery_ratio < edf.delivery_ratio

"""Microbenchmark: subscription-subgroup fan-out at 100k subscriptions.

Not a paper figure — this pins the cost of answering the data plane's
publish-time question ("who subscribes to this topic, with what
deadlines?") at a scale two orders of magnitude past the paper's
experiments: 100,000 (topic, subscriber) pairs.

Two implementations are compared on identical workloads:

* **brute force** — what every publish did before the shared
  :class:`~repro.pubsub.topics.SubscriptionIndex` existed: rebuild the
  destination frozenset and the deadline map from the topic's
  subscription specs on every publish;
* **subgrouped** — one indexed lookup against the per-(broker, topic)
  aggregation the index performs once per workload version.

The subgrouped path must win by a wide margin (it does no per-publish
work proportional to the subscriber count), and both paths must agree on
every topic's destination set and deadline map.
"""

import numpy as np

from repro.perf import time_call
from repro.pubsub.topics import Subscription, SubscriptionIndex, TopicSpec, Workload

from _common import save_report

NUM_NODES = 2000
NUM_TOPICS = 500
SUBSCRIBERS_PER_TOPIC = 200  # 500 * 200 = 100,000 subscriptions
PUBLISHES = 20_000


def build_workload() -> Workload:
    """500 topics x 200 subscribers drawn from a 2000-node population."""
    rng = np.random.default_rng(42)
    topics = []
    for topic in range(NUM_TOPICS):
        publisher = int(rng.integers(NUM_NODES))
        nodes = rng.choice(NUM_NODES, size=SUBSCRIBERS_PER_TOPIC, replace=False)
        subscriptions = tuple(
            Subscription(node=int(node), deadline=float(deadline))
            for node, deadline in sorted(
                zip(nodes.tolist(), rng.uniform(0.1, 2.0, SUBSCRIBERS_PER_TOPIC))
            )
        )
        topics.append(
            TopicSpec(topic=topic, publisher=publisher, subscriptions=subscriptions)
        )
    return Workload(topics=topics)


def test_fanout_subgrouping(benchmark):
    workload = build_workload()
    assert workload.total_subscriptions == NUM_TOPICS * SUBSCRIBERS_PER_TOPIC

    specs = {spec.topic: spec for spec in workload.topics}
    schedule = [t % NUM_TOPICS for t in range(PUBLISHES)]

    def brute_force():
        total = 0
        for topic in schedule:
            spec = specs[topic]
            destinations = frozenset(sub.node for sub in spec.subscriptions)
            deadlines = {sub.node: sub.deadline for sub in spec.subscriptions}
            total += len(destinations) + len(deadlines)
        return total

    index = workload.index()

    def subgrouped():
        refresh = index.refresh
        destinations = index._destinations
        deadlines = index._deadlines
        total = 0
        for topic in schedule:
            refresh()
            total += len(destinations[topic]) + len(deadlines[topic])
        return total

    # Both paths must resolve identical fan-outs before timing anything.
    for topic, spec in specs.items():
        assert index.destinations(topic) == frozenset(
            sub.node for sub in spec.subscriptions
        )
        assert index.deadlines(topic) == {
            sub.node: sub.deadline for sub in spec.subscriptions
        }
        assert index.bits(topic) == sum(
            1 << sub.node for sub in spec.subscriptions
        )

    # Interleaved best-of-5 so a transient load spike hits both sides.
    brute_s = grouped_s = float("inf")
    for _ in range(5):
        elapsed, brute_total = time_call(brute_force)
        brute_s = min(brute_s, elapsed)
        elapsed, grouped_total = time_call(subgrouped)
        grouped_s = min(grouped_s, elapsed)
    assert brute_total == grouped_total
    speedup = brute_s / grouped_s

    lines = [
        "Publish fan-out resolution at 100k subscriptions "
        f"({NUM_TOPICS} topics x {SUBSCRIBERS_PER_TOPIC} subscribers, "
        f"{PUBLISHES} publishes)",
        f"  brute force (per-publish rebuild)  {brute_s * 1000.0:9.2f} ms",
        f"  subgrouped  (indexed lookup)       {grouped_s * 1000.0:9.2f} ms",
        f"  speedup                            {speedup:9.2f}x",
    ]
    save_report("fanout_subgroups", "\n".join(lines))

    benchmark.pedantic(subgrouped, rounds=1, iterations=1)
    assert speedup >= 10.0, f"expected >= 10x, measured {speedup:.2f}x"

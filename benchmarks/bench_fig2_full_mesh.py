"""Figure 2: full-mesh overlay, failure probability 0 → 0.1.

Paper shapes to reproduce: DCRD and ORACLE deliver ~100% everywhere;
R-Tree > D-Tree and both degrade with Pf; Multipath in between; R-Tree
sends exactly 1 packet/subscriber; Multipath sends by far the most.
"""

from repro.experiments.figures import PANEL_METRICS, figure2
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report


def run():
    result = figure2(duration=bench_duration(20.0), seeds=bench_seeds(2))
    save_report("fig2_full_mesh", render_panels(result, PANEL_METRICS))
    return result


def test_figure2(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    dcrd = result.series("DCRD", "delivery_ratio")
    dtree = result.series("D-Tree", "delivery_ratio")
    # DCRD keeps delivering as failures rise; the fixed tree does not.
    assert min(dcrd) > 0.99
    assert dtree[-1] < 0.95

"""Figure 3: degree-5 overlay, failure probability 0 → 0.1.

Paper shapes: DCRD's delivery ratio stays near the full-mesh case while
the fixed-path baselines drop several points below their full-mesh
numbers; DCRD still beats R-Tree/D-Tree/Multipath on QoS delivery.
"""

from repro.experiments.figures import PANEL_METRICS, figure3
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report


def run():
    result = figure3(duration=bench_duration(20.0), seeds=bench_seeds(2))
    save_report("fig3_degree5", render_panels(result, PANEL_METRICS))
    return result


def test_figure3(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    worst_pf = result.x_values[-1]
    cell = result.cells[worst_pf]
    assert cell["DCRD"].qos_delivery_ratio > cell["D-Tree"].qos_delivery_ratio
    assert cell["DCRD"].qos_delivery_ratio > cell["R-Tree"].qos_delivery_ratio
    # Multipath pays roughly double traffic for its redundancy.
    assert (
        cell["Multipath"].packets_per_subscriber
        > 1.5 * cell["DCRD"].packets_per_subscriber
    )

"""Figure 4: node degree 3 → 10 at Pf = 0.06.

Paper shapes: degree >= 5 performs close to the full mesh for DCRD
(QoS within a few points of ORACLE); at degree 3 every strategy
collapses because failure-free in-budget paths stop existing.
"""

from repro.experiments.figures import PANEL_METRICS, figure4
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report


def run():
    result = figure4(duration=bench_duration(20.0), seeds=bench_seeds(1))
    save_report("fig4_connectivity", render_panels(result, PANEL_METRICS))
    return result


def test_figure4(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    dcrd = result.series("DCRD", "qos_delivery_ratio")
    degrees = result.x_values
    by_degree = dict(zip(degrees, dcrd))
    # Well-connected overlays approach full-mesh behaviour...
    assert by_degree[8] > 0.90
    # ...and sparse ones are strictly harder.
    assert by_degree[3] < by_degree[8]
    # DCRD trails the clairvoyant oracle but not by much at high degree.
    oracle = dict(zip(degrees, result.series("ORACLE", "qos_delivery_ratio")))
    assert by_degree[10] > oracle[10] - 0.08

"""Figure 5: network size 10 → 160 at degree 8, Pf = 0.06.

Paper shapes: with a fixed degree, all strategies degrade as the overlay
(and hence path length) grows; DCRD stays within a few points of ORACLE
while the fixed trees fall away; DCRD's relative traffic overhead grows
with size (longer detours) but stays below Multipath.

The benchmark's default sizes stop at 80 nodes to keep the run short;
set ``REPRO_BENCH_FULL_FIG5=1`` for the paper's full {10..160} axis.

Set ``REPRO_BENCH_MEGA_FIG5=1`` for the mega-scale tier: DCRD alone on
1000- and 2000-node overlays (the flat index-addressed data plane's
design point), reporting the kernel event rate next to the delivery
metrics. The mega tier runs DCRD directly rather than the five-strategy
sweep — at these sizes the table solve dominates wall time, so the
workload is thinned (few topics, sparse subscriptions, one monitoring
epoch) to keep the run about the data plane.
"""

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import NETWORK_SIZES, PANEL_METRICS, figure5
from repro.experiments.report import render_panels
from repro.experiments.runner import build_environment

from _common import bench_duration, bench_seeds, save_report

SIZES = NETWORK_SIZES if os.environ.get("REPRO_BENCH_FULL_FIG5") else (10, 20, 40, 80)

MEGA = bool(os.environ.get("REPRO_BENCH_MEGA_FIG5"))
MEGA_SIZES = (1000, 2000)


def mega_config(size: int) -> ExperimentConfig:
    """Figure-5 hazard shape at mega scale, thinned to data-plane cost."""
    return ExperimentConfig(
        duration=bench_duration(5.0),
        drain=4.0,
        topology_kind="regular",
        degree=8,
        num_nodes=size,
        failure_probability=0.06,
        num_topics=4,
        ps_range=(0.01, 0.03),
        monitor_period=300.0,
    )


def run_mega():
    rows = {}
    for size in MEGA_SIZES:
        config = mega_config(size)
        for seed in bench_seeds(1):
            summary = build_environment(config, "DCRD", seed).execute()
            rows[size] = summary
    lines = [
        "Figure 5 mega tier: DCRD at degree 8, Pf = 0.06",
        f"{'nodes':>6} {'delivery':>9} {'qos':>9} {'events/s':>10} "
        f"{'events':>9} {'elided':>7} {'fallbacks':>9}",
    ]
    for size, summary in rows.items():
        perf = summary.perf
        lines.append(
            f"{size:>6} {summary.delivery_ratio:>9.4f} "
            f"{summary.qos_delivery_ratio:>9.4f} "
            f"{perf.get('sim.events_per_s', 0.0):>10.0f} "
            f"{perf['sim.events_processed']:>9.0f} "
            f"{perf['arq.timers_elided']:>7.0f} "
            f"{perf['flat.dir_fallbacks']:>9.0f}"
        )
    save_report("fig5_mega", "\n".join(lines))
    return rows


def run():
    result = figure5(
        duration=bench_duration(10.0), seeds=bench_seeds(1), sizes=SIZES
    )
    save_report("fig5_scalability", render_panels(result, PANEL_METRICS))
    return result


def test_figure5(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    sizes = result.x_values
    dcrd = dict(zip(sizes, result.series("DCRD", "delivery_ratio")))
    dtree = dict(zip(sizes, result.series("D-Tree", "delivery_ratio")))
    largest = sizes[-1]
    # Longer paths hurt the fixed tree far more than DCRD.
    assert dcrd[largest] > dtree[largest]
    assert dcrd[largest] > 0.97


@pytest.mark.skipif(not MEGA, reason="set REPRO_BENCH_MEGA_FIG5=1 to run")
def test_figure5_mega(benchmark):
    rows = benchmark.pedantic(run_mega, rounds=1, iterations=1)
    for size, summary in rows.items():
        # DCRD keeps its delivery guarantee at the mega scale, and the
        # whole run stays on the flat fast path (no facade fallbacks).
        assert summary.delivery_ratio > 0.97, size
        assert summary.perf["flat.dir_fallbacks"] == 0.0, size

"""Figure 5: network size 10 → 160 at degree 8, Pf = 0.06.

Paper shapes: with a fixed degree, all strategies degrade as the overlay
(and hence path length) grows; DCRD stays within a few points of ORACLE
while the fixed trees fall away; DCRD's relative traffic overhead grows
with size (longer detours) but stays below Multipath.

The benchmark's default sizes stop at 80 nodes to keep the run short;
set ``REPRO_BENCH_FULL_FIG5=1`` for the paper's full {10..160} axis.
"""

import os

from repro.experiments.figures import NETWORK_SIZES, PANEL_METRICS, figure5
from repro.experiments.report import render_panels

from _common import bench_duration, bench_seeds, save_report

SIZES = NETWORK_SIZES if os.environ.get("REPRO_BENCH_FULL_FIG5") else (10, 20, 40, 80)


def run():
    result = figure5(
        duration=bench_duration(10.0), seeds=bench_seeds(1), sizes=SIZES
    )
    save_report("fig5_scalability", render_panels(result, PANEL_METRICS))
    return result


def test_figure5(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    sizes = result.x_values
    dcrd = dict(zip(sizes, result.series("DCRD", "delivery_ratio")))
    dtree = dict(zip(sizes, result.series("D-Tree", "delivery_ratio")))
    largest = sizes[-1]
    # Longer paths hurt the fixed tree far more than DCRD.
    assert dcrd[largest] > dtree[largest]
    assert dcrd[largest] > 0.97

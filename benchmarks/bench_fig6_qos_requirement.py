"""Figure 6: QoS delivery ratio vs deadline multiplier (degree 8, Pf = 0.06).

Paper shapes: DCRD's QoS ratio climbs steeply as the requirement loosens
(≈ +4% from 1.5x to 2x, ≈ +4% more to 3x, near-perfect at 4x+); the fixed
trees barely move because their failures are not lateness; Multipath wins
only at the tightest (1.5x) requirement, then DCRD overtakes it.
"""

from repro.experiments.figures import figure6
from repro.experiments.report import render_sweep

from _common import bench_duration, bench_seeds, save_report


def run():
    result = figure6(duration=bench_duration(20.0), seeds=bench_seeds(2))
    save_report("fig6_qos_requirement", render_sweep(result, "qos_delivery_ratio"))
    return result


def test_figure6(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    dcrd = dict(zip(result.x_values, result.series("DCRD", "qos_delivery_ratio")))
    # Looser deadlines monotonically help DCRD (modulo sampling noise).
    assert dcrd[6.0] >= dcrd[1.5]
    assert dcrd[4.0] > 0.93
    # The fixed trees barely benefit from looser deadlines.
    dtree = result.series("D-Tree", "qos_delivery_ratio")
    assert max(dtree) - min(dtree) < 0.08

"""Figure 7: CDF of normalised delay of DCRD's deadline-missing packets.

Paper shapes (Pf = 0.06): roughly half of the late packets arrive within
25% past the deadline; ~78% within 50% past it on the full mesh, a bit
less (~70%) at degree 8; the tail is short — late packets are only
slightly late, because DCRD found *an* alternate path, just not in time.
"""

from repro.experiments.figures import figure7
from repro.experiments.report import render_cdf

from _common import bench_duration, bench_seeds, save_report


def run():
    return figure7(duration=bench_duration(120.0), seeds=bench_seeds(3))


def test_figure7(benchmark):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig7_delay_cdf", render_cdf(curves))
    for label, (grid, values) in curves.items():
        lookup = dict(zip(grid, values))
        # A substantial share of late packets lands within 50% of the
        # requirement past the deadline, and the CDF is monotone.
        assert lookup[1.5] > 0.3, label
        assert values == sorted(values), label

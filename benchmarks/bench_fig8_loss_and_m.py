"""Figure 8: QoS ratio vs packet-loss rate for m = 1 and m = 2 (Pf = 0.01).

Paper shapes: while Pl ≪ Pf, DCRD prefers m = 1 (switching beats futile
retransmission on a failed link); once Pl grows to ~Pf and beyond, the
m = 2 budget recovers genuine random losses and the tree/Multipath
baselines gain 1–2% from retransmissions.
"""

from repro.experiments.figures import figure8
from repro.experiments.report import render_sweep

from _common import bench_duration, bench_seeds, save_report


def run():
    return figure8(duration=bench_duration(30.0), seeds=bench_seeds(2))


def test_figure8(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(
        render_sweep(results[m], "qos_delivery_ratio") for m in sorted(results)
    )
    save_report("fig8_loss_and_m", text)
    heavy_loss = 1e-1
    for name in ("DCRD", "D-Tree"):
        m1 = dict(zip(results[1].x_values, results[1].series(name, "qos_delivery_ratio")))
        m2 = dict(zip(results[2].x_values, results[2].series(name, "qos_delivery_ratio")))
        # Under heavy random loss, the retransmission budget helps everyone.
        assert m2[heavy_loss] > m1[heavy_loss] - 0.02, name
    # Loss is the dominant axis: heavy loss hurts m=1 QoS notably.
    dcrd_m1 = dict(zip(results[1].x_values, results[1].series("DCRD", "qos_delivery_ratio")))
    assert dcrd_m1[1e-4] > dcrd_m1[1e-1]

"""Microbenchmarks of the substrate itself (not a paper figure).

These pin the performance of the three hot paths so regressions show up in
``--benchmark-compare`` runs: raw event throughput of the kernel, the
``<d, r>`` fixed-point solver at Figure-5 scale, and one full DCRD run at
the paper's default scale.
"""

import os

import numpy as np

from repro import probes
from repro.core.computation import ControlPlaneSolver, compute_dr_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment, run_single
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkEstimate, LinkMonitor
from repro.overlay.topology import random_regular
from repro.perf import time_call
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

from _common import bench_duration, save_report

#: Events/sec of the data-plane benchmark scenario measured at the commit
#: immediately before the fast path landed (tuple-keyed heap, frame fast
#: copies, hot-loop caching), on the reference machine: best of 6
#: interleaved old/new rounds so both sides saw the same load. Overridable
#: for other machines via ``REPRO_BENCH_BASELINE_EPS``.
DATA_PLANE_BASELINE_EPS = float(
    os.environ.get("REPRO_BENCH_BASELINE_EPS", 52_015.0)
)


def test_event_throughput(benchmark):
    """Schedule-and-run one million chained events."""

    def run():
        sim = Simulator()
        remaining = [200_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(0.001, tick)

        for _ in range(5):
            sim.schedule(0.0, tick)
        sim.run()
        return sim.processed_events

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events >= 200_000


def test_dr_table_solver_at_scale(benchmark):
    """One 160-node degree-8 pair solve (Figure 5's hardest setting)."""
    rng = np.random.default_rng(0)
    topology = random_regular(160, 8, rng)
    estimates = {
        edge: LinkEstimate(alpha=topology.delay(*edge), gamma=0.94)
        for edge in topology.edges()
    }

    def run():
        return compute_dr_table(
            topology, estimates, publisher=0, subscriber=159, deadline=0.5
        )

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert table.reachable(0)


def _control_plane_workload(num_pairs=24, num_publishers=5):
    """A Figure-5-scale refresh scenario for the control-plane benchmark.

    160 nodes at degree 8, sampled-mode monitoring at the default loss
    rate, *num_pairs* (publisher, subscriber, deadline) pairs spread over
    *num_publishers* publishers. Only pairs whose cold table converges are
    used (the strategy never warm-starts from a non-converged table, so a
    non-converged pair would just benchmark two identical cold solves).
    """
    rng = np.random.default_rng(7)
    topology = random_regular(160, 8, rng)
    streams = RandomStreams(7)
    sim = Simulator()
    network = OverlayNetwork(sim, topology, streams, loss_rate=1e-4)
    monitor = LinkMonitor(topology, network, streams, mode="sampled")

    publishers = list(range(num_publishers))
    cold_solver = ControlPlaneSolver(topology, monitor.estimates())
    pairs, previous = [], {}
    subscriber = 10
    while len(pairs) < num_pairs and subscriber < topology.num_nodes:
        publisher = publishers[len(pairs) % num_publishers]
        if subscriber not in publishers:
            deadline = 2.5 * topology.shortest_delay(publisher, subscriber)
            table = cold_solver.solve(publisher, subscriber, deadline)
            if table.converged:
                pairs.append((publisher, subscriber, deadline))
                previous[(publisher, subscriber)] = table
        subscriber += 1
    assert len(pairs) >= 20, "workload could not assemble 20 converged pairs"

    monitor.refresh()  # the timed event: one monitoring cycle later
    return topology, monitor.snapshot(), monitor.last_changed, pairs, previous


def test_control_plane_batched_refresh(benchmark):
    """Incremental batched refresh vs per-pair from-scratch solving.

    The scenario is one monitoring refresh at Figure-5 scale: 24 standing
    (publisher, subscriber) pairs sharing 5 publishers must be re-solved
    against the new estimates. The baseline rebuilds every table from
    scratch (one :func:`compute_dr_table` per pair, exactly what
    ``DcrdStrategy`` did before batching); the incremental path shares one
    :class:`ControlPlaneSolver`, skips tables no changed edge can reach,
    and warm-starts the rest from the previous tables.
    """
    topology, estimates, changed, pairs, previous = _control_plane_workload()

    def from_scratch():
        return [
            compute_dr_table(topology, estimates, pub, sub, deadline)
            for pub, sub, deadline in pairs
        ]

    def incremental():
        solver = ControlPlaneSolver(topology, estimates)
        tables = []
        for pub, sub, deadline in pairs:
            warm = previous[(pub, sub)]
            if not solver.table_affected(pub, deadline, changed):
                tables.append(warm)
                continue
            tables.append(
                solver.solve(pub, sub, deadline, warm=warm, changed_edges=changed)
            )
        return tables

    # Interleave the two measurements so a transient load spike degrades
    # both sides instead of silently skewing the ratio.
    before_s = after_s = float("inf")
    cold_tables = warm_tables = None
    for _ in range(5):
        elapsed, cold_tables = time_call(from_scratch)
        before_s = min(before_s, elapsed)
        elapsed, warm_tables = time_call(incremental)
        after_s = min(after_s, elapsed)
    speedup = before_s / after_s

    # The incremental tables must route identically to the from-scratch
    # ones: same sending-list orders and the same reachability everywhere.
    for cold, warm in zip(cold_tables, warm_tables):
        for node in topology.nodes:
            assert (
                cold.states[node].neighbor_order == warm.states[node].neighbor_order
            )
            assert cold.reachable(node) == warm.reachable(node)

    lines = [
        "Control-plane refresh at Figure-5 scale "
        "(160 nodes, degree 8, sampled monitoring)",
        f"  standing pairs          {len(pairs)} "
        f"(sharing {len({p for p, _, _ in pairs})} publishers)",
        f"  changed link estimates  {len(changed)} of {len(estimates)}",
        f"  from-scratch (before)   {before_s * 1000.0:8.2f} ms",
        f"  incremental  (after)    {after_s * 1000.0:8.2f} ms",
        f"  speedup                 {speedup:8.2f}x",
    ]
    save_report("control_plane", "\n".join(lines))

    benchmark.pedantic(incremental, rounds=3, iterations=1)
    assert speedup >= 3.0, f"expected >= 3x speedup, measured {speedup:.2f}x"


def test_data_plane_fast_path(benchmark):
    """End-to-end data-plane throughput at Figure-5's hardest scale.

    One full DCRD run on a 160-node degree-8 overlay; the timed region is
    ``execute()`` only (construction excluded), reported as processed
    events per wall-clock second. Best-of-N defeats transient load spikes.
    At the full default duration the measurement must stay >= 2x the
    recorded pre-fast-path baseline; smoke runs (a reduced
    ``REPRO_BENCH_DURATION``) report the numbers without asserting, since
    short runs amortise startup badly and CI machines vary.
    """
    duration = bench_duration(10.0)
    config = ExperimentConfig(
        topology_kind="regular",
        degree=8,
        num_nodes=160,
        num_topics=4,
        publish_interval=0.2,
        failure_probability=0.06,
        duration=duration,
    )
    full_scale = duration >= 10.0
    rounds = 5 if full_scale else 2

    # Probe-overhead guard: with no observer attached, every repro.probes
    # slot must be the literal None, so the timed region measures the
    # zero-observer fast path — one ``is not None`` test per hook site.
    # The >= 2x floor below then doubles as the overhead regression gate
    # against the baseline recorded before the bus existed.
    assert probes.observers() == ()
    for family in probes.FAMILIES:
        assert getattr(probes, "on_" + family) is None

    best_eps, events, summary = 0.0, 0, None
    for _ in range(rounds):
        env = build_environment(config, "DCRD", seed=0)
        elapsed, summary = time_call(env.execute)
        events = env.ctx.sim.processed_events
        best_eps = max(best_eps, events / elapsed)

    speedup = best_eps / DATA_PLANE_BASELINE_EPS
    perf = summary.perf
    lines = [
        "Data-plane fast path (160 nodes, degree 8, DCRD, seed 0, "
        f"duration {duration:g}s)",
        f"  events per run            {events}",
        f"  best of {rounds} rounds          {best_eps:10.0f} events/s",
        f"  pre-change baseline       {DATA_PLANE_BASELINE_EPS:10.0f} events/s"
        " (best of 6 interleaved rounds)",
        f"  speedup                   {speedup:10.2f}x",
        f"  heap compactions          {perf['sim.heap_compactions']:10.0f}",
        f"  tombstones reaped         {perf['sim.tombstones_reaped']:10.0f}",
        f"  ACK timers cancelled      {perf['arq.timers_cancelled']:10.0f}",
        f"  ACK timers elided         {perf['arq.timers_elided']:10.0f}",
        f"  frames forwarded          {perf['data_plane.frames_forwarded']:10.0f}",
        f"  interned directions       {perf['flat.interned_directions']:10.0f}",
        f"  facade fallbacks          {perf['flat.dir_fallbacks']:10.0f}",
    ]
    save_report("data_plane", "\n".join(lines))

    # The timed region must never have left the flat index-addressed
    # path: a steady-state run resolves every direction once at prewarm
    # and each send thereafter is a compiled-closure dispatch.
    assert perf["flat.dir_fallbacks"] == 0.0

    benchmark.pedantic(
        lambda: build_environment(config, "DCRD", seed=0).execute(),
        rounds=1,
        iterations=1,
    )
    assert summary.delivery_ratio > 0.9
    if full_scale:
        assert speedup >= 2.0, (
            f"data-plane fast path regressed: {best_eps:.0f} events/s is "
            f"{speedup:.2f}x the recorded baseline "
            f"{DATA_PLANE_BASELINE_EPS:.0f} (need >= 2x)"
        )


def test_full_dcrd_run(benchmark):
    """A complete 20-node DCRD run at the paper's default setting."""
    config = ExperimentConfig(
        topology_kind="regular", degree=5, failure_probability=0.06, duration=30.0
    )

    def run():
        return run_single(config, "DCRD", seed=0)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summary.delivery_ratio > 0.95

"""Microbenchmarks of the substrate itself (not a paper figure).

These pin the performance of the three hot paths so regressions show up in
``--benchmark-compare`` runs: raw event throughput of the kernel, the
``<d, r>`` fixed-point solver at Figure-5 scale, and one full DCRD run at
the paper's default scale.
"""

import numpy as np

from repro.core.computation import ControlPlaneSolver, compute_dr_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkEstimate, LinkMonitor
from repro.overlay.topology import random_regular
from repro.perf import time_call
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

from _common import save_report


def test_event_throughput(benchmark):
    """Schedule-and-run one million chained events."""

    def run():
        sim = Simulator()
        remaining = [200_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(0.001, tick)

        for _ in range(5):
            sim.schedule(0.0, tick)
        sim.run()
        return sim.processed_events

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events >= 200_000


def test_dr_table_solver_at_scale(benchmark):
    """One 160-node degree-8 pair solve (Figure 5's hardest setting)."""
    rng = np.random.default_rng(0)
    topology = random_regular(160, 8, rng)
    estimates = {
        edge: LinkEstimate(alpha=topology.delay(*edge), gamma=0.94)
        for edge in topology.edges()
    }

    def run():
        return compute_dr_table(
            topology, estimates, publisher=0, subscriber=159, deadline=0.5
        )

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert table.reachable(0)


def _control_plane_workload(num_pairs=24, num_publishers=5):
    """A Figure-5-scale refresh scenario for the control-plane benchmark.

    160 nodes at degree 8, sampled-mode monitoring at the default loss
    rate, *num_pairs* (publisher, subscriber, deadline) pairs spread over
    *num_publishers* publishers. Only pairs whose cold table converges are
    used (the strategy never warm-starts from a non-converged table, so a
    non-converged pair would just benchmark two identical cold solves).
    """
    rng = np.random.default_rng(7)
    topology = random_regular(160, 8, rng)
    streams = RandomStreams(7)
    sim = Simulator()
    network = OverlayNetwork(sim, topology, streams, loss_rate=1e-4)
    monitor = LinkMonitor(topology, network, streams, mode="sampled")

    publishers = list(range(num_publishers))
    cold_solver = ControlPlaneSolver(topology, monitor.estimates())
    pairs, previous = [], {}
    subscriber = 10
    while len(pairs) < num_pairs and subscriber < topology.num_nodes:
        publisher = publishers[len(pairs) % num_publishers]
        if subscriber not in publishers:
            deadline = 2.5 * topology.shortest_delay(publisher, subscriber)
            table = cold_solver.solve(publisher, subscriber, deadline)
            if table.converged:
                pairs.append((publisher, subscriber, deadline))
                previous[(publisher, subscriber)] = table
        subscriber += 1
    assert len(pairs) >= 20, "workload could not assemble 20 converged pairs"

    monitor.refresh()  # the timed event: one monitoring cycle later
    return topology, monitor.snapshot(), monitor.last_changed, pairs, previous


def test_control_plane_batched_refresh(benchmark):
    """Incremental batched refresh vs per-pair from-scratch solving.

    The scenario is one monitoring refresh at Figure-5 scale: 24 standing
    (publisher, subscriber) pairs sharing 5 publishers must be re-solved
    against the new estimates. The baseline rebuilds every table from
    scratch (one :func:`compute_dr_table` per pair, exactly what
    ``DcrdStrategy`` did before batching); the incremental path shares one
    :class:`ControlPlaneSolver`, skips tables no changed edge can reach,
    and warm-starts the rest from the previous tables.
    """
    topology, estimates, changed, pairs, previous = _control_plane_workload()

    def from_scratch():
        return [
            compute_dr_table(topology, estimates, pub, sub, deadline)
            for pub, sub, deadline in pairs
        ]

    def incremental():
        solver = ControlPlaneSolver(topology, estimates)
        tables = []
        for pub, sub, deadline in pairs:
            warm = previous[(pub, sub)]
            if not solver.table_affected(pub, deadline, changed):
                tables.append(warm)
                continue
            tables.append(
                solver.solve(pub, sub, deadline, warm=warm, changed_edges=changed)
            )
        return tables

    # Interleave the two measurements so a transient load spike degrades
    # both sides instead of silently skewing the ratio.
    before_s = after_s = float("inf")
    cold_tables = warm_tables = None
    for _ in range(5):
        elapsed, cold_tables = time_call(from_scratch)
        before_s = min(before_s, elapsed)
        elapsed, warm_tables = time_call(incremental)
        after_s = min(after_s, elapsed)
    speedup = before_s / after_s

    # The incremental tables must route identically to the from-scratch
    # ones: same sending-list orders and the same reachability everywhere.
    for cold, warm in zip(cold_tables, warm_tables):
        for node in topology.nodes:
            assert (
                cold.states[node].neighbor_order == warm.states[node].neighbor_order
            )
            assert cold.reachable(node) == warm.reachable(node)

    lines = [
        "Control-plane refresh at Figure-5 scale "
        "(160 nodes, degree 8, sampled monitoring)",
        f"  standing pairs          {len(pairs)} "
        f"(sharing {len({p for p, _, _ in pairs})} publishers)",
        f"  changed link estimates  {len(changed)} of {len(estimates)}",
        f"  from-scratch (before)   {before_s * 1000.0:8.2f} ms",
        f"  incremental  (after)    {after_s * 1000.0:8.2f} ms",
        f"  speedup                 {speedup:8.2f}x",
    ]
    save_report("control_plane", "\n".join(lines))

    benchmark.pedantic(incremental, rounds=3, iterations=1)
    assert speedup >= 3.0, f"expected >= 3x speedup, measured {speedup:.2f}x"


def test_full_dcrd_run(benchmark):
    """A complete 20-node DCRD run at the paper's default setting."""
    config = ExperimentConfig(
        topology_kind="regular", degree=5, failure_probability=0.06, duration=30.0
    )

    def run():
        return run_single(config, "DCRD", seed=0)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summary.delivery_ratio > 0.95

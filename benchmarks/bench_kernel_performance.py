"""Microbenchmarks of the substrate itself (not a paper figure).

These pin the performance of the three hot paths so regressions show up in
``--benchmark-compare`` runs: raw event throughput of the kernel, the
``<d, r>`` fixed-point solver at Figure-5 scale, and one full DCRD run at
the paper's default scale.
"""

import numpy as np

from repro.core.computation import compute_dr_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.overlay.monitor import LinkEstimate
from repro.overlay.topology import random_regular
from repro.sim.engine import Simulator


def test_event_throughput(benchmark):
    """Schedule-and-run one million chained events."""

    def run():
        sim = Simulator()
        remaining = [200_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(0.001, tick)

        for _ in range(5):
            sim.schedule(0.0, tick)
        sim.run()
        return sim.processed_events

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events >= 200_000


def test_dr_table_solver_at_scale(benchmark):
    """One 160-node degree-8 pair solve (Figure 5's hardest setting)."""
    rng = np.random.default_rng(0)
    topology = random_regular(160, 8, rng)
    estimates = {
        edge: LinkEstimate(alpha=topology.delay(*edge), gamma=0.94)
        for edge in topology.edges()
    }

    def run():
        return compute_dr_table(
            topology, estimates, publisher=0, subscriber=159, deadline=0.5
        )

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert table.reachable(0)


def test_full_dcrd_run(benchmark):
    """A complete 20-node DCRD run at the paper's default setting."""
    config = ExperimentConfig(
        topology_kind="regular", degree=5, failure_probability=0.06, duration=30.0
    )

    def run():
        return run_single(config, "DCRD", seed=0)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summary.delivery_ratio > 0.95

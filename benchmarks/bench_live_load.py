"""Live load test: publish-rate sweeps through a multi-process fleet.

The first benchmark that measures the *real* deployment: the clean
6-node ring world runs on six broker OS processes (one per node,
coordinated by :mod:`repro.live.cluster`) at increasing publish rates,
and the end-to-end delivery-delay distribution observed on real TCP
sockets is compared against the discrete-event simulator's prediction
for the identical world.

The assertion is a tolerance band, not equality: the simulator's delays
are pure link propagation (hops x imposed delay), while the live fleet
adds scheduler wakeups, socket writes and JSON framing on top. The band
says the overhead stays bounded — every delivery quantile of the live
CDF sits within ``TOLERANCE`` seconds above the simulated quantile, and
never meaningfully below it (the fleet cannot beat physics).

Output table: ``benchmarks/output/live_load.txt``.
"""

import dataclasses
import os

from repro.live.cluster import run_cluster_scenario
from repro.live.scenarios import make_scenario, run_sim_scenario

from _common import save_report

#: One broker OS process per ring node.
PROCESSES = 6

#: (publish rate in msg/s, messages per run) sweep points.
RATES = ((10.0, 12), (25.0, 12), (50.0, 12))

#: Live quantile may exceed the simulated one by at most this much.
TOLERANCE = 0.25

#: Live quantile may undercut the simulated one by at most this much
#: (clock granularity; real sockets cannot beat modelled propagation).
UNDERCUT = 0.02

QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)


def _quantile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def load_scenario(rate: float, publishes: int):
    """The clean ring world re-parameterized to one sweep point."""
    return dataclasses.replace(
        make_scenario("clean"),
        name=f"load_{rate:g}hz",
        publishes=publishes,
        publish_interval=1.0 / rate,
    )


def sweep():
    points = []
    for rate, publishes in RATES:
        sim = run_sim_scenario(load_scenario(rate, publishes), seed=0, sanitize=True)
        live = run_cluster_scenario(
            load_scenario(rate, publishes),
            seed=0,
            sanitize=True,
            processes=int(os.environ.get("REPRO_BENCH_LIVE_PROCESSES", PROCESSES)),
        )
        points.append((rate, publishes, sim, live))
    return points


def render(points) -> str:
    lines = [
        "Live load test: publish-rate sweep, %d broker processes" % PROCESSES,
        "world: clean 6-node ring, subscribers {2, 3, 4}, m=2",
        "delay CDF quantiles (seconds), live fleet vs simulator prediction",
        "",
        "%-10s %-6s %-10s %-6s " % ("rate", "msgs", "substrate", "pairs")
        + " ".join("p%02d" % int(q * 100) for q in QUANTILES),
    ]
    for rate, publishes, sim, live in points:
        for label, result in (("sim", sim), ("live", live)):
            delays = [delay for _, _, delay in result["delays"]]
            lines.append(
                "%-10s %-6d %-10s %-6d " % ("%g/s" % rate, publishes, label, len(delays))
                + " ".join("%.3f" % _quantile(delays, q) for q in QUANTILES)
            )
        sim_delays = [d for _, _, d in sim["delays"]]
        live_delays = [d for _, _, d in live["delays"]]
        worst = max(
            _quantile(live_delays, q) - _quantile(sim_delays, q) for q in QUANTILES
        )
        lines.append(
            "%-10s %-6s %-10s %-6s worst quantile overhead: %+.3f s"
            % ("", "", "delta", "", worst)
        )
    lines.append("")
    lines.append("tolerance band: sim_q - %.2f <= live_q <= sim_q + %.2f"
                 % (UNDERCUT, TOLERANCE))
    return "\n".join(lines)


def test_live_load(benchmark):
    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report("live_load", render(points))
    for rate, publishes, sim, live in points:
        # Full delivery and clean invariants at every rate.
        assert len(live["delivered"]) == live["expected"] == publishes * 3, rate
        assert live["delivered"] == sim["delivered"], rate
        assert live["violations"] == 0, rate
        assert live["conservation"]["leaked"] == 0, rate
        assert live["timers_started"] == live["timers_settled"], rate
        # The tolerance band, quantile by quantile.
        sim_delays = [d for _, _, d in sim["delays"]]
        live_delays = [d for _, _, d in live["delays"]]
        assert len(live_delays) == len(sim_delays), rate
        for q in QUANTILES:
            sim_q = _quantile(sim_delays, q)
            live_q = _quantile(live_delays, q)
            assert sim_q - UNDERCUT <= live_q <= sim_q + TOLERANCE, (rate, q)

"""Ordering-overhead bench: what each delivery guarantee costs in delay.

Runs the Figure-7 workload (full mesh, Pf = 0.06) with ordering off and
at each guarantee level, and renders the end-to-end delivery-delay CDF
per level. The guarantees are pure hold-back stages in front of the
application callback — the transport is untouched — so the delivered
sets are identical and the entire cost is extra delivery delay, with a
monotone story: baseline <= fifo <= causal <= total median delay (fifo
holds only on own-stream gaps, causal additionally on cross-stream
dependencies, total ages every frame past its agreement window).
"""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment
from repro.ordering.spec import LEVELS

from _common import bench_duration, bench_seeds, save_report

COLUMNS = ("baseline",) + LEVELS


def collect(ordering, duration, seeds):
    """Pooled delivery delays + delivered count for one ordering setting."""
    delays = []
    delivered = 0
    for seed in seeds:
        config = ExperimentConfig(
            duration=duration,
            topology_kind="full_mesh",
            failure_probability=0.06,
            ordering=ordering,
        )
        env = build_environment(config, "DCRD", seed)
        summary = env.execute()
        delays.extend(env.ctx.metrics.delays())
        delivered += summary.delivered
    return np.asarray(sorted(delays)), delivered


def run():
    duration = bench_duration(30.0)
    seeds = bench_seeds(1)
    results = {}
    for column in COLUMNS:
        ordering = None if column == "baseline" else column
        results[column] = collect(ordering, duration, seeds)
    return results


def render(results):
    pooled = np.concatenate([delays for delays, _ in results.values()])
    grid = np.linspace(0.0, float(pooled.max()), 13)
    header = ["delay (s)"] + list(COLUMNS)
    lines = ["  ".join(f"{cell:>9}" for cell in header)]
    lines.append("  ".join("-" * 9 for _ in header))
    for point in grid:
        row = [f"{point:9.4f}"]
        for column in COLUMNS:
            delays, _ = results[column]
            row.append(f"{np.searchsorted(delays, point, 'right') / len(delays):9.4f}")
        lines.append("  ".join(row))
    lines.append("")
    lines.append("level      delivered   median      mean       p95")
    for column in COLUMNS:
        delays, delivered = results[column]
        lines.append(
            f"{column:<9}  {delivered:>9}  {np.median(delays):8.4f}  "
            f"{np.mean(delays):8.4f}  {np.quantile(delays, 0.95):8.4f}"
        )
    return "\n".join(lines)


def test_ordering_overhead(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ordering", render(results))
    # Reorder-only: no guarantee changes what is delivered.
    delivered = {column: count for column, (_, count) in results.items()}
    assert len(set(delivered.values())) == 1, delivered
    # The monotone cost story: each stronger guarantee holds frames at
    # least as long as the weaker one on the identical world.
    medians = [float(np.median(results[column][0])) for column in COLUMNS]
    assert medians == sorted(medians), dict(zip(COLUMNS, medians))
    # Total ages every frame past the agreement window, so its floor is
    # visibly above the baseline median, not a rounding artifact.
    assert medians[-1] > medians[0]

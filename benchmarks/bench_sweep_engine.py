"""Cold-vs-warm microbenchmark of the incremental sweep engine.

Runs the same miniature Figure-2-style grid twice through one
:class:`~repro.experiments.sweeps.SweepExecutor` with a cell cache: the
cold pass computes (and journals) every cell, the warm pass must serve the
whole grid from the content-addressed cache. The report records both
wall-clocks, the speedup, and the engine counters; the warm pass is
asserted to be at least 5× faster with zero recomputed cells and
bit-identical results.
"""

import shutil
import time

from repro.experiments.cache import SweepCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_cache_stats
from repro.experiments.sweeps import SweepExecutor, sweep

from _common import OUTPUT_DIR, bench_duration, bench_seeds, save_report

STRATEGIES = ("DCRD", "D-Tree", "R-Tree")
FAILURE_PROBABILITIES = (0.0, 0.04, 0.08)


def _configs():
    duration = bench_duration(10.0)
    base = ExperimentConfig(
        duration=duration, drain=5.0, num_topics=4, num_nodes=10
    )
    return {
        pf: base.with_updates(failure_probability=pf)
        for pf in FAILURE_PROBABILITIES
    }


def _grid(executor):
    return sweep(
        "sweep-engine benchmark", "Pf", _configs(),
        seeds=bench_seeds(2), strategies=STRATEGIES, executor=executor,
    )


def run():
    cache_dir = OUTPUT_DIR / ".bench_sweep_cache"
    shutil.rmtree(cache_dir, ignore_errors=True)
    cache = SweepCache(cache_dir)
    with SweepExecutor(cache=cache) as executor:
        start = time.perf_counter()
        cold_result = _grid(executor)
        cold = time.perf_counter() - start
        cold_counters = executor.counters()

        start = time.perf_counter()
        warm_result = _grid(executor)
        warm = time.perf_counter() - start
        counters = executor.counters()
    cache.close()
    shutil.rmtree(cache_dir, ignore_errors=True)  # scratch, not a report

    cells = len(FAILURE_PROBABILITIES) * len(STRATEGIES) * len(bench_seeds(2))
    speedup = cold / warm if warm > 0 else float("inf")
    report = "\n".join(
        [
            f"grid: {cells} cells "
            f"({len(FAILURE_PROBABILITIES)} Pf x {len(STRATEGIES)} strategies "
            f"x {len(bench_seeds(2))} seeds)",
            f"cold pass: {cold:.3f}s  (every cell computed + journalled)",
            f"warm pass: {warm:.4f}s  (every cell served from the cache)",
            f"speedup: {speedup:.0f}x",
            render_cache_stats(counters),
        ]
    )
    save_report("sweep_engine", report)
    return {
        "cold": cold,
        "warm": warm,
        "speedup": speedup,
        "cells": cells,
        "cold_counters": cold_counters,
        "counters": counters,
        "cold_result": cold_result,
        "warm_result": warm_result,
    }


def test_sweep_engine_warm_rerun(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    cold_counters = stats["cold_counters"]
    counters = stats["counters"]
    # Cold pass computed and journalled the full grid.
    assert cold_counters["sweep.cells_computed"] == stats["cells"]
    assert cold_counters["sweep.checkpoint_writes"] == stats["cells"]
    # Warm pass recomputed nothing and was served entirely from the cache.
    assert counters["sweep.cells_computed"] == stats["cells"]
    assert counters["sweep.cells_cached"] == stats["cells"]
    assert stats["speedup"] >= 5.0
    # Cached cells are bit-identical to the freshly computed ones.
    cold_result, warm_result = stats["cold_result"], stats["warm_result"]
    for x in cold_result.x_values:
        for strategy in cold_result.strategies:
            assert (
                warm_result.cell(x, strategy).as_dict()
                == cold_result.cell(x, strategy).as_dict()
            )

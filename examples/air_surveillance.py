#!/usr/bin/env python3
"""Air-surveillance scenario: the workload that motivates the paper.

The paper's publish rate (1 packet/s per publisher) is taken from ADS-B,
where each aircraft broadcasts its position roughly once per second and
ground stations distribute the track to consumers — control centres,
displays, archival — with hard latency requirements.

This example models a small surveillance backbone explicitly instead of
using the random workload generator:

* 24 ground-station brokers on a degree-6 overlay (WAN links, 10–50 ms);
* 12 "radar feed" topics, one per coverage sector, published from the
  sector's ingest broker;
* each feed subscribed by 3 regional control centres plus a national one,
  every subscription carrying a 2.5x-shortest-path latency requirement;
* a weather front that doubles the transient link-failure probability
  halfway through the run.

It then reports, per phase, how DCRD and the shortest-delay tree cope.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    ExperimentConfig,
    Subscription,
    TopicSpec,
    Workload,
    run_single,
)
from repro.experiments.runner import build_environment, build_topology
from repro.metrics.summary import summarize
from repro.sim.random import RandomStreams


def build_surveillance_workload(topology, rng) -> Workload:
    """12 sector feeds, each feeding 3 regional centres + 1 national centre."""
    national_centre = 0
    topics = []
    for sector in range(12):
        ingest = 1 + (sector * 2) % (topology.num_nodes - 1)
        centres = set()
        while len(centres) < 3:
            candidate = int(rng.integers(1, topology.num_nodes))
            if candidate != ingest:
                centres.add(candidate)
        centres.add(national_centre)
        subscriptions = tuple(
            Subscription(
                node=centre,
                deadline=2.5 * topology.shortest_delay(ingest, centre),
            )
            for centre in sorted(centres)
            if centre != ingest
        )
        topics.append(
            TopicSpec(
                topic=sector,
                publisher=ingest,
                subscriptions=subscriptions,
                publish_interval=1.0,  # the ADS-B broadcast rate
                phase=float(rng.uniform(0.0, 1.0)),
            )
        )
    return Workload(topics=topics)


def run_phase(label, pf, duration, seed, strategy):
    config = ExperimentConfig(
        topology_kind="regular",
        degree=6,
        num_nodes=24,
        num_topics=12,
        failure_probability=pf,
        duration=duration,
    )
    streams = RandomStreams(seed)
    topology = build_topology(config, streams)
    workload = build_surveillance_workload(topology, streams.get("workload"))
    env = build_environment(config, strategy, seed, topology=topology, workload=workload)
    summary = env.execute()
    print(
        f"  {label:<18} {strategy:<8} delivery={summary.delivery_ratio:6.1%} "
        f"on-time={summary.qos_delivery_ratio:6.1%} "
        f"traffic={summary.packets_per_subscriber:5.2f} pkts/track-update"
    )
    return summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Phase 1: clear weather (Pf = 0.02)")
    for strategy in ("DCRD", "D-Tree"):
        run_phase("clear weather", 0.02, args.duration, args.seed, strategy)

    print("\nPhase 2: weather front (Pf = 0.08)")
    results = {}
    for strategy in ("DCRD", "D-Tree"):
        results[strategy] = run_phase(
            "weather front", 0.08, args.duration, args.seed, strategy
        )

    dcrd, dtree = results["DCRD"], results["D-Tree"]
    saved = dcrd.on_time - dtree.on_time
    print(
        f"\nDuring the front, DCRD delivered {saved} more track updates on time "
        f"than the fixed shortest-delay tree "
        f"({dcrd.qos_delivery_ratio - dtree.qos_delivery_ratio:+.1%})."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Congestion meltdown — and the adaptive-timeout fix.

The paper motivates DCRD with "link failures and congestions unpredictably
occurring at overlay links", but evaluates only failures. This example
gives links finite capacity (a FIFO serialisation delay per DATA frame)
and ramps the publish rate through saturation, showing three regimes:

1. **under capacity** — everyone delivers everything;
2. **near saturation** — queues form; the paper's static ACK timer starts
   firing on frames that were queued, not lost, and DCRD retransmits and
   re-routes copies whose originals still arrive: traffic multiplies and
   QoS collapses while the naive fixed tree just queues politely;
3. **over capacity** — nobody can win, but the adaptive-timeout variant
   (`DCRD+adaptive`, a TCP-style Jacobson/Karn RTO) degrades like the
   tree instead of melting down, and Multipath — which doubles its own
   offered load — congests first.

Run:
    python examples/congestion_meltdown.py [--service-time 0.02]
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, run_comparison

STRATEGIES = ("DCRD", "DCRD+adaptive", "D-Tree", "Multipath")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--service-time",
        type=float,
        default=0.02,
        help="seconds a DATA frame occupies a link direction (capacity = 1/x)",
    )
    args = parser.parse_args()

    capacity = 1.0 / args.service_time
    print(
        f"Link capacity: {capacity:.0f} frames/s per direction "
        f"(service time {args.service_time * 1000:.0f} ms)\n"
    )
    print(f"{'load':>12} {'strategy':<15} {'on-time':>8} {'delivered':>10} {'pkts/sub':>9}")
    for interval in (1.0, 0.25, 0.125, 0.0625):
        rate = 1.0 / interval
        config = ExperimentConfig(
            topology_kind="regular",
            degree=5,
            num_nodes=20,
            num_topics=8,
            publish_interval=interval,
            failure_probability=0.0,
            link_service_time=args.service_time,
            duration=args.duration,
        )
        results = run_comparison(config, seed=args.seed, strategies=STRATEGIES)
        for name in STRATEGIES:
            summary = results[name]
            print(
                f"{rate:>8.0f} p/s {name:<15} {summary.qos_delivery_ratio:>8.1%} "
                f"{summary.delivery_ratio:>10.1%} "
                f"{summary.packets_per_subscriber:>9.2f}"
            )
        print()

    print(
        "Takeaway: rerouting on ACK silence treats queueing as failure. The\n"
        "paper's static timer turns moderate congestion into a retransmit\n"
        "storm; estimating the round trip (DCRD+adaptive) restores sanity\n"
        "while keeping DCRD's failure-bypassing behaviour."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Embedding DCRD as a library: the PubSubSystem façade.

The other examples drive the experiment harness; this one shows the API a
downstream application would use — named topics, payloads, delivery
callbacks — on a small overlay with live failures, including a subscriber
that joins mid-stream and another that leaves.
"""

from __future__ import annotations

import argparse

from repro.system import Delivery, PubSubSystem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--pf", type=float, default=0.1)
    args = parser.parse_args()

    system = PubSubSystem.build(
        num_nodes=12, degree=4, seed=args.seed, failure_probability=args.pf
    )

    log = []

    def listener(name: str):
        def callback(delivery: Delivery) -> None:
            log.append(
                f"  t={delivery.delivery_time:7.3f}s  {name} <- "
                f"{delivery.topic}: {delivery.payload!r} "
                f"({delivery.delay * 1000:.1f} ms)"
            )

        return callback

    system.add_topic("positions", publisher=0, publish_interval=0.5)
    system.subscribe("positions", node=5, deadline=0.5, callback=listener("ops-east"))
    system.subscribe("positions", node=9, deadline=0.5, callback=listener("ops-west"))

    # Manual publishes with payloads.
    for step in range(4):
        system.publish("positions", payload={"seq": step, "x": 10 * step})
        system.run(until=system.now + 0.5)

    # A consumer joins mid-stream...
    system.subscribe("positions", node=2, deadline=0.5, callback=listener("archiver"))
    for step in range(4, 7):
        system.publish("positions", payload={"seq": step, "x": 10 * step})
        system.run(until=system.now + 0.5)

    # ...and one leaves.
    system.unsubscribe("positions", node=9)
    for step in range(7, 9):
        system.publish("positions", payload={"seq": step, "x": 10 * step})
        system.run(until=system.now + 0.5)

    print("\n".join(log))
    summary = system.summary()
    print(
        f"\n{summary.delivered}/{summary.expected_deliveries} deliveries "
        f"({summary.qos_delivery_ratio:.1%} within deadline) despite "
        f"Pf={args.pf} transient link failures; "
        f"{summary.packets_per_subscriber:.2f} packets/subscriber."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Failure storm: DCRD's delivery guarantee and the persistency extension.

This example stresses the property the paper proves: DCRD delivers as long
as a failure-free path exists between publisher and subscriber, because
each broker walks its Theorem-1-ordered sending list and bounces exhausted
packets back upstream.

We crank the per-second link-failure probability far beyond the paper's
evaluation range (up to 30%) on a sparse degree-4 overlay, where whole
neighbourhoods regularly go dark, and compare:

* plain DCRD — drops a packet only when the origin itself is cut off;
* DCRD+persist — the paper's §III persistency mode (store and retry after
  the failures clear), which trades latency and traffic for delivery;
* D-Tree — the fixed-tree strawman.

Output: delivery/on-time ratios per storm intensity, plus the persistency
store's recover/exhaust counters.
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig
from repro.experiments.runner import build_environment

STORM_LEVELS = (0.10, 0.20, 0.30)


def run(config, strategy, seed):
    env = build_environment(config, strategy, seed)
    summary = env.execute()
    return env, summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    print(f"{'Pf':>5} {'strategy':<14} {'delivered':>10} {'on-time':>8} {'pkts/sub':>9}  notes")
    for pf in STORM_LEVELS:
        config = ExperimentConfig(
            topology_kind="regular",
            degree=4,
            num_nodes=16,
            num_topics=6,
            failure_probability=pf,
            duration=args.duration,
            drain=30.0,  # give the persistency mode room to retry
        )
        for strategy in ("DCRD", "DCRD+persist", "D-Tree"):
            env, summary = run(config, strategy, args.seed)
            notes = ""
            if strategy == "DCRD+persist":
                store = env.strategy.store
                notes = (
                    f"persisted={store.stored} recovered={store.recovered} "
                    f"exhausted={store.exhausted}"
                )
            print(
                f"{pf:>5.2f} {strategy:<14} {summary.delivery_ratio:>10.1%} "
                f"{summary.qos_delivery_ratio:>8.1%} "
                f"{summary.packets_per_subscriber:>9.2f}  {notes}"
            )
        print()

    print(
        "Even at storm intensities 3x beyond the paper's range, DCRD keeps "
        "delivering whenever a path exists; the persistency extension covers "
        "the remaining outages at the cost of late (post-deadline) arrivals."
    )


if __name__ == "__main__":
    main()

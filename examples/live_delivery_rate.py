#!/usr/bin/env python3
"""A custom probe-bus observer: per-broker live delivery-rate counter.

The :mod:`repro.probes` bus is the extension seam for new observability:
any object with ``on_<family>`` methods (or a ``probe_handlers()``
mapping) can watch the data plane without touching ``src/repro`` — the
same hook sites that feed the sanitizer and the tracer feed it, and with
no observer attached every site is a literal no-op.

This example attaches a ~50-line observer that tallies, per broker, how
many DATA frames arrived versus how many turned into first deliveries,
prints a live delivery-rate line every simulated ``--window`` seconds,
and surfaces its totals as ``live.*`` perf counters (the runner merges
``perf_counters()`` from every attached observer into the summary).

Run:
    python examples/live_delivery_rate.py [--duration 30] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, probes
from repro.experiments.runner import run_single


class LiveDeliveryRate(probes.ProbeObserver):
    """Counts per-broker arrivals/deliveries; reports once per window."""

    def __init__(self, window: float = 5.0) -> None:
        self.window = window
        self.arrivals = {}  # broker -> DATA frames that reached it
        self.deliveries = {}  # broker -> first local deliveries
        self._next_report = window

    def on_arrive(self, t, src, dst, frame) -> None:
        self.arrivals[dst] = self.arrivals.get(dst, 0) + 1
        self._maybe_report(t)

    def on_deliver(self, t, node, frame) -> None:
        self.deliveries[node] = self.deliveries.get(node, 0) + 1
        self._maybe_report(t)

    def _maybe_report(self, t: float) -> None:
        if t < self._next_report:
            return
        self._next_report += self.window
        arrived = sum(self.arrivals.values())
        delivered = sum(self.deliveries.values())
        busiest = max(self.deliveries, key=self.deliveries.get, default=None)
        line = f"[t={t:7.2f}s] arrivals={arrived:6d} deliveries={delivered:5d}"
        if busiest is not None:
            line += (
                f"  busiest broker={busiest}"
                f" ({self.deliveries[busiest]} delivered)"
            )
        print(line)

    def perf_counters(self):
        return {
            "live.arrivals": float(sum(self.arrivals.values())),
            "live.deliveries": float(sum(self.deliveries.values())),
            "live.brokers_delivering": float(len(self.deliveries)),
        }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=30.0, help="publish window (seconds)")
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument("--window", type=float, default=5.0, help="report interval (simulated seconds)")
    args = parser.parse_args()

    config = ExperimentConfig(
        topology_kind="regular",
        degree=5,
        num_nodes=20,
        failure_probability=0.05,
        duration=args.duration,
    )
    observer = LiveDeliveryRate(window=args.window)
    probes.attach(observer)
    try:
        print(f"Running DCRD: {config.describe()}  (seed={args.seed})\n")
        summary = run_single(config, "DCRD", seed=args.seed)
    finally:
        probes.detach(observer)

    delivered = sum(observer.deliveries.values())
    print(
        f"\nObserver saw {sum(observer.arrivals.values())} frame arrivals and "
        f"{delivered} deliveries across {len(observer.deliveries)} brokers."
    )
    print(
        f"Summary agrees: delivery ratio {summary.delivery_ratio:.1%}, "
        f"live.deliveries={summary.perf['live.deliveries']:.0f} "
        f"(merged from the observer's perf_counters())."
    )


if __name__ == "__main__":
    main()

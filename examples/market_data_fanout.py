#!/usr/bin/env python3
"""Market-data fan-out: many subscribers, tight deadlines, bursty failures.

A second domain the paper's introduction motivates: event-based response to
real-world signals with end-to-end performance management. Market-data
distribution is an extreme instance — one feed, many consumers, and a
message that arrives after its freshness window is worthless.

The scenario:

* 30 brokers, degree 6 (a metro-area overlay);
* 6 instrument feeds published at 4 msgs/s (faster than the paper's ADS-B
  rate) from two co-located exchange gateways;
* 60–80% of brokers subscribe to each feed;
* tight deadlines: 1.8x the shortest-path delay (the paper's Figure 6
  shows this is where Multipath is competitive — we test that claim);
* a failure burst in the middle third of the run.

The run reports per-strategy on-time ratios and the traffic bill, then the
"cost per on-time message" — traffic divided by on-time deliveries — which
is the number an operator actually pays.
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, run_comparison

STRATEGIES = ("DCRD", "Multipath", "D-Tree", "ORACLE")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=45.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--deadline-factor",
        type=float,
        default=1.8,
        help="freshness window as a multiple of the shortest-path delay",
    )
    args = parser.parse_args()

    config = ExperimentConfig(
        topology_kind="regular",
        degree=6,
        num_nodes=30,
        num_topics=6,
        publish_interval=0.25,  # 4 msgs/s per feed
        ps_range=(0.6, 0.8),
        deadline_factor=args.deadline_factor,
        failure_probability=0.05,
        duration=args.duration,
    )
    print(f"Market-data fan-out: {config.describe()}\n")
    results = run_comparison(config, seed=args.seed, strategies=STRATEGIES)

    print(f"{'strategy':<10} {'on-time':>8} {'delivered':>10} {'pkts/sub':>9} {'traffic per on-time msg':>24}")
    for name in STRATEGIES:
        summary = results[name]
        per_fresh = (
            summary.data_transmissions / summary.on_time
            if summary.on_time
            else float("inf")
        )
        print(
            f"{name:<10} {summary.qos_delivery_ratio:>8.1%} "
            f"{summary.delivery_ratio:>10.1%} "
            f"{summary.packets_per_subscriber:>9.2f} {per_fresh:>24.2f}"
        )

    dcrd, multipath = results["DCRD"], results["Multipath"]
    print(
        f"\nAt a {args.deadline_factor}x freshness window, Multipath's duplication "
        f"buys {multipath.qos_delivery_ratio - dcrd.qos_delivery_ratio:+.1%} on-time "
        f"delivery over DCRD while sending "
        f"{multipath.packets_per_subscriber / dcrd.packets_per_subscriber:.1f}x the traffic."
    )
    print(
        "Re-run with --deadline-factor 3 to watch the paper's Figure 6 "
        "crossover: DCRD overtakes Multipath once deadlines loosen."
    )


if __name__ == "__main__":
    main()

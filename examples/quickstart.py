#!/usr/bin/env python3
"""Quickstart: compare DCRD against every baseline on one overlay.

Builds the paper's default setting — a 20-broker overlay with degree-5
connectivity, 10 topics at 1 packet/s, per-second transient link failures —
runs all five routing strategies against the *identical* world (same
topology, same workload, same failure schedule), and prints the three
metrics of the paper's evaluation.

Run:
    python examples/quickstart.py [--pf 0.06] [--duration 60] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, run_comparison
from repro.experiments.report import render_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pf", type=float, default=0.06, help="link failure probability per second")
    parser.add_argument("--duration", type=float, default=60.0, help="publish window (seconds)")
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument("--degree", type=int, default=5, help="overlay node degree")
    args = parser.parse_args()

    config = ExperimentConfig(
        topology_kind="regular",
        degree=args.degree,
        num_nodes=20,
        failure_probability=args.pf,
        duration=args.duration,
    )
    print(f"Running: {config.describe()}  (seed={args.seed})")
    print("Strategies: DCRD (the paper), R-Tree, D-Tree, ORACLE, Multipath\n")
    results = run_comparison(config, seed=args.seed)
    print(render_comparison(results))

    dcrd = results["DCRD"]
    oracle = results["ORACLE"]
    print(
        f"\nDCRD delivered {dcrd.delivery_ratio:.1%} of packets "
        f"({dcrd.qos_delivery_ratio:.1%} within their delay requirement), "
        f"{oracle.qos_delivery_ratio - dcrd.qos_delivery_ratio:+.1%} from the "
        f"clairvoyant upper bound."
    )


if __name__ == "__main__":
    main()

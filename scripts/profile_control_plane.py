#!/usr/bin/env python3
"""Profile one control-plane refresh at Figure-5 scale.

Runs the same scenario as the ``control_plane`` microbenchmark — 160
nodes at degree 8, sampled-mode monitoring, 24 standing (publisher,
subscriber) pairs over 5 publishers, one monitoring refresh — under
:mod:`cProfile`, once for the per-pair from-scratch baseline and once for
the incremental batched path, and prints the top entries by cumulative
time for each. Use this to see *where* a control-plane regression landed
before reaching for the microbenchmark's single number.

Usage::

    PYTHONPATH=src python scripts/profile_control_plane.py [--top N]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

import numpy as np

from repro.core.computation import ControlPlaneSolver, compute_dr_table
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.overlay.topology import random_regular
from repro.perf import format_perf, PerfStats
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

NUM_NODES = 160
DEGREE = 8
NUM_PAIRS = 24
NUM_PUBLISHERS = 5


def build_workload():
    """The microbenchmark's refresh scenario (see bench_kernel_performance)."""
    rng = np.random.default_rng(7)
    topology = random_regular(NUM_NODES, DEGREE, rng)
    streams = RandomStreams(7)
    sim = Simulator()
    network = OverlayNetwork(sim, topology, streams, loss_rate=1e-4)
    monitor = LinkMonitor(topology, network, streams, mode="sampled")

    publishers = list(range(NUM_PUBLISHERS))
    cold_solver = ControlPlaneSolver(topology, monitor.estimates())
    pairs, previous = [], {}
    subscriber = 10
    while len(pairs) < NUM_PAIRS and subscriber < topology.num_nodes:
        publisher = publishers[len(pairs) % NUM_PUBLISHERS]
        if subscriber not in publishers:
            deadline = 2.5 * topology.shortest_delay(publisher, subscriber)
            table = cold_solver.solve(publisher, subscriber, deadline)
            if table.converged:
                pairs.append((publisher, subscriber, deadline))
                previous[(publisher, subscriber)] = table
        subscriber += 1

    monitor.refresh()
    return topology, monitor.snapshot(), monitor.last_changed, pairs, previous


def profile(label: str, fn, top: int) -> None:
    print(f"=== {label} ===")
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--top", type=int, default=20, help="profile entries to print"
    )
    args = parser.parse_args()

    topology, estimates, changed, pairs, previous = build_workload()
    perf = PerfStats()

    def from_scratch():
        return [
            compute_dr_table(topology, estimates, pub, sub, deadline)
            for pub, sub, deadline in pairs
        ]

    def incremental():
        solver = ControlPlaneSolver(topology, estimates, perf=perf)
        tables = []
        for pub, sub, deadline in pairs:
            warm = previous[(pub, sub)]
            if not solver.table_affected(pub, deadline, changed):
                tables.append(warm)
                continue
            tables.append(
                solver.solve(pub, sub, deadline, warm=warm, changed_edges=changed)
            )
        return tables

    profile("per-pair from-scratch baseline", from_scratch, args.top)
    profile("incremental batched refresh", incremental, args.top)
    print("Incremental-pass perf counters:")
    print(format_perf(perf.snapshot()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Regenerate every figure of the paper and dump the tables.

This is the driver behind EXPERIMENTS.md: it runs Figures 2–8 (plus the
extension studies) at a configurable scale and writes all tables to
``results/`` (and stdout). The paper's full scale is
``--duration 7200 --repetitions 10``; the EXPERIMENTS.md numbers were
recorded with the defaults below, which keep the wall-clock in the
tens-of-minutes range on one core.

Re-runs are incremental: every (config, strategy, seed) grid cell is
content-addressed and journalled under ``<out>/.sweep_cache/`` (see
docs/SWEEPS.md), so an unchanged cell is never recomputed — a warm re-run
of any figure costs seconds, a killed run resumes from the last completed
cell, and only figures whose cells changed rewrite their output tables.
``--fresh`` bypasses the cache (and repopulates it), ``--no-cache``
disables it entirely, and ``--workers N`` fans the grids out over one
shared spawn pool reused across all figures.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import figures
from repro.experiments.cache import SweepCache
from repro.experiments.figures import PANEL_METRICS
from repro.experiments.report import render_cache_stats, render_cdf, render_panels, render_sweep
from repro.experiments.sweeps import SweepExecutor
from repro.experiments.validation import FIGURE_CHECKS, render_outcomes, verify_figure
from repro.extensions.ablations import ack_timeout_ablation, monitoring_mode_ablation
from repro.extensions.churn import churn_study
from repro.extensions.congestion import congestion_study
from repro.extensions.fec import fec_study
from repro.extensions.heterogeneous import heterogeneity_study
from repro.extensions.node_failures import node_failure_study
from repro.extensions.priority import priority_queueing_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--out", type=Path, default=Path("results"))
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="subset of {fig2..fig8,ablations,nodes,congestion} to run",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size shared by every figure (1 = in-process)",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="bypass the cell cache: recompute every cell (and repopulate)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the cell cache and journal entirely",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cell-cache directory (default: <out>/.sweep_cache)",
    )
    args = parser.parse_args()
    args.out.mkdir(exist_ok=True)
    seeds = tuple(range(args.repetitions))
    wanted = set(args.only) if args.only else None

    cache = None
    if not args.no_cache:
        cache = SweepCache(args.cache_dir or args.out / ".sweep_cache")

    def progress(line: str) -> None:
        print(f"    …{line}", file=sys.stderr)

    def should(name: str) -> bool:
        return wanted is None or name in wanted

    verdicts = []

    def check(figure: str, result) -> None:
        if figure in FIGURE_CHECKS:
            outcomes = verify_figure(figure, result)
            verdicts.extend(outcomes)
            print(render_outcomes(outcomes))

    start = time.time()
    with SweepExecutor(
        workers=args.workers, cache=cache, fresh=args.fresh
    ) as executor:
        snapshot = executor.counters()

        def emit(name: str, text: str) -> None:
            """Write the figure's table — but only when its cells changed.

            A figure none of whose cells were recomputed this run (every
            cell came from the cache) produces byte-identical text, so the
            existing output file is left untouched and the skip reported.
            """
            nonlocal snapshot
            current = executor.counters()
            computed = current.get("sweep.cells_computed", 0.0) - snapshot.get(
                "sweep.cells_computed", 0.0
            )
            cached = current.get("sweep.cells_cached", 0.0) - snapshot.get(
                "sweep.cells_cached", 0.0
            )
            snapshot = current
            path = args.out / f"{name}.txt"
            body = text + "\n"
            if computed == 0 and path.exists() and path.read_text() == body:
                print(
                    f"[{name}] unchanged ({int(cached)} cells cached); "
                    f"kept {path}",
                    file=sys.stderr,
                )
            else:
                path.write_text(body)
            print(f"\n===== {name} =====\n{text}")

        if should("fig2"):
            result = figures.figure2(
                args.duration, seeds, progress=progress, executor=executor
            )
            emit("fig2", render_panels(result, PANEL_METRICS))
            check("figure2", result)
        if should("fig3"):
            result = figures.figure3(
                args.duration, seeds, progress=progress, executor=executor
            )
            emit("fig3", render_panels(result, PANEL_METRICS))
            check("figure3", result)
        if should("fig4"):
            result = figures.figure4(
                args.duration, seeds, progress=progress, executor=executor
            )
            emit("fig4", render_panels(result, PANEL_METRICS))
            check("figure4", result)
        if should("fig5"):
            result = figures.figure5(
                max(args.duration / 2, 10.0), seeds[: max(1, len(seeds) - 1)],
                progress=progress, executor=executor,
            )
            emit("fig5", render_panels(result, PANEL_METRICS))
            check("figure5", result)
        if should("fig6"):
            result = figures.figure6(
                args.duration, seeds, progress=progress, executor=executor
            )
            emit("fig6", render_sweep(result, "qos_delivery_ratio"))
            check("figure6", result)
        if should("fig7"):
            curves = figures.figure7(
                max(args.duration, 120.0), seeds, progress=progress,
                executor=executor,
            )
            emit("fig7", render_cdf(curves))
            check("figure7", curves)
        if should("fig8"):
            results = figures.figure8(
                args.duration, seeds, progress=progress, executor=executor
            )
            text = "\n\n".join(
                render_sweep(results[m], "qos_delivery_ratio") for m in sorted(results)
            )
            emit("fig8", text)
            check("figure8", results)
        if should("ablations"):
            result = monitoring_mode_ablation(
                args.duration / 2, seeds, progress=progress, executor=executor
            )
            emit("ablation_monitoring", render_sweep(result, "qos_delivery_ratio"))
            result = ack_timeout_ablation(
                args.duration / 2, seeds, progress=progress, executor=executor
            )
            text = (
                render_sweep(result, "qos_delivery_ratio")
                + "\n\n"
                + render_sweep(result, "packets_per_subscriber")
            )
            emit("ablation_ack_timeout", text)
        if should("nodes"):
            result = node_failure_study(
                args.duration / 2, seeds, progress=progress, executor=executor
            )
            emit(
                "extension_node_failures",
                render_panels(result, ("delivery_ratio", "qos_delivery_ratio")),
            )
        if should("congestion"):
            result = congestion_study(
                args.duration / 3, seeds, progress=progress, executor=executor
            )
            emit(
                "extension_congestion",
                render_panels(
                    result, ("qos_delivery_ratio", "packets_per_subscriber")
                ),
            )
        if should("churn"):
            # Churn mutates the live workload mid-run (a custom driver, not
            # a plain (config, strategy, seed) cell), so it stays outside
            # the cell cache.
            result = churn_study(args.duration / 2, seeds, progress=progress)
            emit(
                "extension_churn",
                render_panels(result, ("delivery_ratio", "qos_delivery_ratio")),
            )
        if should("fec"):
            result = fec_study(
                args.duration / 2, seeds, progress=progress, executor=executor
            )
            emit(
                "extension_fec",
                render_panels(
                    result,
                    ("delivery_ratio", "qos_delivery_ratio", "traffic_per_subscriber"),
                ),
            )
        if should("priority"):
            results = priority_queueing_study(
                args.duration / 2, seeds, progress=progress, executor=executor
            )
            text = "\n\n".join(
                render_sweep(results[mode], "qos_delivery_ratio")
                + "\n"
                + render_sweep(results[mode], "delivery_ratio")
                for mode in results
            )
            emit("extension_priority", text)
        print(render_cache_stats(executor.counters()))
    if cache is not None:
        cache.close()
    print(f"\nTotal wall-clock: {time.time() - start:.0f}s", file=sys.stderr)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Run one scripted scenario over real asyncio TCP sockets (live mode).

The live twin of a single simulated run: brokers bind loopback TCP
servers, DCRD forwards over the wire, and the scripted fault rules of the
scenario (dead links, dead ACK directions) are injected by the seeded
transport shim. With ``--differential`` the same scenario also runs on
the discrete-event kernel and the two delivered-pair sets are compared —
the one-shot command-line version of
``tests/integration/test_live_conformance.py``.

With ``--processes N`` the scenario instead runs on the multi-process
substrate: N broker processes are spawned (one ``repro.live.broker``
partition each), coordinated over a control channel, and harvested into
the same comparable shape — the CLI twin of
``tests/integration/test_multiproc_conformance.py``.

Examples::

    PYTHONPATH=src python scripts/run_live.py failover_bounce
    PYTHONPATH=src python scripts/run_live.py ack_loss --seed 7 --differential
    PYTHONPATH=src python scripts/run_live.py clean --no-sanitize --json
    PYTHONPATH=src python scripts/run_live.py link_loss --processes 3 --differential
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.live.cluster import run_cluster_scenario
from repro.live.runtime import run_live_scenario
from repro.live.scenarios import SCENARIO_KINDS, make_scenario, run_sim_scenario


def _render(result: dict) -> dict:
    """JSON-serialisable view of one run result."""
    view = dict(result)
    view["delivered"] = sorted(list(pair) for pair in result["delivered"])
    view["gave_up"] = sorted(list(pair) for pair in result["gave_up"])
    view["deliveries"] = [list(pair) for pair in result["deliveries"]]
    return view


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario", choices=SCENARIO_KINDS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--differential",
        action="store_true",
        help="also run the scenario on the sim kernel and compare",
    )
    parser.add_argument(
        "--no-sanitize",
        action="store_true",
        help="run without the invariant sanitizer attached",
    )
    parser.add_argument("--json", action="store_true", help="emit raw JSON")
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="run N broker OS processes (multi-process live mode) "
        "instead of the single-process runtime",
    )
    args = parser.parse_args(argv)
    sanitize = not args.no_sanitize
    if args.processes is not None:
        live = run_cluster_scenario(
            make_scenario(args.scenario),
            args.seed,
            sanitize,
            processes=args.processes,
        )
        mode = f"multiproc[{args.processes}]"
    else:
        live = run_live_scenario(make_scenario(args.scenario), args.seed, sanitize)
        mode = "live"
    if args.json:
        print(json.dumps({"live": _render(live)}, indent=2, sort_keys=True))
    else:
        print(f"{mode} {args.scenario} (seed {args.seed}):")
        print(
            f"  delivered {len(live['delivered'])}/{live['expected']} pairs, "
            f"{live['retransmissions']} retransmissions, "
            f"{live['duplicates']} duplicate arrivals"
        )
        if sanitize:
            print(
                f"  timers {live['timers_started']:.0f} started / "
                f"{live['timers_settled']:.0f} settled, "
                f"{live['violations']:.0f} violations"
            )
    if not args.differential:
        return 0
    sim = run_sim_scenario(make_scenario(args.scenario), args.seed, sanitize)
    agree = (
        sim["delivered"] == live["delivered"]
        and sim["gave_up"] == live["gave_up"]
        and sim["deliveries"] == live["deliveries"]
    )
    if args.json:
        print(json.dumps({"sim": _render(sim), "agree": agree}, indent=2, sort_keys=True))
    else:
        verdict = "AGREE" if agree else "DISAGREE"
        print(f"  sim comparison: {verdict} ({len(sim['delivered'])} pairs)")
    return 0 if agree else 1


if __name__ == "__main__":
    sys.exit(main())

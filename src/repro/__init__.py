"""repro — a reproduction of DCRD (Delay-Cognizant Reliable Delivery).

Implements the ICDCS 2011 paper "Delay-Cognizant Reliable Delivery for
Publish/Subscribe Overlay Networks" end to end: the discrete-event
simulation substrate, the broker overlay with transient link failures, the
DCRD algorithm (Eq. 1–3, Theorem 1, Algorithms 1–2), the four baselines the
paper compares against, and the full evaluation harness that regenerates
every figure of §IV.

Quickstart
----------
>>> from repro import ExperimentConfig, run_comparison
>>> config = ExperimentConfig(
...     topology_kind="regular", degree=5, failure_probability=0.04,
...     duration=30.0,
... )
>>> results = run_comparison(config, seed=7)
>>> sorted(results)
['D-Tree', 'DCRD', 'Multipath', 'ORACLE', 'R-Tree']
"""

from repro.core.computation import (
    ControlPlaneSolver,
    DrTable,
    NodeState,
    ViaNeighbor,
    compute_dr_table,
    compute_dr_tables,
)
from repro.core.forwarding import DcrdStrategy
from repro.perf import PerfStats
from repro.core.linkmath import expected_delay_m, expected_delivery_ratio_m
from repro.experiments.config import ExperimentConfig, paper_config
from repro.experiments.runner import (
    DEFAULT_STRATEGIES,
    STRATEGIES,
    build_environment,
    run_comparison,
    run_single,
)
from repro.experiments.sweeps import SweepResult, run_repetitions, sweep
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import MetricsSummary, mean_summaries, summarize
from repro.overlay.failures import FailureSchedule, NodeFailureSchedule
from repro.overlay.links import FrameKind, OverlayNetwork
from repro.overlay.monitor import LinkEstimate, LinkMonitor
from repro.overlay.topology import (
    Topology,
    full_mesh,
    random_regular,
    waxman,
)
from repro.pubsub.topics import Subscription, TopicSpec, Workload, generate_workload
from repro.routing.base import ProtocolParams, RoutingStrategy, RuntimeContext
from repro.routing.multipath import MultipathStrategy
from repro.routing.oracle import OracleStrategy
from repro.routing.trees import DTreeStrategy, RTreeStrategy
from repro.sanity import InvariantViolation, Sanitizer
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

# Importing the extensions package registers the extension strategies.
import repro.extensions  # noqa: E402,F401  (registration side effect)
from repro.system import Delivery, PubSubSystem  # noqa: E402

__version__ = "1.0.0"

__all__ = [
    "ControlPlaneSolver",
    "DEFAULT_STRATEGIES",
    "DcrdStrategy",
    "PerfStats",
    "Delivery",
    "PubSubSystem",
    "DrTable",
    "DTreeStrategy",
    "ExperimentConfig",
    "FailureSchedule",
    "FrameKind",
    "LinkEstimate",
    "LinkMonitor",
    "MetricsCollector",
    "MetricsSummary",
    "MultipathStrategy",
    "NodeFailureSchedule",
    "NodeState",
    "OracleStrategy",
    "OverlayNetwork",
    "ProtocolParams",
    "RTreeStrategy",
    "RandomStreams",
    "RoutingStrategy",
    "RuntimeContext",
    "STRATEGIES",
    "Simulator",
    "Subscription",
    "SweepResult",
    "Topology",
    "TopicSpec",
    "ViaNeighbor",
    "Workload",
    "build_environment",
    "compute_dr_table",
    "compute_dr_tables",
    "expected_delay_m",
    "expected_delivery_ratio_m",
    "full_mesh",
    "generate_workload",
    "mean_summaries",
    "paper_config",
    "random_regular",
    "run_comparison",
    "run_single",
    "run_repetitions",
    "summarize",
    "sweep",
    "waxman",
]

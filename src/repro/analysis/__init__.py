"""Post-hoc analysis tools: route stretch and control-plane convergence."""

from repro.analysis.convergence import ConvergenceReport, convergence_report
from repro.analysis.stretch import StretchReport, stretch_report
from repro.analysis.trace import MessageTrace, MessageTracer, trace_messages

__all__ = [
    "ConvergenceReport",
    "MessageTrace",
    "MessageTracer",
    "StretchReport",
    "convergence_report",
    "stretch_report",
    "trace_messages",
]

"""Control-plane convergence study.

The ``<d, r>`` recursion (§III-B) is solved by repeated local updates; the
paper never reports how fast it settles. This module measures it: rounds to
convergence of :func:`repro.core.computation.compute_dr_table` across the
(topic, subscriber) pairs of a workload, which bounds the time the
distributed protocol needs after a subscription or a monitoring refresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.computation import compute_dr_table
from repro.overlay.monitor import LinkMonitor
from repro.overlay.topology import Topology
from repro.pubsub.topics import Workload


@dataclass(frozen=True)
class ConvergenceReport:
    """Rounds-to-convergence statistics over all workload pairs."""

    pairs: int
    all_converged: bool
    mean_rounds: float
    max_rounds: int
    reachable_fraction: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reports and JSON dumps."""
        return {
            "pairs": self.pairs,
            "all_converged": self.all_converged,
            "mean_rounds": self.mean_rounds,
            "max_rounds": self.max_rounds,
            "reachable_fraction": self.reachable_fraction,
        }


def convergence_report(
    topology: Topology,
    monitor: LinkMonitor,
    workload: Workload,
    m: int = 1,
) -> ConvergenceReport:
    """Solve every pair's recursion and summarise convergence behaviour."""
    estimates = monitor.estimates()
    rounds: List[int] = []
    converged: List[bool] = []
    reachable: List[bool] = []
    for spec in workload.topics:
        for sub in spec.subscriptions:
            table = compute_dr_table(
                topology,
                estimates,
                publisher=spec.publisher,
                subscriber=sub.node,
                deadline=sub.deadline,
                m=m,
            )
            rounds.append(table.rounds)
            converged.append(table.converged)
            reachable.append(table.reachable(spec.publisher))
    if not rounds:
        return ConvergenceReport(
            pairs=0,
            all_converged=True,
            mean_rounds=0.0,
            max_rounds=0,
            reachable_fraction=1.0,
        )
    return ConvergenceReport(
        pairs=len(rounds),
        all_converged=all(converged),
        mean_rounds=float(np.mean(rounds)),
        max_rounds=int(max(rounds)),
        reachable_fraction=float(np.mean(reachable)),
    )

"""Route stretch: how far off the shortest path did deliveries travel?

DCRD's rerouting buys reliability with extra hops — a packet that bounces
off a failed branch travels strictly more overlay links than the shortest
path. The *stretch* of a delivery is its actual hop count divided by the
shortest hop count between publisher and subscriber; a fixed tree always
has stretch very close to 1 (it either takes its one path or loses the
packet), while DCRD's stretch distribution quantifies the detour cost that
shows up as the traffic gap in the paper's Figures 2c–5c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.metrics.collector import MetricsCollector
from repro.overlay.topology import Topology
from repro.pubsub.topics import Workload


@dataclass(frozen=True)
class StretchReport:
    """Distribution summary of per-delivery route stretch."""

    samples: int
    mean: Optional[float]
    p50: Optional[float]
    p95: Optional[float]
    max: Optional[float]
    fraction_direct: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reports and JSON dumps."""
        return {
            "samples": self.samples,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
            "fraction_direct": self.fraction_direct,
        }


def delivery_stretches(
    collector: MetricsCollector,
    topology: Topology,
    workload: Workload,
) -> List[float]:
    """Per-delivery ``hops / shortest_hops`` for every recorded delivery."""
    publisher_of = {spec.topic: spec.publisher for spec in workload.topics}
    stretches: List[float] = []
    for outcome in collector.outcomes():
        if outcome.hops is None or outcome.hops == 0:
            continue
        publisher = publisher_of[outcome.topic]
        if publisher == outcome.subscriber:
            continue
        baseline = topology.shortest_hops(publisher, outcome.subscriber)
        if baseline > 0:
            stretches.append(outcome.hops / baseline)
    return stretches


def stretch_report(
    collector: MetricsCollector,
    topology: Topology,
    workload: Workload,
) -> StretchReport:
    """Summarise the stretch distribution of one finished run."""
    stretches = delivery_stretches(collector, topology, workload)
    if not stretches:
        return StretchReport(
            samples=0, mean=None, p50=None, p95=None, max=None, fraction_direct=None
        )
    values = np.asarray(stretches)
    return StretchReport(
        samples=len(stretches),
        mean=float(values.mean()),
        p50=float(np.quantile(values, 0.5)),
        p95=float(np.quantile(values, 0.95)),
        max=float(values.max()),
        fraction_direct=float(np.mean(values <= 1.0 + 1e-9)),
    )

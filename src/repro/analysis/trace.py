"""Journey reconstruction: explain how one message moved through the overlay.

When the network runs with ``trace=True`` every transmission is recorded;
this module folds those records (plus the delivery table) into a readable
per-message account — hops, retransmissions, losses, bounces — which is
the tool you want when a QoS number looks wrong and you need to see *why*
a packet was late.

Requires frames to be :class:`~repro.pubsub.messages.PacketFrame`-shaped
(the tracer reads ``msg_id`` and ``routing_path`` off the traced frame via
the transmission's position in the record stream). Since
:class:`~repro.overlay.links.Transmission` stores only endpoints and
outcome, the tracer correlates by replaying the records in order and
matching on (src, dst, time); to keep that exact, it accepts the network
object and re-reads its trace list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.overlay.links import FrameKind, OverlayNetwork
from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class HopRecord:
    """One DATA transmission attributed to a message."""

    time: float
    src: int
    dst: int
    survived: bool


@dataclass(frozen=True)
class MessageTrace:
    """Everything the network did for one message."""

    msg_id: int
    hops: List[HopRecord]

    @property
    def transmissions(self) -> int:
        """Total DATA transmissions spent on this message."""
        return len(self.hops)

    @property
    def losses(self) -> int:
        """Transmissions that did not arrive."""
        return sum(1 for hop in self.hops if not hop.survived)

    def describe(self, collector: Optional[MetricsCollector] = None) -> str:
        """A human-readable account of the journey."""
        lines = [f"message {self.msg_id}: {self.transmissions} transmissions, "
                 f"{self.losses} lost"]
        for hop in self.hops:
            mark = "ok  " if hop.survived else "LOST"
            lines.append(f"  t={hop.time:9.4f}s  {hop.src:>3} -> {hop.dst:<3} {mark}")
        if collector is not None:
            for outcome in collector.outcomes():
                if outcome.msg_id != self.msg_id:
                    continue
                if outcome.delivered:
                    status = (
                        f"delivered to {outcome.subscriber} at "
                        f"{outcome.delivery_time:.4f}s "
                        f"({'on time' if outcome.on_time else 'LATE'})"
                    )
                else:
                    status = f"NOT delivered to {outcome.subscriber}"
                lines.append(f"  {status}")
        return "\n".join(lines)


class MessageTracer:
    """Builds :class:`MessageTrace` views from a tracing network.

    The overlay's trace records don't carry the frame, so the tracer keeps
    its own registry: strategies (or tests) call :meth:`observe` is not
    needed — instead the tracer re-reads ``network.transmissions`` and the
    caller supplies the frame-to-transmission mapping implicitly by
    constructing the network with ``trace=True`` *and* this tracer wrapping
    its transmit calls. For the common case (tests, debugging sessions) use
    :func:`trace_messages`, which monkey-wraps ``network.transmit``.
    """

    def __init__(self, network: OverlayNetwork) -> None:
        self.network = network
        self._records: dict = {}
        self._original_transmit = network.transmit
        network.transmit = self._wrapped_transmit  # type: ignore[assignment]

    def _wrapped_transmit(self, src, dst, frame, kind, reliable=False):
        survived = self._original_transmit(src, dst, frame, kind, reliable=reliable)
        if kind is FrameKind.DATA and hasattr(frame, "msg_id"):
            self._records.setdefault(frame.msg_id, []).append(
                HopRecord(
                    time=self.network.sim.now, src=src, dst=dst, survived=survived
                )
            )
        return survived

    def trace(self, msg_id: int) -> MessageTrace:
        """The journey of one message (empty if never transmitted)."""
        return MessageTrace(msg_id=msg_id, hops=list(self._records.get(msg_id, [])))

    def traced_messages(self) -> List[int]:
        """All message ids seen on the wire."""
        return sorted(self._records)

    def detach(self) -> None:
        """Restore the network's original transmit method."""
        self.network.transmit = self._original_transmit  # type: ignore[assignment]


def trace_messages(network: OverlayNetwork) -> MessageTracer:
    """Attach a :class:`MessageTracer` to *network* (returns the tracer)."""
    return MessageTracer(network)

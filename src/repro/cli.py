"""Command-line interface: ``repro-sim``.

Three subcommands:

* ``compare`` — run every strategy against one configuration and print the
  comparison table (the quickstart, as a CLI);
* ``sweep`` — sweep one axis (``pf``, ``degree``, ``size``, ``deadline``,
  ``loss``) and print/export the resulting tables;
* ``figure`` — regenerate one of the paper's figures (2–8) at a chosen
  scale;
* ``study`` — run one of the extension studies (congestion, churn, fec,
  nodes, ablation-timeout, ablation-monitoring).

Examples
--------
::

    repro-sim compare --topology regular --degree 5 --pf 0.06
    repro-sim sweep pf --values 0 0.02 0.04 --duration 30 --csv out.csv
    repro-sim figure 6 --duration 60 --repetitions 3
    repro-sim study congestion --duration 15
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments import figures as figure_drivers
from repro.experiments.config import ExperimentConfig
from repro.experiments.export import sweep_to_csv
from repro.experiments.figures import PANEL_METRICS
from repro.experiments.report import (
    render_cdf,
    render_comparison,
    render_panels,
    render_perf,
    render_sweep,
)
from repro.experiments.runner import (
    DEFAULT_STRATEGIES,
    build_environment,
    run_comparison,
)
from repro.experiments.sweeps import sweep as run_sweep

#: Swept axis -> (value parser, config overrides for one parsed value).
AXES = {
    "pf": (float, lambda v: {"failure_probability": v}),
    "degree": (int, lambda v: {"topology_kind": "regular", "degree": v}),
    "size": (int, lambda v: {"num_nodes": v}),
    "deadline": (float, lambda v: {"deadline_factor": v}),
    "loss": (float, lambda v: {"loss_rate": v}),
}


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="full_mesh",
                        choices=("full_mesh", "regular", "waxman", "erdos_renyi"))
    parser.add_argument("--degree", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=20)
    parser.add_argument("--topics", type=int, default=10)
    parser.add_argument("--pf", type=float, default=0.0)
    parser.add_argument("--loss", type=float, default=1e-4)
    parser.add_argument("--deadline-factor", type=float, default=3.0)
    parser.add_argument("--m", type=int, default=1)
    parser.add_argument(
        "--ordering",
        default=None,
        metavar="LEVEL[:topic,...]",
        help="opt-in delivery-ordering guarantee: fifo, causal or total, "
        "optionally restricted to a comma-separated topic list "
        "(default: unordered delivery, the paper's semantics)",
    )
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--strategies", nargs="*", default=list(DEFAULT_STRATEGIES)
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the SimSanitizer (repro.sanity) to the probe bus: "
        "live invariant checks + end-of-drain conservation accounting "
        "(slower)",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="attach the FrameTracer (repro.trace) to the probe bus and, "
        "for compare, export one JSONL lifecycle trace per strategy; PATH "
        "may contain a {strategy} placeholder "
        "(default: trace-<strategy>.jsonl)",
    )


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        topology_kind=args.topology,
        degree=args.degree,
        num_nodes=args.nodes,
        num_topics=args.topics,
        failure_probability=args.pf,
        loss_rate=args.loss,
        deadline_factor=args.deadline_factor,
        m=args.m,
        ordering=args.ordering,
        duration=args.duration,
        sanitize=args.sanitize,
        trace=args.trace is not None,
    )


def _trace_path(arg: str, strategy: str) -> Path:
    """Resolve the per-strategy JSONL path for ``--trace[=PATH]``."""
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", strategy)
    if not arg:
        return Path(f"trace-{slug}.jsonl")
    if "{strategy}" in arg:
        return Path(arg.replace("{strategy}", slug))
    path = Path(arg)
    return path.with_name(f"{path.stem}-{slug}{path.suffix or '.jsonl'}")


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from(args)
    print(f"Configuration: {config.describe()} (seed={args.seed})")
    if args.trace is None:
        results = run_comparison(
            config, seed=args.seed, strategies=args.strategies
        )
    else:
        # Tracing: keep each environment around so its tracer can be
        # exported after the run (run_comparison only returns summaries).
        results = {}
        for name in args.strategies:
            env = build_environment(config, name, args.seed)
            results[name] = env.execute()
            path = _trace_path(args.trace, name)
            env.tracer.export_jsonl(path)
            print(f"[trace written to {path}]")
    print(render_comparison(results))
    if args.perf:
        print()
        print("Performance counters (see repro.perf):")
        print(render_perf(results))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    base = _config_from(args)
    parse, overrides = AXES[args.axis]
    configs = {}
    for raw in args.values:
        value = parse(raw)
        configs[value] = base.with_updates(**overrides(value))
    result = run_sweep(
        f"sweep over {args.axis}",
        args.axis,
        configs,
        seeds=tuple(range(args.repetitions)),
        strategies=args.strategies,
    )
    for metric in args.metrics:
        print(render_sweep(result, metric))
        print()
    if args.chart:
        from repro.experiments.charts import chart_sweep

        for metric in args.metrics:
            print(chart_sweep(result, metric))
            print()
    if args.csv:
        sweep_to_csv(result, args.csv)
        print(f"[csv written to {args.csv}]")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    seeds = tuple(range(args.repetitions))
    number = args.number
    if number == 7:
        curves = figure_drivers.figure7(args.duration, seeds)
        print(render_cdf(curves))
        return 0
    if number == 8:
        results = figure_drivers.figure8(args.duration, seeds)
        for m in sorted(results):
            print(render_sweep(results[m], "qos_delivery_ratio"))
            print()
        return 0
    driver = {
        2: figure_drivers.figure2,
        3: figure_drivers.figure3,
        4: figure_drivers.figure4,
        5: figure_drivers.figure5,
        6: figure_drivers.figure6,
    }[number]
    result = driver(args.duration, seeds)
    metrics = ("qos_delivery_ratio",) if number == 6 else PANEL_METRICS
    print(render_panels(result, metrics))
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    from repro.extensions.ablations import (
        ack_timeout_ablation,
        monitoring_mode_ablation,
    )
    from repro.extensions.churn import churn_study
    from repro.extensions.congestion import congestion_study
    from repro.extensions.fec import fec_study
    from repro.extensions.heterogeneous import heterogeneity_study
    from repro.extensions.node_failures import node_failure_study

    seeds = tuple(range(args.repetitions))
    studies = {
        "heterogeneous": (
            heterogeneity_study,
            ("qos_delivery_ratio", "packets_per_subscriber"),
        ),
        "congestion": (
            congestion_study,
            ("qos_delivery_ratio", "packets_per_subscriber"),
        ),
        "churn": (churn_study, ("delivery_ratio", "qos_delivery_ratio")),
        "fec": (
            fec_study,
            ("delivery_ratio", "qos_delivery_ratio", "traffic_per_subscriber"),
        ),
        "nodes": (node_failure_study, ("delivery_ratio", "qos_delivery_ratio")),
        "ablation-timeout": (ack_timeout_ablation, ("qos_delivery_ratio",)),
        "ablation-monitoring": (monitoring_mode_ablation, ("qos_delivery_ratio",)),
    }
    driver, metrics = studies[args.name]
    result = driver(duration=args.duration, seeds=seeds)
    print(render_panels(result, metrics))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-sim", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser(
        "compare", help="run all strategies on one configuration"
    )
    _add_config_arguments(compare)
    compare.add_argument(
        "--perf",
        action="store_true",
        help="also print per-strategy performance counters "
        "(control-plane solve time, table reuse, warm-start rounds, plus "
        "any sanity.*/trace.*/probes.* counters from attached observers)",
    )
    compare.set_defaults(handler=cmd_compare)

    sweep_cmd = subparsers.add_parser("sweep", help="sweep one config axis")
    sweep_cmd.add_argument("axis", choices=sorted(AXES))
    sweep_cmd.add_argument("--values", nargs="+", required=True)
    sweep_cmd.add_argument("--repetitions", type=int, default=1)
    sweep_cmd.add_argument(
        "--metrics",
        nargs="*",
        default=["delivery_ratio", "qos_delivery_ratio", "packets_per_subscriber"],
    )
    sweep_cmd.add_argument("--csv", default=None)
    sweep_cmd.add_argument(
        "--chart", action="store_true", help="also render ASCII charts"
    )
    _add_config_arguments(sweep_cmd)
    sweep_cmd.set_defaults(handler=cmd_sweep)

    figure = subparsers.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=range(2, 9))
    figure.add_argument("--duration", type=float, default=30.0)
    figure.add_argument("--repetitions", type=int, default=1)
    figure.set_defaults(handler=cmd_figure)

    study = subparsers.add_parser("study", help="run an extension study")
    study.add_argument(
        "name",
        choices=(
            "congestion",
            "churn",
            "fec",
            "heterogeneous",
            "nodes",
            "ablation-timeout",
            "ablation-monitoring",
        ),
    )
    study.add_argument("--duration", type=float, default=15.0)
    study.add_argument("--repetitions", type=int, default=1)
    study.set_defaults(handler=cmd_study)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

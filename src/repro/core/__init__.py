"""DCRD core: the paper's primary contribution.

* :mod:`repro.core.linkmath` — Eq. 1, the m-transmission link model;
* :mod:`repro.core.computation` — Eq. 2/3, the distributed ``<d, r>``
  recursion and its synchronous fixed-point solver;
* :mod:`repro.core.sending_list` — Theorem 1 ordering and eligibility;
* :mod:`repro.core.theory` — brute-force validators used by property tests;
* :mod:`repro.core.forwarding` — Algorithm 1 + Algorithm 2 as an
  event-driven strategy (:class:`DcrdStrategy`).
"""

from repro.core.computation import (
    ControlPlaneSolver,
    DrTable,
    NodeState,
    ViaNeighbor,
    compute_dr_table,
    compute_dr_tables,
)
from repro.core.forwarding import DcrdStrategy
from repro.core.linkmath import expected_delay_m, expected_delivery_ratio_m, link_params_m
from repro.core.sending_list import eligible_neighbors, order_sending_list
from repro.core.theory import brute_force_best_order, expected_delay_of_order

__all__ = [
    "ControlPlaneSolver",
    "DcrdStrategy",
    "DrTable",
    "NodeState",
    "ViaNeighbor",
    "brute_force_best_order",
    "compute_dr_table",
    "compute_dr_tables",
    "eligible_neighbors",
    "expected_delay_m",
    "expected_delay_of_order",
    "expected_delivery_ratio_m",
    "link_params_m",
    "order_sending_list",
]

"""The distributed ``<d, r>`` recursion (Eq. 2 and Eq. 3) and its solver.

The paper seeds the recursion at the subscriber (``<0, 1>``) and lets every
broker recompute its own ``<d_X, r_X>`` from its neighbours' advertised
values, filtered by the delay budget and ordered by Theorem 1. We solve the
same recursion with synchronous (Jacobi) rounds: round ``k`` recomputes all
nodes from the round ``k-1`` values, which mirrors the hop-by-hop gossip of
the distributed protocol and is deterministic. Cyclic dependencies (two
brokers on each other's sending lists) are permitted, exactly as in the
paper; ``r`` converges monotonically from below and ``d`` stabilises within
a few diameters in practice, with a hard round bound as a backstop.

The result, a :class:`DrTable`, is the per-(publisher, subscriber) control
state: each node's ``<d, r>`` plus its ordered sending list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.core.linkmath import link_params_m
from repro.core.sending_list import order_sending_list
from repro.overlay.monitor import LinkEstimate
from repro.overlay.topology import Edge, Topology, canonical_edge
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class ViaNeighbor:
    """Eq. 2 values for reaching the subscriber via one neighbour.

    ``d_via = alpha_Xi + d_i`` and ``r_via = gamma_Xi * r_i``, where the
    link parameters are the m-transmission values of Eq. 1.
    """

    neighbor: int
    d_via: float
    r_via: float


@dataclass(frozen=True)
class NodeState:
    """One broker's control state for one (publisher, subscriber) pair."""

    d: float
    r: float
    sending_list: Tuple[ViaNeighbor, ...]

    @property
    def neighbor_order(self) -> Tuple[int, ...]:
        """Sending-list neighbour ids, in Theorem 1 order."""
        return tuple(via.neighbor for via in self.sending_list)


def aggregate_dr(vias: Sequence[ViaNeighbor]) -> Tuple[float, float]:
    """Eq. 3: fold an *ordered* sending list into ``(d_X, r_X)``.

    An empty list yields ``(inf, 0)``: the broker cannot reach the
    subscriber within budget through anyone.
    """
    survive = 1.0  # probability all neighbours tried so far failed
    weighted = 0.0
    cumulative_delay = 0.0
    for via in vias:
        cumulative_delay += via.d_via
        weighted += cumulative_delay * via.r_via * survive
        survive *= 1.0 - via.r_via
    r = 1.0 - survive
    if r <= 0.0:
        return float("inf"), 0.0
    return weighted / r, r


@dataclass
class DrTable:
    """Control state of all brokers for one (publisher, subscriber) pair."""

    publisher: int
    subscriber: int
    deadline: float
    states: Dict[int, NodeState]
    budgets: Dict[int, float]
    rounds: int
    converged: bool

    def state(self, node: int) -> NodeState:
        """The :class:`NodeState` of *node*."""
        return self.states[node]

    def sending_list(self, node: int) -> Tuple[int, ...]:
        """Ordered candidate next hops of *node* for this subscriber."""
        return self.states[node].neighbor_order

    def budget(self, node: int) -> float:
        """``D_XS``: the remaining delay requirement at *node*."""
        return self.budgets[node]

    def reachable(self, node: int) -> bool:
        """Whether *node* expects to deliver within budget at all."""
        return self.states[node].r > 0.0


def _estimate_weight_graph(
    topology: Topology, estimates: Mapping[Edge, LinkEstimate]
) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(topology.nodes)
    for edge in topology.edges():
        graph.add_edge(*edge, weight=estimates[edge].alpha)
    return graph


def compute_dr_table(
    topology: Topology,
    estimates: Mapping[Edge, LinkEstimate],
    publisher: int,
    subscriber: int,
    deadline: float,
    m: int = 1,
    max_rounds: Optional[int] = None,
    tol: float = 1e-9,
) -> DrTable:
    """Solve the ``<d, r>`` recursion for one (publisher, subscriber) pair.

    Parameters
    ----------
    topology:
        The overlay graph.
    estimates:
        Per-link :class:`LinkEstimate` beliefs from the monitor.
    publisher / subscriber:
        Broker ids of the pair.
    deadline:
        ``D_PS``, the end-to-end delay requirement in seconds.
    m:
        Per-link transmission budget (Eq. 1).
    max_rounds:
        Hard bound on Jacobi rounds; default ``max(64, 2 * num_nodes)``
        (cyclic feedback damps geometrically, so the constant floor covers
        small graphs with weak links).
    tol:
        Convergence threshold on the max change of any ``d`` or ``r``.
    """
    require(m >= 1, f"m must be >= 1, got {m}")
    require_positive(deadline, "deadline")
    num_nodes = topology.num_nodes
    if max_rounds is None:
        max_rounds = max(64, 2 * num_nodes)

    # Remaining budget at each broker: D_XS = D_PS - shortest_delay(P, X),
    # with shortest delays taken over the monitor's alpha estimates.
    weight_graph = _estimate_weight_graph(topology, estimates)
    dist_from_publisher = nx.single_source_dijkstra_path_length(
        weight_graph, publisher, weight="weight"
    )
    budgets = {
        node: deadline - dist_from_publisher.get(node, float("inf"))
        for node in topology.nodes
    }

    # Per-link m-transmission parameters (Eq. 1), symmetric.
    link_m: Dict[Edge, Tuple[float, float]] = {}
    for edge in topology.edges():
        estimate = estimates[edge]
        link_m[edge] = link_params_m(estimate.alpha, estimate.gamma, m)

    num = topology.num_nodes
    inf = float("inf")
    d: List[float] = [inf] * num
    r: List[float] = [0.0] * num
    d[subscriber], r[subscriber] = 0.0, 1.0

    # Pre-resolve each node's usable links once: (neighbor, alpha_m, gamma_m)
    # with dead links (gamma 0 / alpha inf) dropped up front.
    links_of: List[List[Tuple[int, float, float]]] = [[] for _ in range(num)]
    for node in topology.nodes:
        entries = links_of[node]
        for neighbor in topology.neighbors(node):
            alpha_m, gamma_m = link_m[canonical_edge(node, neighbor)]
            if math.isfinite(alpha_m) and gamma_m > 0.0:
                entries.append((neighbor, alpha_m, gamma_m))

    budget_of: List[float] = [budgets[node] for node in topology.nodes]

    def recompute(node: int) -> Tuple[float, float]:
        """One Eq. 2 + Theorem 1 + Eq. 3 evaluation from current d/r."""
        budget = budget_of[node]
        candidates: List[Tuple[float, int, float, float]] = []
        for neighbor, alpha_m, gamma_m in links_of[node]:
            d_i = d[neighbor]
            # Algorithm 1 line 4: neighbour must expect delivery within the
            # remaining budget; hopeless neighbours cannot help either.
            r_i = r[neighbor]
            if not (d_i < budget) or r_i <= 0.0:
                continue
            d_via = alpha_m + d_i
            r_via = gamma_m * r_i
            candidates.append((d_via / r_via, neighbor, d_via, r_via))
        if not candidates:
            return inf, 0.0
        candidates.sort()
        survive = 1.0
        weighted = 0.0
        cumulative = 0.0
        for _, _, d_via, r_via in candidates:
            cumulative += d_via
            weighted += cumulative * r_via * survive
            survive *= 1.0 - r_via
        r_x = 1.0 - survive
        if r_x <= 0.0:
            return inf, 0.0
        return weighted / r_x, r_x

    rounds = 0
    converged = False
    # Jacobi with dirty-set propagation: a node is recomputed only when one
    # of its neighbours changed in the previous round. Round 1 touches all.
    dirty = set(topology.nodes) - {subscriber}
    neighbors_of = [topology.neighbors(node) for node in topology.nodes]
    while rounds < max_rounds and dirty:
        rounds += 1
        updates: List[Tuple[int, float, float]] = []
        for node in dirty:
            new_d, new_r = recompute(node)
            old_d, old_r = d[node], r[node]
            if abs(new_r - old_r) > tol:
                updates.append((node, new_d, new_r))
            elif math.isinf(new_d) != math.isinf(old_d):
                updates.append((node, new_d, new_r))
            elif math.isfinite(new_d) and abs(new_d - old_d) > tol:
                updates.append((node, new_d, new_r))
        dirty = set()
        for node, new_d, new_r in updates:
            d[node], r[node] = new_d, new_r
            dirty.update(neighbors_of[node])
        dirty.discard(subscriber)
        if not updates:
            converged = True
            break
    if not converged and not dirty:
        converged = True

    def final_vias(node: int) -> Tuple[ViaNeighbor, ...]:
        budget = budget_of[node]
        vias = []
        for neighbor, alpha_m, gamma_m in links_of[node]:
            d_i, r_i = d[neighbor], r[neighbor]
            if not (d_i < budget) or r_i <= 0.0:
                continue
            vias.append(ViaNeighbor(neighbor, alpha_m + d_i, gamma_m * r_i))
        ordered = order_sending_list([(v.neighbor, v.d_via, v.r_via) for v in vias])
        return tuple(ViaNeighbor(*item) for item in ordered)

    states = {}
    for node in topology.nodes:
        vias = () if node == subscriber else final_vias(node)
        states[node] = NodeState(d=d[node], r=r[node], sending_list=vias)
    return DrTable(
        publisher=publisher,
        subscriber=subscriber,
        deadline=deadline,
        states=states,
        budgets=budgets,
        rounds=rounds,
        converged=converged,
    )

"""The distributed ``<d, r>`` recursion (Eq. 2 and Eq. 3) and its solver.

The paper seeds the recursion at the subscriber (``<0, 1>``) and lets every
broker recompute its own ``<d_X, r_X>`` from its neighbours' advertised
values, filtered by the delay budget and ordered by Theorem 1. We solve the
same recursion with synchronous (Jacobi) rounds: round ``k`` recomputes all
nodes from the round ``k-1`` values, which mirrors the hop-by-hop gossip of
the distributed protocol and is deterministic. Cyclic dependencies (two
brokers on each other's sending lists) are permitted, exactly as in the
paper; ``r`` converges monotonically from below and ``d`` stabilises within
a few diameters in practice, with a hard round bound as a backstop.

The result, a :class:`DrTable`, is the per-(publisher, subscriber) control
state: each node's ``<d, r>`` plus its ordered sending list.

Batching and incrementality
---------------------------

Algorithm 1 re-runs after every monitoring cycle, and most of the work of
one (publisher, subscriber) solve is *pair-independent*: the Eq. 1
``(alpha_m, gamma_m)`` link table and the pre-resolved adjacency lists
depend only on the estimates, and the budget Dijkstra depends only on the
publisher. :class:`ControlPlaneSolver` computes each of those artifacts
exactly once per refresh and shares them across every pair solved against
the same estimates — the cold path runs the *identical* arithmetic in the
identical order as a standalone :func:`compute_dr_table` call, so batched
results are bit-identical to per-pair results by construction.

Two further accelerations are layered on top:

* **dirty-edge relevance** (:meth:`ControlPlaneSolver.table_affected`) —
  a changed edge can only influence a table if at least one endpoint has a
  positive delay budget (``dist(P, endpoint) < deadline``); a broker whose
  budget is non-positive provably holds ``<inf, 0>`` forever and its links
  are never read. Tables no changed edge can reach are reused verbatim
  (bit-identical, the solve is skipped entirely);
* **warm-started replay** — every solve records its per-round update
  trajectory in the resulting table. A re-solve against new estimates
  replays that trajectory: in each round, a node is actually recomputed
  only if it touches a changed edge or a node whose value has diverged
  from the recorded run; every other node's round outcome is *copied*
  from the recording, because its inputs (neighbour values and link
  parameters) are bitwise identical to what a from-scratch solve on the
  new estimates would see. The replayed trajectory is therefore — by
  induction over rounds — bit-for-bit the trajectory of a cold solve on
  the new estimates, at the cost of recomputing only the changed edges'
  influence cone. ``tests/core/test_batch_solver.py`` pins this exact
  equivalence.

A naive warm start (seeding Jacobi from the previous ``<d, r>`` values)
was rejected: the tolerance-gated iteration parks values within ``tol``
of budget-eligibility boundaries whenever cyclic feedback oscillates, so
a warm fixed point that differs from the cold one by less than ``tol``
can still flip a strict ``d_i < budget`` comparison and change a sending
list. Replay sidesteps the problem by reproducing the cold trajectory
itself rather than approximating its fixed point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import networkx as nx

from repro.core.linkmath import link_params_m
from repro.core.sending_list import order_sending_list
from repro.overlay.monitor import LinkEstimate
from repro.overlay.topology import Edge, Topology, canonical_edge
from repro.perf import PerfStats
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class ViaNeighbor:
    """Eq. 2 values for reaching the subscriber via one neighbour.

    ``d_via = alpha_Xi + d_i`` and ``r_via = gamma_Xi * r_i``, where the
    link parameters are the m-transmission values of Eq. 1.
    """

    neighbor: int
    d_via: float
    r_via: float


@dataclass(frozen=True)
class NodeState:
    """One broker's control state for one (publisher, subscriber) pair."""

    d: float
    r: float
    sending_list: Tuple[ViaNeighbor, ...]

    @property
    def neighbor_order(self) -> Tuple[int, ...]:
        """Sending-list neighbour ids, in Theorem 1 order."""
        return tuple(via.neighbor for via in self.sending_list)


def aggregate_dr(vias: Sequence[ViaNeighbor]) -> Tuple[float, float]:
    """Eq. 3: fold an *ordered* sending list into ``(d_X, r_X)``.

    An empty list yields ``(inf, 0)``: the broker cannot reach the
    subscriber within budget through anyone.
    """
    survive = 1.0  # probability all neighbours tried so far failed
    weighted = 0.0
    cumulative_delay = 0.0
    for via in vias:
        cumulative_delay += via.d_via
        weighted += cumulative_delay * via.r_via * survive
        survive *= 1.0 - via.r_via
    r = 1.0 - survive
    if r <= 0.0:
        return float("inf"), 0.0
    return weighted / r, r


@dataclass
class DrTable:
    """Control state of all brokers for one (publisher, subscriber) pair."""

    publisher: int
    subscriber: int
    deadline: float
    states: Dict[int, NodeState]
    budgets: Dict[int, float]
    rounds: int
    converged: bool
    #: Per-round ``(node, d, r)`` update lists of the solve that produced
    #: this table; consumed by :meth:`ControlPlaneSolver.solve` to replay
    #: the iteration incrementally after the next refresh. Diagnostic
    #: payload — excluded from equality and repr.
    trajectory: Optional[Tuple[Tuple[Tuple[int, float, float], ...], ...]] = field(
        default=None, compare=False, repr=False
    )
    #: Lazy per-node cache of :meth:`sending_list` results. The forwarding
    #: data plane asks for the same node's list once per dispatched
    #: destination; ``NodeState.neighbor_order`` rebuilds its tuple on every
    #: access, so memoise it here (states are immutable after the solve).
    _orders: Dict[int, Tuple[int, ...]] = field(
        default_factory=dict, compare=False, repr=False
    )

    def state(self, node: int) -> NodeState:
        """The :class:`NodeState` of *node*."""
        return self.states[node]

    def sending_list(self, node: int) -> Tuple[int, ...]:
        """Ordered candidate next hops of *node* for this subscriber."""
        order = self._orders.get(node)
        if order is None:
            order = self.states[node].neighbor_order
            self._orders[node] = order
        return order

    def budget(self, node: int) -> float:
        """``D_XS``: the remaining delay requirement at *node*."""
        return self.budgets[node]

    def reachable(self, node: int) -> bool:
        """Whether *node* expects to deliver within budget at all."""
        return self.states[node].r > 0.0


def _estimate_weight_graph(
    topology: Topology, estimates: Mapping[Edge, LinkEstimate]
) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(topology.nodes)
    for edge in topology.edges():
        graph.add_edge(*edge, weight=estimates[edge].alpha)
    return graph


class SolverDistanceCache:
    """Cross-solver memo of per-publisher Dijkstra maps.

    The budget Dijkstra (:meth:`ControlPlaneSolver.distances_from`) depends
    only on the **alpha-weighted graph** — not on gammas, ``m``, deadlines,
    or the strategy — so neighbouring sweep cells that share a topology
    (same strategy axis, same failure axis under analytic monitoring, a
    different seed elsewhere in the grid) re-run byte-identical Dijkstras.
    This cache keys the per-publisher distance maps by the exact
    ``(num_nodes, sorted (edge, alpha))`` tuple and hands successive
    solvers the *same* lazily filled dict, eliding the repeat calls.

    Exactness: a map is only ever shared between weight graphs whose keys
    — every edge and every alpha, compared as floats — are identical, and
    Dijkstra is a deterministic function of that graph, so a cached map is
    bit-for-bit the map a fresh solve would compute. Sharing is therefore
    invisible to results (only ``control_plane.dijkstra_calls`` shrinks).

    Install an instance into :data:`DIST_CACHE` to enable (the sweep
    engine does this per worker process); the default ``None`` keeps the
    historical per-solver behaviour.
    """

    def __init__(self, max_graphs: int = 8) -> None:
        require(max_graphs >= 1, "max_graphs must be >= 1")
        self._max_graphs = max_graphs
        self._maps: Dict[tuple, Dict[int, Dict[int, float]]] = {}
        self._order: List[tuple] = []
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(topology: Topology, estimates: Mapping[Edge, LinkEstimate]) -> tuple:
        return (
            topology.num_nodes,
            tuple(sorted((edge, est.alpha) for edge, est in estimates.items())),
        )

    def distances_for(
        self, topology: Topology, estimates: Mapping[Edge, LinkEstimate]
    ) -> Dict[int, Dict[int, float]]:
        """The shared per-publisher distance dict of this weight graph."""
        key = self._key(topology, estimates)
        shared = self._maps.get(key)
        if shared is not None:
            self.hits += 1
            # LRU touch.
            self._order.remove(key)
            self._order.append(key)
            return shared
        self.misses += 1
        shared = {}
        self._maps[key] = shared
        self._order.append(key)
        if len(self._order) > self._max_graphs:
            evicted = self._order.pop(0)
            del self._maps[evicted]
        return shared


#: Optional cross-solver distance cache. ``None`` (the default) gives every
#: solver its own private memo; the sweep engine installs a per-process
#: instance so cells sharing a topology reuse solved Dijkstra maps.
DIST_CACHE: Optional[SolverDistanceCache] = None


class ControlPlaneSolver:
    """Shared-artifact solver for all ``<d, r>`` tables of one refresh.

    Constructing the solver resolves everything that is independent of the
    (publisher, subscriber) pair — the Eq. 1 ``(alpha_m, gamma_m)`` table,
    the usable-adjacency lists, and the alpha-weighted graph for budget
    Dijkstras — exactly once. Per-publisher shortest-delay maps are then
    computed lazily and cached, so solving all subscribers of one publisher
    costs a single ``single_source_dijkstra_path_length`` call.

    One solver instance is valid for one immutable estimates snapshot;
    build a fresh instance after every monitoring refresh.
    """

    def __init__(
        self,
        topology: Topology,
        estimates: Mapping[Edge, LinkEstimate],
        m: int = 1,
        max_rounds: Optional[int] = None,
        tol: float = 1e-9,
        perf: Optional[PerfStats] = None,
    ) -> None:
        require(m >= 1, f"m must be >= 1, got {m}")
        self.topology = topology
        self.estimates = estimates
        self.m = m
        num_nodes = topology.num_nodes
        if max_rounds is None:
            max_rounds = max(64, 2 * num_nodes)
        self.max_rounds = max_rounds
        self.tol = tol
        self.perf = perf

        # Per-link m-transmission parameters (Eq. 1), symmetric.
        link_m: Dict[Edge, Tuple[float, float]] = {}
        for edge in topology.edges():
            estimate = estimates[edge]
            link_m[edge] = link_params_m(estimate.alpha, estimate.gamma, m)
        self.link_m = link_m

        # Pre-resolve each node's usable links once: (neighbor, alpha_m,
        # gamma_m) with dead links (gamma 0 / alpha inf) dropped up front.
        links_of: List[List[Tuple[int, float, float]]] = [[] for _ in range(num_nodes)]
        for node in topology.nodes:
            entries = links_of[node]
            for neighbor in topology.neighbors(node):
                alpha_m, gamma_m = link_m[canonical_edge(node, neighbor)]
                if math.isfinite(alpha_m) and gamma_m > 0.0:
                    entries.append((neighbor, alpha_m, gamma_m))
        self.links_of = links_of
        self.neighbors_of = [topology.neighbors(node) for node in topology.nodes]

        self._weight_graph = _estimate_weight_graph(topology, estimates)
        # With a process-level DIST_CACHE installed, solvers built against
        # an identical alpha-weighted graph share one per-publisher memo:
        # the maps are deterministic functions of that graph, so sharing is
        # bit-identical to recomputing (see SolverDistanceCache).
        cache = DIST_CACHE
        if cache is not None:
            self._dist_cache = cache.distances_for(topology, estimates)
        else:
            self._dist_cache: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    def distances_from(self, publisher: int) -> Dict[int, float]:
        """Shortest alpha-weighted delays from *publisher* (cached)."""
        dist = self._dist_cache.get(publisher)
        if dist is None:
            dist = nx.single_source_dijkstra_path_length(
                self._weight_graph, publisher, weight="weight"
            )
            self._dist_cache[publisher] = dist
            if self.perf is not None:
                self.perf.incr("control_plane.dijkstra_calls")
        return dist

    def table_affected(
        self, publisher: int, deadline: float, changed_edges: Iterable[Edge]
    ) -> bool:
        """Whether any changed edge can influence the (publisher, deadline)
        table at all.

        An edge both of whose endpoints have non-positive budget
        (``dist(P, endpoint) >= deadline``) is provably inert: those
        brokers hold ``<inf, 0>`` in every round regardless of the edge's
        parameters, and no other broker ever reads the edge. Only valid
        for gamma-only changes (alpha changes move the distances
        themselves).
        """
        dist = self.distances_from(publisher)
        inf = float("inf")
        for u, v in changed_edges:
            if dist.get(u, inf) < deadline or dist.get(v, inf) < deadline:
                return True
        return False

    # ------------------------------------------------------------------
    def solve(
        self,
        publisher: int,
        subscriber: int,
        deadline: float,
        warm: Optional[DrTable] = None,
        changed_edges: Optional[Iterable[Edge]] = None,
    ) -> DrTable:
        """Solve one (publisher, subscriber) pair against this refresh.

        Without *warm* this is bit-identical to :func:`compute_dr_table`.
        With *warm* (the pair's previous table, carrying its recorded
        trajectory) and *changed_edges*, the iteration replays the
        recorded rounds, recomputing only nodes inside the influence cone
        of the changed edges and copying every other round outcome from
        the recording — producing the exact cold-solve result. A warm
        table whose budgets or identity don't match (different deadline,
        alpha movement, no trajectory) is ignored and the solve falls
        back to cold.
        """
        require_positive(deadline, "deadline")
        topology = self.topology
        num = topology.num_nodes

        # Remaining budget at each broker: D_XS = D_PS - shortest_delay(P, X),
        # with shortest delays taken over the monitor's alpha estimates.
        dist_from_publisher = self.distances_from(publisher)
        budgets = {
            node: deadline - dist_from_publisher.get(node, float("inf"))
            for node in topology.nodes
        }
        budget_of: List[float] = [budgets[node] for node in topology.nodes]

        inf = float("inf")
        warm_ok = (
            warm is not None
            and warm.trajectory is not None
            and warm.subscriber == subscriber
            and warm.publisher == publisher
            and warm.deadline == deadline
            and changed_edges is not None
            and warm.budgets == budgets
        )
        d = [inf] * num
        r = [0.0] * num
        d[subscriber], r[subscriber] = 0.0, 1.0
        dirty = set(topology.nodes) - {subscriber}
        if warm_ok:
            # Replay state: the recorded run's values in lockstep with the
            # live ones, the set of nodes whose live value has diverged
            # from the recording, and the changed edges' endpoints (whose
            # link parameters differ from the recorded run's).
            old_trajectory = warm.trajectory  # type: ignore[union-attr]
            old_d = [inf] * num
            old_r = [0.0] * num
            old_d[subscriber], old_r[subscriber] = 0.0, 1.0
            endpoints: set = set()
            for u, v in changed_edges:  # type: ignore[union-attr]
                endpoints.add(u)
                endpoints.add(v)
            diff: set = set()
            if self.perf is not None:
                self.perf.incr("control_plane.tables_warm_started")
        else:
            old_trajectory = None
            if self.perf is not None:
                self.perf.incr("control_plane.tables_solved_cold")

        links_of = self.links_of
        tol = self.tol

        def recompute(node: int) -> Tuple[float, float]:
            """One Eq. 2 + Theorem 1 + Eq. 3 evaluation from current d/r."""
            budget = budget_of[node]
            candidates: List[Tuple[float, int, float, float]] = []
            for neighbor, alpha_m, gamma_m in links_of[node]:
                d_i = d[neighbor]
                # Algorithm 1 line 4: neighbour must expect delivery within
                # the remaining budget; hopeless neighbours cannot help
                # either.
                r_i = r[neighbor]
                if not (d_i < budget) or r_i <= 0.0:
                    continue
                d_via = alpha_m + d_i
                r_via = gamma_m * r_i
                candidates.append((d_via / r_via, neighbor, d_via, r_via))
            if not candidates:
                return inf, 0.0
            candidates.sort()
            survive = 1.0
            weighted = 0.0
            cumulative = 0.0
            for _, _, d_via, r_via in candidates:
                cumulative += d_via
                weighted += cumulative * r_via * survive
                survive *= 1.0 - r_via
            r_x = 1.0 - survive
            if r_x <= 0.0:
                return inf, 0.0
            return weighted / r_x, r_x

        recomputes = 0

        def gate(node: int) -> Optional[Tuple[int, float, float]]:
            """Recompute *node*; return its update if it moved beyond tol."""
            nonlocal recomputes
            recomputes += 1
            new_d, new_r = recompute(node)
            cur_d, cur_r = d[node], r[node]
            if abs(new_r - cur_r) > tol:
                return node, new_d, new_r
            if math.isinf(new_d) != math.isinf(cur_d):
                return node, new_d, new_r
            if math.isfinite(new_d) and abs(new_d - cur_d) > tol:
                return node, new_d, new_r
            return None

        rounds = 0
        converged = False
        trajectory: List[Tuple[Tuple[int, float, float], ...]] = []
        # Jacobi with dirty-set propagation: a node is recomputed only when
        # one of its neighbours changed in the previous round. A replay
        # further narrows the recomputed set to the changed edges'
        # influence cone; everything outside the cone is copied from the
        # recorded trajectory (bit-identical inputs give bit-identical
        # outcomes, so the copies ARE the cold-solve results).
        neighbors_of = self.neighbors_of
        while rounds < self.max_rounds and dirty:
            rounds += 1
            updates: List[Tuple[int, float, float]] = []
            if old_trajectory is None:
                for node in dirty:
                    update = gate(node)
                    if update is not None:
                        updates.append(update)
            else:
                old_updates = (
                    old_trajectory[rounds - 1]
                    if rounds <= len(old_trajectory)
                    else ()
                )
                # The cone this round: nodes whose own value or one of
                # whose inputs (a neighbour's value, an incident link's
                # parameters) differs from the recorded run.
                cone = set(endpoints)
                for node in diff:
                    cone.add(node)
                    cone.update(neighbors_of[node])
                for entry in old_updates:
                    node = entry[0]
                    if node in dirty and node not in cone:
                        updates.append(entry)
                for node in dirty & cone:
                    update = gate(node)
                    if update is not None:
                        updates.append(update)
            dirty = set()
            for node, new_d, new_r in updates:
                d[node], r[node] = new_d, new_r
                dirty.update(neighbors_of[node])
            dirty.discard(subscriber)
            if old_trajectory is not None:
                for node, up_d, up_r in old_updates:
                    old_d[node], old_r[node] = up_d, up_r
                for node, _, _ in updates:
                    if d[node] == old_d[node] and r[node] == old_r[node]:
                        diff.discard(node)
                    else:
                        diff.add(node)
                for node, _, _ in old_updates:
                    if d[node] == old_d[node] and r[node] == old_r[node]:
                        diff.discard(node)
                    else:
                        diff.add(node)
            trajectory.append(tuple(updates))
            if not updates:
                converged = True
                break
        if not converged and not dirty:
            converged = True
        if self.perf is not None:
            self.perf.incr("control_plane.jacobi_rounds", rounds)
            self.perf.incr("control_plane.node_recomputes", recomputes)

        def final_vias(node: int) -> Tuple[ViaNeighbor, ...]:
            budget = budget_of[node]
            entries = []
            for neighbor, alpha_m, gamma_m in links_of[node]:
                d_i, r_i = d[neighbor], r[neighbor]
                if not (d_i < budget) or r_i <= 0.0:
                    continue
                entries.append((neighbor, alpha_m + d_i, gamma_m * r_i))
            ordered = order_sending_list(entries)
            return tuple(ViaNeighbor(*item) for item in ordered)

        # A replay only needs to re-derive the sending lists inside the
        # final cone: a node whose value matches the recording, with no
        # diverged neighbour and no changed incident link, reproduces its
        # previous NodeState bit-for-bit, so the old state is copied.
        rebuild: Optional[set] = None
        if warm_ok:
            rebuild = set(endpoints)
            for node in diff:
                rebuild.add(node)
                rebuild.update(neighbors_of[node])
        states = {}
        for node in topology.nodes:
            if rebuild is not None and node not in rebuild:
                states[node] = warm.states[node]  # type: ignore[union-attr]
                continue
            vias = () if node == subscriber else final_vias(node)
            states[node] = NodeState(d=d[node], r=r[node], sending_list=vias)
        return DrTable(
            publisher=publisher,
            subscriber=subscriber,
            deadline=deadline,
            states=states,
            budgets=budgets,
            rounds=rounds,
            converged=converged,
            trajectory=tuple(trajectory),
        )


def compute_dr_table(
    topology: Topology,
    estimates: Mapping[Edge, LinkEstimate],
    publisher: int,
    subscriber: int,
    deadline: float,
    m: int = 1,
    max_rounds: Optional[int] = None,
    tol: float = 1e-9,
) -> DrTable:
    """Solve the ``<d, r>`` recursion for one (publisher, subscriber) pair.

    Parameters
    ----------
    topology:
        The overlay graph.
    estimates:
        Per-link :class:`LinkEstimate` beliefs from the monitor.
    publisher / subscriber:
        Broker ids of the pair.
    deadline:
        ``D_PS``, the end-to-end delay requirement in seconds.
    m:
        Per-link transmission budget (Eq. 1).
    max_rounds:
        Hard bound on Jacobi rounds; default ``max(64, 2 * num_nodes)``
        (cyclic feedback damps geometrically, so the constant floor covers
        small graphs with weak links).
    tol:
        Convergence threshold on the max change of any ``d`` or ``r``.

    This is the one-shot convenience wrapper; to solve many pairs against
    the same estimates, build one :class:`ControlPlaneSolver` (or call
    :func:`compute_dr_tables`) so the link table, adjacency lists, and
    per-publisher Dijkstra are shared instead of rebuilt per pair.
    """
    solver = ControlPlaneSolver(
        topology, estimates, m=m, max_rounds=max_rounds, tol=tol
    )
    return solver.solve(publisher, subscriber, deadline)


def compute_dr_tables(
    topology: Topology,
    estimates: Mapping[Edge, LinkEstimate],
    publisher: int,
    pairs: Sequence[Tuple[int, float]],
    m: int = 1,
    max_rounds: Optional[int] = None,
    tol: float = 1e-9,
    warm_tables: Optional[Sequence[Optional[DrTable]]] = None,
    changed_edges: Optional[Iterable[Edge]] = None,
    perf: Optional[PerfStats] = None,
) -> List[DrTable]:
    """Solve all subscribers of one publisher in a single batched pass.

    Parameters
    ----------
    pairs:
        ``(subscriber, deadline)`` tuples; the result list is aligned with
        this sequence.
    warm_tables:
        Optional per-pair previous tables (aligned with *pairs*) used to
        warm-start the Jacobi iteration; entries may be ``None``.
    changed_edges:
        The edges whose estimates changed since the warm tables were
        solved (required for warm-starting to engage).

    The estimate weight graph, the Eq. 1 link table, the adjacency lists,
    and the publisher's Dijkstra are computed once and shared across all
    pairs; without warm tables the results are bit-identical to calling
    :func:`compute_dr_table` once per pair.
    """
    solver = ControlPlaneSolver(
        topology, estimates, m=m, max_rounds=max_rounds, tol=tol, perf=perf
    )
    changed = tuple(changed_edges) if changed_edges is not None else None
    tables: List[DrTable] = []
    for index, (subscriber, deadline) in enumerate(pairs):
        warm = warm_tables[index] if warm_tables is not None else None
        tables.append(
            solver.solve(
                publisher, subscriber, deadline, warm=warm, changed_edges=changed
            )
        )
    return tables

"""DCRD forwarding: Algorithms 1 and 2 as an event-driven strategy.

Algorithm 1 (routing setup) runs at :meth:`DcrdStrategy.setup` and again
after every link-monitoring cycle: for every (topic, subscriber) pair the
strategy solves the ``<d, r>`` recursion and stores the resulting
:class:`~repro.core.computation.DrTable` (per-broker sending lists in
Theorem 1 order).

Algorithm 2 (the per-packet while loop) cannot block in a discrete-event
world, so each received packet becomes a :class:`_DeliveryTask` — a state
machine at broker ``X`` holding:

* ``pending`` — destinations not yet acknowledged downstream (the paper's
  ``flag[i] = 0`` set);
* ``failed_neighbors`` — neighbours that exhausted their ``m``-transmission
  budget within this task (the "X has tried" memory of the while loop).

Dispatch groups pending destinations by their next hop — the first node on
each destination's sending list that is neither on the routing path nor
already failed (lines 8–19) — and sends one copy per distinct hop through
the shared ARQ layer. An ACK flags the copy's destinations done (lines
23–26); an ARQ failure marks the neighbour failed and re-dispatches its
destinations. A destination with no qualified next hop is bounced to the
upstream broker read from the routing path (lines 10–12); when even that is
impossible (the broker is the origin, or the upstream link failed too) the
destination is abandoned and recorded as given up.

Receiving a bounced packet simply starts a new task at the upstream broker —
"the upstream node running the same DCRD algorithm tries the next node on
its sending list" (§III) falls out naturally because the bounced copy's
routing path disqualifies everything already explored.

The whole state machine is event-driven against the
:mod:`repro.substrate` contract — timing flows exclusively through the
shared :class:`~repro.routing.arq.ArqSender` and transmission through
``ctx.network`` — so the identical forwarding logic runs on the
discrete-event kernel and on the live asyncio TCP transport; the
conformance suite (``tests/integration/test_live_conformance.py``)
asserts both substrates deliver the same pairs under the same scripted
faults.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro import probes as _probes
from repro.core.computation import ControlPlaneSolver, DrTable, compute_dr_table
from repro.perf import PerfStats
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.pubsub.topics import TopicSpec
from repro.routing.arq import ArqSender
from repro.routing.base import RoutingStrategy, RuntimeContext


class _DeliveryTask:
    """Algorithm 2 running for one received packet copy at one broker."""

    __slots__ = (
        "strategy",
        "node",
        "frame",
        "pending",
        "failed_neighbors",
        "upstream",
        "_hop_of_copy",
    )

    def __init__(self, strategy: "DcrdStrategy", node: int, frame: PacketFrame) -> None:
        self.strategy = strategy
        self.node = node
        self.frame = frame
        self.pending: Set[int] = set(frame.destinations)
        self.failed_neighbors: Set[int] = set()
        # Lazily resolved by _dispatch (-2 = unset): replayed dispatches
        # never consult the upstream at all.
        self.upstream = -2
        self._hop_of_copy: Dict[int, int] = {}
        # Flow cache: the initial dispatch (empty failed set, untouched
        # pending set) is a pure function of the control state and the
        # frame's (topic, routing path, destination) flow signature, so the
        # computed plan — next-hop groups plus abandoned destinations — is
        # memoised on the strategy and replayed for every later copy of
        # the same flow. Table changes clear the cache (see
        # _invalidate_dispatch_cache); per-frame side effects (forwarded
        # copies, ARQ sends, abandon bookkeeping, probes) are re-executed
        # in the recorded order, so a replay is trace-identical to a
        # recomputation.
        cache = strategy._dispatch_cache
        key = (frame.topic, node, frame.routing_path, frame.destinations)
        plan = cache.get(key)
        if plan is None:
            # The frozenset is iterated while ``pending`` (a distinct set)
            # is mutated, so no defensive copy is needed.
            plan = self._dispatch(frame.destinations, record=True)
            if len(cache) < strategy.DISPATCH_CACHE_CAP:
                cache[key] = plan
        else:
            self._replay(plan)

    # ------------------------------------------------------------------
    def _dispatch(
        self, subscribers: FrozenSet[int], record: bool = False
    ) -> Optional[tuple]:
        """Assign each pending destination to a next hop and send copies.

        The next hop of a destination (lines 9–12) is the first node on its
        sending list that is neither on the routing path (``path_set`` makes
        that test O(1)) nor already failed, else the upstream broker. The
        selection is inlined here with its loop invariants (path, failed
        set, upstream fallback, table plumbing) hoisted out of the
        per-subscriber iteration.

        With ``record=True`` (initial dispatch only) the computed plan is
        returned for the strategy's flow cache: ``(abandons, groups)``
        where ``groups`` is ``((hop, destinations, is_bounce), ...)`` in
        send order.
        """
        groups: Dict[int, Set[int]] = {}
        abandoned = [] if record else None
        pending = self.pending
        frame = self.frame
        path = frame.path_set
        node = self.node
        failed = self.failed_neighbors
        upstream = self.upstream
        if upstream == -2:
            upstream = self.upstream = frame.upstream_of(node)
        bounce = upstream if upstream >= 0 and upstream not in failed else None
        tables_get = self.strategy._tables.get
        # Packed (topic, subscriber) key — matches the interning used for
        # link directions: one int hash per lookup, no tuple allocation.
        topic_key = frame.topic << 21
        for subscriber in subscribers:
            if subscriber not in pending:
                continue
            hop = bounce
            table = tables_get(topic_key | subscriber)
            if table is not None:
                sending_list = table._orders.get(node)
                if sending_list is None:
                    sending_list = table.sending_list(node)
                for candidate in sending_list:
                    if candidate in path or candidate in failed or candidate == node:
                        continue
                    hop = candidate
                    break
            if hop is None:
                pending.discard(subscriber)
                self.strategy.abandon(self.node, self.frame, subscriber)
                if abandoned is not None:
                    abandoned.append(subscriber)
                continue
            group = groups.get(hop)
            if group is None:
                groups[hop] = {subscriber}
            else:
                group.add(subscriber)
        if not groups:
            return (tuple(abandoned), ()) if record else None
        strategy = self.strategy
        strategy.frames_forwarded += len(groups)
        arq_send = strategy.arq.send
        hop_of_copy = self._hop_of_copy
        node = self.node
        frame = self.frame
        probe_bounce = _probes.on_bounce
        plan = [] if record else None
        for hop, dests in groups.items():
            destinations = frozenset(dests)
            copy = frame.forwarded(node, destinations)
            hop_of_copy[copy.transfer_id] = hop
            is_bounce = hop == bounce
            if probe_bounce is not None and is_bounce:
                # The upstream fallback won over every sending-list
                # candidate: this copy is a §III-D bounce.
                probe_bounce(strategy.ctx.sim._now, node, hop, copy)
            if plan is not None:
                plan.append((hop, destinations, is_bounce))
            arq_send(node, hop, copy, self._on_acked, self._on_failed)
        return (tuple(abandoned), tuple(plan)) if record else None

    def _replay(self, plan: tuple) -> None:
        """Re-execute a cached dispatch plan for a fresh frame of the flow."""
        abandons, groups = plan
        strategy = self.strategy
        node = self.node
        frame = self.frame
        if abandons:
            pending = self.pending
            for subscriber in abandons:
                pending.discard(subscriber)
                strategy.abandon(node, frame, subscriber)
        if not groups:
            return
        strategy.frames_forwarded += len(groups)
        arq_send = strategy.arq.send
        hop_of_copy = self._hop_of_copy
        probe_bounce = _probes.on_bounce
        on_acked = self._on_acked
        on_failed = self._on_failed
        forwarded = frame.forwarded
        for hop, destinations, is_bounce in groups:
            copy = forwarded(node, destinations)
            hop_of_copy[copy.transfer_id] = hop
            if is_bounce and probe_bounce is not None:
                probe_bounce(strategy.ctx.sim._now, node, hop, copy)
            arq_send(node, hop, copy, on_acked, on_failed)

    # ------------------------------------------------------------------
    # ARQ callbacks
    # ------------------------------------------------------------------
    def _on_acked(self, copy: PacketFrame) -> None:
        """Lines 23–26: the next hop took responsibility for these dests."""
        self._hop_of_copy.pop(copy.transfer_id, None)
        self.pending -= copy.destinations

    def _on_failed(self, copy: PacketFrame) -> None:
        """m transmissions went unACKed: mark the hop dead, re-dispatch."""
        hop = self._hop_of_copy.pop(copy.transfer_id)
        self.failed_neighbors.add(hop)
        probe = _probes.on_failover
        if probe is not None:
            probe(self.strategy.ctx.sim._now, self.node, hop, copy)
        self._dispatch(copy.destinations)


class DcrdStrategy(RoutingStrategy):
    """Delay-Cognizant Reliable Delivery (the paper's contribution)."""

    name = "DCRD"
    uses_acks = True
    #: Upper bound on memoised dispatch plans (safety valve for workloads
    #: with unbounded flow diversity; steady-state runs stay far below it).
    DISPATCH_CACHE_CAP = 65536

    #: Reuse unaffected tables and warm-start re-solves between refreshes.
    #: Flip to False (per instance) to force the from-scratch reference
    #: behaviour: every refresh with changed estimates re-solves every pair
    #: cold, exactly like the original per-pair Algorithm 1.
    incremental = True
    #: Seed re-solved tables from their previous converged ``<d, r>``
    #: vectors (only meaningful while ``incremental`` is on).
    warm_start = True

    def __init__(self, ctx: RuntimeContext) -> None:
        super().__init__(ctx)
        self.arq = ArqSender(ctx)
        # Both table maps are keyed by the packed pair id
        # ``(topic << 21) | subscriber`` (node ids fit 21 bits, like the
        # overlay's packed direction ids), so the per-subscriber dispatch
        # lookup hashes one int instead of building a tuple.
        self._tables: Dict[int, DrTable] = {}
        # Raw solver outputs, kept separately from ``_tables`` so subclasses
        # that post-process published tables (e.g. the naive-order ablation)
        # never pollute the warm-start sources.
        self._warm_tables: Dict[int, DrTable] = {}
        # Flow cache for initial dispatch plans (see _DeliveryTask); any
        # table change clears it, so cached plans never outlive the control
        # state they were computed from.
        self._dispatch_cache: Dict[tuple, tuple] = {}
        self._monitor_version: int = -1
        self.perf = PerfStats()
        self.tasks_started = 0
        self.abandoned = 0
        self.table_rebuilds = 0

    # ------------------------------------------------------------------
    # Control plane (Algorithm 1)
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Solve the ``<d, r>`` recursion for every (topic, subscriber) pair."""
        self._rebuild_tables()
        # handle_ack is a pure delegation to the ARQ layer; skip the hop on
        # the per-ACK hot path unless a subclass overrides it. Bound here
        # rather than in __init__ so subclasses that swap in their own
        # ArqSender (e.g. the adaptive-RTO extension) are honoured.
        if type(self).handle_ack is DcrdStrategy.handle_ack:
            self.handle_ack = self.arq.handle_ack

    def on_monitor_refresh(self) -> None:
        """Re-run Algorithm 1 when the monitor publishes new estimates."""
        self._rebuild_tables()

    def _rebuild_tables(self) -> None:
        monitor = self.ctx.monitor
        version = monitor.version
        if version == self._monitor_version:
            # Estimates unchanged since the last rebuild: every table is
            # still the exact solution. O(1) thanks to the version counter.
            self.perf.incr("control_plane.refreshes_noop")
            return
        # Change tracking is only valid across a single version step with
        # incrementality on; anything else (first build, missed refreshes,
        # moved latency estimates) falls back to treating every edge as
        # changed, which disables reuse and warm-starting below.
        track_changes = (
            self.incremental
            and self._monitor_version == version - 1
            and not monitor.last_alpha_changed
        )
        changed = monitor.last_changed if track_changes else None
        self._monitor_version = version
        self.table_rebuilds += 1
        self._dispatch_cache.clear()
        self.perf.incr("control_plane.refreshes")
        with self.perf.timer("control_plane.solve_time_s"):
            solver = ControlPlaneSolver(
                self.ctx.topology,
                monitor.estimates(),
                m=self.ctx.params.m,
                perf=self.perf,
            )
            for spec in self.ctx.workload.topics:
                topic_key = spec.topic << 21
                for sub in spec.subscriptions:
                    key = topic_key | sub.node
                    previous = self._warm_tables.get(key)
                    if (
                        changed is not None
                        and previous is not None
                        and key in self._tables
                        and previous.deadline == sub.deadline
                        and not solver.table_affected(
                            spec.publisher, sub.deadline, changed
                        )
                    ):
                        # No changed edge can reach this table's positive-
                        # budget region: the from-scratch solve would
                        # reproduce it bit for bit, so keep it.
                        self.perf.incr("control_plane.tables_reused")
                        continue
                    warm = previous if (self.warm_start and changed is not None) else None
                    table = solver.solve(
                        spec.publisher,
                        sub.node,
                        sub.deadline,
                        warm=warm,
                        changed_edges=changed,
                    )
                    probe = _probes.on_table_solved
                    if probe is not None:
                        # Raw solver output, before any subclass reorders
                        # its published copy (the naive-order ablation
                        # violates Theorem 1 on purpose). Filter family:
                        # handlers may substitute the table (the sanitizer's
                        # missort mutation does).
                        table = probe(table)
                    self._tables[key] = table
                    self._warm_tables[key] = table

    def table(self, topic: int, subscriber: int) -> DrTable:
        """The control state of one (topic, subscriber) pair."""
        try:
            return self._tables[(topic << 21) | subscriber]
        except KeyError:
            raise KeyError((topic, subscriber)) from None

    def sending_list(self, topic: int, subscriber: int, node: int) -> Tuple[int, ...]:
        """Node *node*'s ordered candidates for *subscriber* of *topic*.

        Unknown pairs (e.g. a subscriber that unsubscribed while copies
        were in flight) yield an empty list, so the forwarding task
        abandons the destination cleanly.
        """
        table = self._tables.get((topic << 21) | subscriber)
        if table is None:
            return ()
        return table.sending_list(node)

    # ------------------------------------------------------------------
    # Subscription churn (incremental Algorithm 1)
    # ------------------------------------------------------------------
    def on_subscription_added(self, topic: int, subscription) -> None:
        """Solve the recursion for just the new (topic, subscriber) pair."""
        spec = self.ctx.workload.topic(topic)
        table = compute_dr_table(
            self.ctx.topology,
            self.ctx.monitor.estimates(),
            publisher=spec.publisher,
            subscriber=subscription.node,
            deadline=subscription.deadline,
            m=self.ctx.params.m,
        )
        probe = _probes.on_table_solved
        if probe is not None:
            table = probe(table)
        key = (topic << 21) | subscription.node
        self._tables[key] = table
        self._warm_tables[key] = table
        self._dispatch_cache.clear()

    def on_subscription_removed(self, topic: int, node: int) -> None:
        """Drop the pair's control state; in-flight copies self-abandon."""
        key = (topic << 21) | node
        self._tables.pop(key, None)
        self._warm_tables.pop(key, None)
        self._dispatch_cache.clear()

    # ------------------------------------------------------------------
    # Data plane (Algorithm 2)
    # ------------------------------------------------------------------
    def publish(self, spec: TopicSpec, msg_id: int) -> None:
        """Inject a fresh packet at the publisher's broker.

        The fan-out set comes from the workload's shared
        :class:`~repro.pubsub.topics.SubscriptionIndex` when *spec* is the
        workload's current spec for the topic — one indexed lookup instead
        of rebuilding a frozenset per publish, which keeps publish cost
        independent of subscriber count. Foreign specs (tests injecting
        synthetic topics) fall back to the direct construction.
        """
        index = self.ctx.workload.index()
        index.refresh()
        if index._specs.get(spec.topic) is spec:
            destinations = index._destinations[spec.topic]
        else:
            destinations = frozenset(spec.subscriber_nodes)
        destinations = self._deliver_local_at_origin(spec, msg_id, destinations)
        if not destinations:
            return
        frame = PacketFrame.fresh(
            msg_id=msg_id,
            topic=spec.topic,
            origin=spec.publisher,
            publish_time=self.ctx.sim.now,
            destinations=destinations,
        )
        self._start_task(spec.publisher, frame)

    def handle_data(self, node: int, sender: int, frame: PacketFrame) -> None:
        """A copy arrived (fresh or bounced): run Algorithm 2 at *node*."""
        self._start_task(node, frame)

    def handle_ack(self, node: int, sender: int, ack: AckFrame) -> None:
        """Route hop-by-hop ACKs into the ARQ layer."""
        self.arq.handle_ack(node, sender, ack)

    # ------------------------------------------------------------------
    def _start_task(self, node: int, frame: PacketFrame) -> None:
        self.tasks_started += 1
        _DeliveryTask(self, node, frame)

    def abandon(self, node: int, frame: PacketFrame, subscriber: int) -> None:
        """Record a destination no broker could make progress on.

        The persistency-mode extension overrides this hook to store the
        packet instead of dropping it (§III's persistency mode).
        """
        self.abandoned += 1
        probe = _probes.on_abandon
        if probe is not None:
            probe(self.ctx.sim._now, node, frame, subscriber)
        self.ctx.metrics.record_give_up(frame.msg_id, subscriber)

    def _deliver_local_at_origin(
        self, spec: TopicSpec, msg_id: int, destinations: FrozenSet[int]
    ) -> FrozenSet[int]:
        if spec.publisher in destinations:
            self.ctx.metrics.record_delivery(msg_id, spec.publisher, self.ctx.sim.now)
            return destinations - {spec.publisher}
        return destinations

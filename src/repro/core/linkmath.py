"""Equation 1: the m-transmission link model.

Given a link's single-transmission latency ``alpha1`` and delivery ratio
``gamma1``, and a per-link transmission budget ``m``, the paper derives

.. math::

    \\alpha^{(m)} = \\frac{\\sum_{k=1}^{m} (k\\,\\alpha^{(1)})\\,
        \\gamma^{(1)} (1-\\gamma^{(1)})^{k-1}}{1-(1-\\gamma^{(1)})^m},
    \\qquad
    \\gamma^{(m)} = 1-(1-\\gamma^{(1)})^m .

``alpha^{(m)}`` is *conditional on eventual success within m transmissions*
(the paper's "implicit condition"); ``gamma^{(m)}`` is the probability that
at least one of the m transmissions gets through.
"""

from __future__ import annotations

from typing import Tuple

from repro.util.validation import require, require_non_negative, require_probability


def expected_delivery_ratio_m(gamma1: float, m: int) -> float:
    """``gamma^(m)``: probability at least one of *m* transmissions succeeds."""
    require_probability(gamma1, "gamma1")
    require(m >= 1, f"m must be >= 1, got {m}")
    return 1.0 - (1.0 - gamma1) ** m


def expected_delay_m(alpha1: float, gamma1: float, m: int) -> float:
    """``alpha^(m)``: expected latency conditional on success within *m* tries.

    Each failed attempt costs one ``alpha1`` (the paper's retransmission
    timer equals the expected link latency), so success at attempt ``k``
    costs ``k * alpha1``. For ``gamma1 == 0`` the conditional expectation is
    undefined; following the paper's convention the function returns
    ``float('inf')``.
    """
    require_non_negative(alpha1, "alpha1")
    require_probability(gamma1, "gamma1")
    require(m >= 1, f"m must be >= 1, got {m}")
    if gamma1 == 0.0:
        return float("inf")
    numerator = sum(
        k * alpha1 * gamma1 * (1.0 - gamma1) ** (k - 1) for k in range(1, m + 1)
    )
    denominator = 1.0 - (1.0 - gamma1) ** m
    if denominator == 0.0:
        # gamma1 is denormal-small: (1 - gamma1) rounds to exactly 1.0 and
        # the conditional expectation is numerically indistinguishable from
        # the dead-link case.
        return float("inf")
    return numerator / denominator


def link_params_m(alpha1: float, gamma1: float, m: int) -> Tuple[float, float]:
    """Both Eq. 1 quantities as ``(alpha_m, gamma_m)``."""
    return (
        expected_delay_m(alpha1, gamma1, m),
        expected_delivery_ratio_m(gamma1, m),
    )

"""Sending-list construction: eligibility filter and Theorem 1 ordering.

A neighbour ``i`` of broker ``X`` is *eligible* for subscriber ``S`` only if
its own expected delay satisfies ``d_i < D_XS`` (Algorithm 1, line 4) —
i.e. it is expected to deliver within the remaining delay budget. Eligible
neighbours are then sorted ascending by the ratio ``d_X^i / r_X^i``
(Theorem 1), which the paper proves is the unique order (up to ties)
minimising the expected delay ``d_X`` of Eq. 3.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def eligible_neighbors(
    neighbor_delays: Sequence[Tuple[int, float]],
    delay_budget: float,
) -> List[int]:
    """Filter neighbours by the paper's ``d_i < D_XS`` rule.

    Parameters
    ----------
    neighbor_delays:
        ``(neighbor_id, d_i)`` pairs, where ``d_i`` is the neighbour's own
        expected delay to the subscriber (``inf`` when unknown/unreachable).
    delay_budget:
        ``D_XS``, the remaining delay requirement at this broker.

    Returns the ids that pass, preserving input order.
    """
    return [
        neighbor
        for neighbor, delay in neighbor_delays
        if delay < delay_budget
    ]


def theorem1_key(d_via: float, r_via: float) -> float:
    """The sort key ``d_X^i / r_X^i`` of Theorem 1.

    ``r_via == 0`` yields ``inf`` so hopeless neighbours sink to the end of
    the list (they contribute nothing to Eq. 3 either way).
    """
    if r_via <= 0.0:
        return float("inf")
    return d_via / r_via


def order_sending_list(
    candidates: Sequence[Tuple[int, float, float]],
) -> List[Tuple[int, float, float]]:
    """Sort ``(neighbor, d_via, r_via)`` triples per Theorem 1.

    Ties on the ratio are broken by neighbour id to keep the distributed
    computation deterministic across runs.
    """
    return sorted(
        candidates,
        key=lambda item: (theorem1_key(item[1], item[2]), item[0]),
    )

"""Validators for the paper's analytical claims.

These are deliberately *independent* re-derivations used by the test suite:

* :func:`expected_delay_of_order` evaluates Eq. 3's numerator/denominator
  for an arbitrary neighbour order, term by term, without the incremental
  shortcuts of :func:`repro.core.computation.aggregate_dr`;
* :func:`brute_force_best_order` exhaustively searches all ``n!`` orders,
  which the property tests compare against the Theorem 1 sort.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Sequence, Tuple


def expected_delay_of_order(
    d_via: Sequence[float],
    r_via: Sequence[float],
    order: Sequence[int],
) -> float:
    """Eq. 3's expected delay ``d_X`` for the given try order.

    ``order`` holds indices into ``d_via``/``r_via``. Returns ``inf`` when
    no neighbour can deliver (``r_X == 0``).
    """
    if len(d_via) != len(r_via):
        raise ValueError("d_via and r_via must have equal length")
    numerator = 0.0
    cumulative = 0.0
    survive = 1.0
    for index in order:
        cumulative += d_via[index]
        numerator += cumulative * r_via[index] * survive
        survive *= 1.0 - r_via[index]
    r_total = 1.0 - survive
    if r_total <= 0.0:
        return float("inf")
    return numerator / r_total


def delivery_ratio_of_order(r_via: Sequence[float]) -> float:
    """Eq. 3's ``r_X`` — independent of the order, by construction."""
    survive = 1.0
    for r in r_via:
        survive *= 1.0 - r
    return 1.0 - survive


def brute_force_best_order(
    d_via: Sequence[float],
    r_via: Sequence[float],
) -> Tuple[List[int], float]:
    """Exhaustively find an order minimising Eq. 3's expected delay.

    Only sensible for small ``n`` (tests use ``n <= 6``). Returns
    ``(best_order, best_delay)``; ties resolve to the lexicographically
    smallest order so results are deterministic.
    """
    n = len(d_via)
    best_order: List[int] = list(range(n))
    best_delay = math.inf
    for permutation in itertools.permutations(range(n)):
        delay = expected_delay_of_order(d_via, r_via, permutation)
        if delay < best_delay - 1e-15:
            best_delay = delay
            best_order = list(permutation)
    return best_order, best_delay


def theorem1_order(d_via: Sequence[float], r_via: Sequence[float]) -> List[int]:
    """Indices sorted by the Theorem 1 ratio ``d/r`` (ties by index)."""
    def key(index: int) -> Tuple[float, int]:
        r = r_via[index]
        ratio = math.inf if r <= 0.0 else d_via[index] / r
        return (ratio, index)

    return sorted(range(len(d_via)), key=key)

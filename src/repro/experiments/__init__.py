"""Experiment harness: configs, runner, sweeps, per-figure drivers, reports."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    STRATEGIES,
    SimulationEnvironment,
    build_environment,
    run_comparison,
    run_single,
)
from repro.experiments.cache import SweepCache
from repro.experiments.sweeps import (
    SweepExecutor,
    SweepResult,
    run_repetitions,
    sweep,
)

__all__ = [
    "STRATEGIES",
    "ExperimentConfig",
    "SimulationEnvironment",
    "SweepCache",
    "SweepExecutor",
    "SweepResult",
    "build_environment",
    "run_comparison",
    "run_repetitions",
    "run_single",
    "sweep",
]

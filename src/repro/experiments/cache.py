"""Content-addressed sweep-cell cache with an append-only journal.

Regenerating the paper's Figures 2–8 recomputes every (config, strategy,
seed) grid cell from scratch on every invocation, even though almost all
cells are unchanged between runs. Every cell is a pure function of its
triple — the runner derives topology, workload, failures and loss draws
from the seed alone — so its result can be addressed by a digest of

* the :class:`~repro.experiments.config.ExperimentConfig` canonical dict,
* the strategy name,
* the seed, and
* a fingerprint of the ``repro`` package source code (any code change
  invalidates every cached cell — conservative, but the only invalidation
  rule that cannot silently serve stale results).

:class:`SweepCache` persists finished cells to an append-only JSONL journal
under the cache directory (``results/.sweep_cache/`` by default). The
journal doubles as the checkpoint: the sweep engine writes each cell as it
finishes (not after the whole grid), so a killed run resumes from the last
completed cell, and one failing cell cannot discard its siblings' work. A
partially written trailing line (the kill happened mid-write) is skipped on
load and overwritten by the resumed run.

Cached payloads round-trip bit-exactly: JSON serialises floats via
``repr``, which Python guarantees to be shortest-round-trip, so a summary
loaded from the journal compares equal (field by field, including every
delay sample) to the freshly computed one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

import repro
from repro.experiments.config import ExperimentConfig
from repro.metrics.summary import MetricsSummary

#: Bump to invalidate every cached cell on a cache-format change.
CACHE_FORMAT = 1

#: Journal file name inside the cache directory.
JOURNAL_NAME = "journal.jsonl"


# ----------------------------------------------------------------------
# Canonical config representation
# ----------------------------------------------------------------------
def canonical_config(config: ExperimentConfig) -> Dict[str, object]:
    """A JSON-stable dict of every config field (tuples become lists)."""
    raw = dataclasses.asdict(config)
    return json.loads(json.dumps(raw, sort_keys=True))


def config_from_dict(payload: Dict[str, object]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`canonical_config`.

    JSON has no tuple type; every list value maps back to a tuple (no
    config field is semantically a list).
    """
    restored = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.items()
    }
    return ExperimentConfig(**restored)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Code fingerprint
# ----------------------------------------------------------------------
_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """A digest over every ``repro`` source file (memoised per process).

    Any change to the package — a solver tweak, a new RNG draw, a metrics
    fix — changes the fingerprint and therefore every cell digest, so the
    cache can never serve a result the current code would not reproduce.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cell_digest(
    config: ExperimentConfig,
    strategy: str,
    seed: int,
    fingerprint: Optional[str] = None,
) -> str:
    """The content address of one (config, strategy, seed) cell."""
    payload = {
        "format": CACHE_FORMAT,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
        "config": canonical_config(config),
        "strategy": strategy,
        "seed": int(seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Summary serialisation
# ----------------------------------------------------------------------
def summary_payload(summary: MetricsSummary) -> Dict[str, object]:
    """A JSON-serialisable dict carrying *every* summary field.

    Unlike :meth:`MetricsSummary.as_dict` this includes the delay samples
    (Figure 7 needs them) and the perf snapshot (so cached cells still
    report their original counters).
    """
    payload: Dict[str, object] = dict(summary.as_dict())
    payload["late_normalized_delays"] = list(summary.late_normalized_delays)
    payload["perf"] = dict(summary.perf)
    return payload


def summary_from_payload(payload: Dict[str, object]) -> MetricsSummary:
    """Rebuild a :class:`MetricsSummary` from :func:`summary_payload`."""
    data = dict(payload)
    return MetricsSummary(
        strategy=data["strategy"],
        messages_published=data["messages_published"],
        expected_deliveries=data["expected_deliveries"],
        delivered=data["delivered"],
        on_time=data["on_time"],
        duplicates=data["duplicates"],
        data_transmissions=data["data_transmissions"],
        delivery_ratio=data["delivery_ratio"],
        qos_delivery_ratio=data["qos_delivery_ratio"],
        packets_per_subscriber=data["packets_per_subscriber"],
        mean_delay=data["mean_delay"],
        p95_delay=data["p95_delay"],
        traffic_per_subscriber=data["traffic_per_subscriber"],
        late_normalized_delays=list(data.get("late_normalized_delays", [])),
        perf=dict(data.get("perf", {})),
    )


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class SweepCache:
    """Digest-addressed store of finished sweep cells, journalled to disk.

    One instance owns one cache directory. The in-memory index is loaded
    from the journal at construction; :meth:`put` appends one JSONL line
    per cell and flushes immediately, so every completed cell survives a
    killed process. Only the parent (sweep-driving) process writes; pool
    workers never touch the journal.
    """

    def __init__(self, root: Union[str, Path] = Path("results/.sweep_cache")) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / JOURNAL_NAME
        self._entries: Dict[str, Dict[str, object]] = {}
        self._journal: Optional[IO[str]] = None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._load()

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        if not self.journal_path.exists():
            return
        with self.journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    digest = record["digest"]
                    payload = record["summary"]
                except (ValueError, KeyError, TypeError):
                    # A truncated trailing line from a killed writer (or
                    # unrelated corruption): skip it — the cell will simply
                    # be recomputed and re-journalled.
                    continue
                self._entries[digest] = payload

    # -- queries -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def get(self, digest: str) -> Optional[MetricsSummary]:
        """The cached summary of *digest*, or ``None`` (counts hit/miss)."""
        payload = self._entries.get(digest)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return summary_from_payload(payload)

    def coverage(self, digests: List[str]) -> float:
        """Fraction of *digests* already cached (1.0 for an empty list)."""
        if not digests:
            return 1.0
        cached = sum(1 for digest in digests if digest in self._entries)
        return cached / len(digests)

    # -- writes --------------------------------------------------------
    def put(
        self,
        digest: str,
        config: ExperimentConfig,
        strategy: str,
        seed: int,
        summary: MetricsSummary,
    ) -> None:
        """Journal one finished cell (append + flush: a checkpoint)."""
        payload = summary_payload(summary)
        record = {
            "digest": digest,
            "strategy": strategy,
            "seed": int(seed),
            "config": canonical_config(config),
            "summary": payload,
        }
        if self._journal is None:
            # A journal killed mid-write may end without a newline; start
            # on a fresh line so the new record is not glued to the stub.
            needs_newline = (
                self.journal_path.exists()
                and self.journal_path.stat().st_size > 0
                and not self.journal_path.read_bytes().endswith(b"\n")
            )
            self._journal = self.journal_path.open("a", encoding="utf-8")
            if needs_newline:
                self._journal.write("\n")
        self._journal.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal.flush()
        self._entries[digest] = payload
        self.writes += 1

    def close(self) -> None:
        """Close the journal handle (idempotent)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "SweepCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepCache({str(self.root)!r}, entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

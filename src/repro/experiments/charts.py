"""ASCII line charts: see the figures in a terminal.

No plotting stack is required offline, so this module renders sweep curves
into a fixed-size character grid — enough to eyeball the orderings and
crossovers the paper's figures show. One symbol per strategy; points that
share a cell print the later strategy's symbol.

>>> from repro.experiments.charts import render_chart
>>> curves = {"A": [(0, 0.0), (1, 1.0)], "B": [(0, 1.0), (1, 0.0)]}
>>> print(render_chart(curves, title="demo", height=5, width=21))  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.sweeps import SweepResult

#: Plot symbols assigned to curves in insertion order.
SYMBOLS = "*o+x#@%&"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(cells - 1, max(0, round(fraction * (cells - 1))))


def render_chart(
    curves: Mapping[str, Sequence[Tuple[float, float]]],
    title: str = "",
    height: int = 12,
    width: int = 60,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render ``{label: [(x, y), ...]}`` curves as an ASCII chart."""
    if not curves:
        return "(no curves)"
    xs = [x for points in curves.values() for x, _ in points]
    ys = [y for points in curves.values() for _, y in points]
    if not xs:
        return "(no data)"
    x_low, x_high = min(xs), max(xs)
    if y_range is not None:
        y_low, y_high = y_range
    else:
        y_low, y_high = min(ys), max(ys)
        if y_high == y_low:
            y_high = y_low + 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for (label, points), symbol in zip(curves.items(), SYMBOLS):
        for x, y in points:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = symbol
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:8.3f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{y_low:8.3f} +" + "-" * width + "+")
    lines.append(" " * 10 + f"{x_low:<12g}{'':^{max(0, width - 24)}}{x_high:>12g}")
    legend = "  ".join(
        f"{symbol}={label}" for (label, _), symbol in zip(curves.items(), SYMBOLS)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def chart_sweep(
    result: SweepResult,
    metric: str,
    height: int = 12,
    width: int = 60,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Chart one metric of a sweep (numeric axes only)."""
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for strategy in result.strategies:
        points = []
        for x in result.x_values:
            try:
                x_value = float(x)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ValueError(
                    f"sweep axis value {x!r} is not numeric; chart_sweep "
                    "requires numeric x values"
                ) from None
            points.append((x_value, getattr(result.cells[x][strategy], metric)))
        curves[strategy] = points
    return render_chart(
        curves, title=f"{result.name} — {metric}", height=height, width=width,
        y_range=y_range,
    )

"""Experiment configuration.

One :class:`ExperimentConfig` captures everything that defines a run except
the strategy and the seed: topology family, hazard rates, workload shape,
protocol knobs, and the measurement window. The defaults are the paper's
§IV-A settings, with one deliberate exception — ``duration``: the paper
simulates 2 hours per run, which pure Python cannot afford across all
sweeps; the default measurement window is shorter but every driver accepts
``paper_scale=True`` to restore it (identical code paths, more samples).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.util.validation import (
    require,
    require_positive,
    require_probability,
)

#: The paper's simulated duration per run (§IV-A): two hours.
PAPER_DURATION = 7200.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Full specification of one simulation run (minus strategy and seed)."""

    # --- overlay -----------------------------------------------------
    topology_kind: str = "full_mesh"  # "full_mesh" | "regular" | "waxman" | ...
    num_nodes: int = 20
    degree: Optional[int] = None
    delay_range: Tuple[float, float] = (0.010, 0.050)

    # --- hazards -----------------------------------------------------
    loss_rate: float = 1e-4
    # Optional heterogeneity: each link draws its own loss rate uniformly
    # from this range (overrides loss_rate). None = uniform loss.
    loss_rate_range: Optional[Tuple[float, float]] = None
    failure_probability: float = 0.0
    failure_epoch: float = 1.0
    node_failure_probability: float = 0.0
    # Finite link capacity (seconds of serialisation per DATA frame);
    # None reproduces the paper's infinite-capacity links.
    link_service_time: Optional[float] = None
    # How busy links order waiting frames: "fifo" or "edf" (earliest
    # deadline first, by frame priority). Only meaningful with finite
    # capacity.
    queue_discipline: str = "fifo"
    # EDF overload policy: drop frames whose deadline already passed
    # instead of wasting capacity serving them.
    edf_drop_expired: bool = False

    # --- workload ----------------------------------------------------
    num_topics: int = 10
    publish_interval: float = 1.0
    ps_range: Tuple[float, float] = (0.2, 0.6)
    deadline_factor: float = 3.0
    # Optional per-topic urgency classes (each topic draws its deadline
    # factor from these); None = uniform deadline_factor.
    deadline_factor_choices: Optional[Tuple[float, ...]] = None

    # --- protocol ----------------------------------------------------
    m: int = 1
    ack_timeout_factor: float = 2.0
    # Opt-in delivery-ordering guarantee, as "LEVEL[:topic,...]" with
    # LEVEL one of repro.ordering.LEVELS ("fifo" | "causal" | "total");
    # no topic list covers every topic. None (the default) keeps the
    # paper's unordered delivery and the bit-identical fast path.
    ordering: Optional[str] = None

    # --- monitoring --------------------------------------------------
    monitor_period: float = 300.0
    monitor_mode: str = "analytic"

    # --- measurement window -------------------------------------------
    duration: float = 120.0
    drain: float = 10.0

    # --- debugging ----------------------------------------------------
    # Both flags register an observer on the repro.probes bus for the run.
    # Attach the SimSanitizer (repro.sanity): live invariant checks plus
    # end-of-drain conservation accounting. Observation-only — the event
    # trace is bit-identical either way — but costs time and memory, so it
    # defaults to off.
    sanitize: bool = False
    # Attach the FrameTracer (repro.trace): ring-buffered per-frame
    # lifecycle events (publish, transmit, ack, failover, deliver, ...)
    # queryable after the run and exportable as JSONL. Observation-only,
    # same bit-identical guarantee as the sanitizer; defaults to off.
    trace: bool = False

    def __post_init__(self) -> None:
        require(self.num_nodes >= 2, "num_nodes must be >= 2")
        require(
            self.topology_kind
            in ("full_mesh", "regular", "waxman", "erdos_renyi", "ring", "line", "star"),
            f"unknown topology_kind {self.topology_kind!r}",
        )
        if self.topology_kind == "regular":
            require(self.degree is not None, "regular topology needs a degree")
        require_probability(self.loss_rate, "loss_rate")
        if self.loss_rate_range is not None:
            low, high = self.loss_rate_range
            require_probability(low, "loss_rate_range[0]")
            require_probability(high, "loss_rate_range[1]")
            require(low <= high, "loss_rate_range must be non-decreasing")
        require_probability(self.failure_probability, "failure_probability")
        require_probability(self.node_failure_probability, "node_failure_probability")
        require_positive(self.failure_epoch, "failure_epoch")
        if self.link_service_time is not None:
            require_positive(self.link_service_time, "link_service_time")
        require(
            self.queue_discipline in ("fifo", "edf"),
            f"unknown queue_discipline {self.queue_discipline!r}",
        )
        require(self.num_topics >= 1, "num_topics must be >= 1")
        require_positive(self.publish_interval, "publish_interval")
        require_positive(self.deadline_factor, "deadline_factor")
        if self.deadline_factor_choices is not None:
            require(len(self.deadline_factor_choices) >= 1,
                    "deadline_factor_choices must be non-empty")
            for choice in self.deadline_factor_choices:
                require(choice >= 1.0, "deadline factors must be >= 1")
        require(self.m >= 1, "m must be >= 1")
        require_positive(self.ack_timeout_factor, "ack_timeout_factor")
        if self.ordering is not None:
            # Eager validation: an unknown level fails here, at config
            # build time, with an error naming the valid levels.
            from repro.ordering.spec import parse_ordering

            parse_ordering(self.ordering)
        require_positive(self.monitor_period, "monitor_period")
        require(self.monitor_mode in ("analytic", "sampled"), "bad monitor_mode")
        require_positive(self.duration, "duration")
        require(self.drain >= 0, "drain must be >= 0")

    # ------------------------------------------------------------------
    def with_updates(self, **changes: object) -> "ExperimentConfig":
        """A modified copy (frozen dataclass convenience)."""
        return dataclasses.replace(self, **changes)

    @property
    def end_time(self) -> float:
        """Virtual time at which the run stops (publish window + drain)."""
        return self.duration + self.drain

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        topo = self.topology_kind
        if self.degree is not None:
            topo += f"(deg={self.degree})"
        return (
            f"{topo} n={self.num_nodes} Pf={self.failure_probability} "
            f"Pl={self.loss_rate} m={self.m} deadline={self.deadline_factor}x "
            f"T={self.duration}s"
        )


def paper_config(**overrides: object) -> ExperimentConfig:
    """The paper's §IV-A setting (2-hour runs); override freely."""
    base = ExperimentConfig(duration=PAPER_DURATION)
    return base.with_updates(**overrides) if overrides else base

"""Export sweep results to machine-readable formats (CSV / dicts).

The ASCII tables in :mod:`repro.experiments.report` are for eyeballs; this
module feeds plotting pipelines. A :class:`~repro.experiments.sweeps.SweepResult`
flattens to one CSV row per (x, strategy) cell with every summary field, so
any plotting tool can regenerate the paper's figures from the dump.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.cache import SweepCache
from repro.experiments.sweeps import SweepResult

#: Summary fields exported per cell, in column order.
EXPORT_FIELDS = (
    "delivery_ratio",
    "qos_delivery_ratio",
    "packets_per_subscriber",
    "traffic_per_subscriber",
    "messages_published",
    "expected_deliveries",
    "delivered",
    "on_time",
    "duplicates",
    "data_transmissions",
    "mean_delay",
    "p95_delay",
)


def sweep_rows(result: SweepResult) -> List[Dict[str, object]]:
    """Flatten a sweep into one dict per (x, strategy) cell."""
    rows: List[Dict[str, object]] = []
    for x in result.x_values:
        for strategy in result.strategies:
            summary = result.cells[x][strategy]
            row: Dict[str, object] = {
                "sweep": result.name,
                result.x_label: x,
                "strategy": strategy,
            }
            for field in EXPORT_FIELDS:
                row[field] = getattr(summary, field)
            rows.append(row)
    return rows


def sweep_to_csv(
    result: SweepResult,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Render a sweep as CSV; optionally also write it to *path*."""
    rows = sweep_rows(result)
    buffer = io.StringIO()
    if rows:
        writer = csv.DictWriter(
            buffer, fieldnames=list(rows[0].keys()), lineterminator="\n"
        )
        writer.writeheader()
        writer.writerows(rows)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def journal_rows(cache: SweepCache) -> List[Dict[str, object]]:
    """Flatten a sweep cache's journal into one dict per cached cell.

    Columns: the cell digest, strategy, seed, the config fields that vary
    across the paper's sweeps, and every :data:`EXPORT_FIELDS` metric —
    enough for a plotting pipeline to regenerate any figure from the cache
    without re-running a single cell.
    """
    rows: List[Dict[str, object]] = []
    if not cache.journal_path.exists():
        return rows
    for line in cache.journal_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            config = record["config"]
            summary = record["summary"]
        except (ValueError, KeyError, TypeError):
            continue  # truncated trailing line from a killed writer
        row: Dict[str, object] = {
            "digest": record["digest"],
            "strategy": record["strategy"],
            "seed": record["seed"],
        }
        for key in (
            "topology_kind",
            "num_nodes",
            "degree",
            "failure_probability",
            "loss_rate",
            "deadline_factor",
            "m",
            "duration",
        ):
            row[key] = config.get(key)
        for field in EXPORT_FIELDS:
            row[field] = summary.get(field)
        rows.append(row)
    return rows


def journal_to_csv(
    cache: SweepCache,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Render every journalled cell as CSV; optionally write to *path*."""
    rows = journal_rows(cache)
    buffer = io.StringIO()
    if rows:
        writer = csv.DictWriter(
            buffer, fieldnames=list(rows[0].keys()), lineterminator="\n"
        )
        writer.writeheader()
        writer.writerows(rows)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def curves_to_csv(
    curves: Dict[str, Sequence],
    path: Optional[Union[str, Path]] = None,
    x_label: str = "x",
) -> str:
    """Render Figure-7-style ``{label: (xs, ys)}`` curves as long-form CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([x_label, "curve", "cdf"])
    for label, (xs, ys) in curves.items():
        for x, y in zip(xs, ys):
            writer.writerow([x, label, y])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text

"""One driver per figure of the paper's evaluation (§IV, Figures 2–8).

Every function reproduces the corresponding figure's data: the same axis,
the same strategies, the same metrics — only the simulated duration and the
number of repeated topologies are scaled down by default (pure-Python event
simulation is slower than the authors' simulator). Pass
``duration=PAPER_DURATION`` and ``seeds=range(10)`` to restore the paper's
full setting on identical code paths.

The paper has no numbered tables; Figures 2–8 constitute the whole
evaluation, and EXPERIMENTS.md records paper-vs-measured values for each.

Every driver accepts an optional
:class:`~repro.experiments.sweeps.SweepExecutor`: passing one shares a
worker pool and a content-addressed cell cache across figures, so a
re-run regenerates only figures whose cells changed (see docs/SWEEPS.md).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import DEFAULT_STRATEGIES
from repro.experiments.sweeps import (
    ProgressHook,
    SweepExecutor,
    SweepResult,
    run_repetitions,
    sweep,
)
from repro.metrics.cdf import interpolate_cdf

#: Failure-probability axis of Figures 2 and 3.
FAILURE_PROBABILITIES = (0.0, 0.02, 0.04, 0.06, 0.08, 0.10)

#: Node-degree axis of Figure 4.
NODE_DEGREES = (3, 4, 5, 6, 7, 8, 9, 10)

#: Network-size axis of Figure 5.
NETWORK_SIZES = (10, 20, 40, 80, 120, 160)

#: Deadline-multiplier axis of Figure 6.
DEADLINE_FACTORS = (1.5, 2.0, 3.0, 4.0, 5.0, 6.0)

#: Packet-loss axis of Figure 8.
LOSS_RATES = (1e-4, 1e-3, 1e-2, 1e-1)

#: Metrics reported by the three-panel figures (2–5).
PANEL_METRICS = ("delivery_ratio", "qos_delivery_ratio", "packets_per_subscriber")


def _base_config(duration: float, **overrides: object) -> ExperimentConfig:
    return ExperimentConfig(duration=duration).with_updates(**overrides)


def figure2(
    duration: float = 60.0,
    seeds: Sequence[int] = (0, 1, 2),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figure 2: 20-node full mesh, failure probability 0 → 0.1."""
    configs = {
        pf: _base_config(duration, topology_kind="full_mesh", failure_probability=pf)
        for pf in FAILURE_PROBABILITIES
    }
    return sweep(
        "Figure 2: full mesh", "failure probability", configs, seeds,
        strategies, progress, executor=executor,
    )


def figure3(
    duration: float = 60.0,
    seeds: Sequence[int] = (0, 1, 2),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figure 3: 20-node overlay with degree 5, failure probability 0 → 0.1."""
    configs = {
        pf: _base_config(
            duration, topology_kind="regular", degree=5, failure_probability=pf
        )
        for pf in FAILURE_PROBABILITIES
    }
    return sweep(
        "Figure 3: degree 5", "failure probability", configs, seeds,
        strategies, progress, executor=executor,
    )


def figure4(
    duration: float = 60.0,
    seeds: Sequence[int] = (0, 1, 2),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figure 4: node degree 3 → 10 at Pf = 0.06."""
    configs = {
        degree: _base_config(
            duration, topology_kind="regular", degree=degree, failure_probability=0.06
        )
        for degree in NODE_DEGREES
    }
    return sweep(
        "Figure 4: connectivity", "node degree", configs, seeds, strategies,
        progress, executor=executor,
    )


def figure5(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    sizes: Sequence[int] = NETWORK_SIZES,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figure 5: network size 10 → 160 nodes, degree 8, Pf = 0.06."""
    configs = {
        size: _base_config(
            duration,
            topology_kind="regular",
            degree=8,
            num_nodes=size,
            failure_probability=0.06,
        )
        for size in sizes
    }
    return sweep(
        "Figure 5: scalability", "network size", configs, seeds, strategies,
        progress, executor=executor,
    )


def figure6(
    duration: float = 60.0,
    seeds: Sequence[int] = (0, 1, 2),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figure 6: QoS delivery ratio vs deadline multiplier, degree 8, Pf = 0.06."""
    configs = {
        factor: _base_config(
            duration,
            topology_kind="regular",
            degree=8,
            failure_probability=0.06,
            deadline_factor=factor,
        )
        for factor in DEADLINE_FACTORS
    }
    return sweep(
        "Figure 6: QoS requirement", "deadline multiplier", configs, seeds,
        strategies, progress, executor=executor,
    )


def figure7(
    duration: float = 120.0,
    seeds: Sequence[int] = (0, 1, 2),
    grid: Sequence[float] = tuple(1.0 + 0.125 * i for i in range(13)),
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> Dict[str, Tuple[List[float], List[float]]]:
    """Figure 7: CDF of normalised delay of DCRD's deadline-missing packets.

    Returns ``{topology_label: (grid, cdf_at_grid)}`` for the paper's two
    topologies (full mesh and degree 8), both at Pf = 0.06. The x-axis is
    ``actual delay / delay requirement`` (starts at 1: only late packets
    are included).
    """
    results: Dict[str, Tuple[List[float], List[float]]] = {}
    settings = {
        "full-mesh": _base_config(
            duration, topology_kind="full_mesh", failure_probability=0.06
        ),
        "degree-8": _base_config(
            duration, topology_kind="regular", degree=8, failure_probability=0.06
        ),
    }
    for label, config in settings.items():
        summary = run_repetitions(config, "DCRD", seeds, progress, executor=executor)
        results[label] = (list(grid), interpolate_cdf(summary.late_normalized_delays, grid))
    return results


def figure8(
    duration: float = 60.0,
    seeds: Sequence[int] = (0, 1, 2),
    strategies: Sequence[str] = ("DCRD", "R-Tree", "D-Tree", "Multipath"),
    m_values: Sequence[int] = (1, 2),
    loss_rates: Sequence[float] = LOSS_RATES,
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> Mapping[int, SweepResult]:
    """Figure 8: QoS ratio vs packet-loss rate for m = 1 and m = 2.

    Degree 8, Pf = 0.01 (the figure's caption setting). Returns one
    :class:`SweepResult` per ``m``.
    """
    results: Dict[int, SweepResult] = {}
    for m in m_values:
        configs = {
            pl: _base_config(
                duration,
                topology_kind="regular",
                degree=8,
                failure_probability=0.01,
                loss_rate=pl,
                m=m,
            )
            for pl in loss_rates
        }
        results[m] = sweep(
            f"Figure 8: loss sweep (m={m})",
            "packet loss rate",
            configs,
            seeds,
            strategies,
            progress,
            executor=executor,
        )
    return results

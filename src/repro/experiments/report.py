"""ASCII reports: render sweep results as the rows the paper's figures plot."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.experiments.sweeps import SweepResult

#: Human labels of the three panel metrics.
METRIC_LABELS = {
    "delivery_ratio": "Delivery Ratio",
    "qos_delivery_ratio": "QoS Delivery Ratio",
    "packets_per_subscriber": "Packets Sent / Subscriber",
    "traffic_per_subscriber": "Traffic Volume / Subscriber",
    "mean_delay": "Mean End-to-End Delay (s)",
    "duplicates": "Duplicate Copies Received",
}


def format_value(value: object) -> str:
    """Uniform cell formatting (4 significant decimals for floats)."""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A plain monospace table with aligned columns."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_sweep(result: SweepResult, metric: str) -> str:
    """One metric of one sweep as a table (x column + one per strategy)."""
    headers = [result.x_label] + list(result.strategies)
    rows = result.metrics_table(metric)
    title = f"{result.name} — {METRIC_LABELS.get(metric, metric)}"
    return f"{title}\n{format_table(headers, rows)}"


def render_panels(result: SweepResult, metrics: Sequence[str]) -> str:
    """All panels of a figure (the paper's (a)/(b)/(c) subplots)."""
    return "\n\n".join(render_sweep(result, metric) for metric in metrics)


def render_cdf(
    curves: Mapping[str, Tuple[List[float], List[float]]],
    x_label: str = "delay / requirement",
) -> str:
    """Figure 7-style CDF curves as a table with one column per curve."""
    labels = list(curves)
    if not labels:
        return "(no curves)"
    grid = curves[labels[0]][0]
    headers = [x_label] + labels
    rows: List[List[object]] = []
    for index, x in enumerate(grid):
        row: List[object] = [x]
        for label in labels:
            row.append(curves[label][1][index])
        rows.append(row)
    return format_table(headers, rows)


def render_perf(summaries: Mapping[str, object]) -> str:
    """Per-strategy performance counters (one column per strategy).

    Rows are the union of all counter names found in the summaries'
    ``perf`` snapshots (control-plane solve time, tables reused vs
    re-solved, warm-start rounds, event counts — see :mod:`repro.perf`);
    strategies without a counter show ``-``.
    """
    names: List[str] = []
    seen = set()
    for summary in summaries.values():
        for name in getattr(summary, "perf", {}) or {}:
            if name not in seen:
                seen.add(name)
                names.append(name)
    if not names:
        return "(no perf counters recorded)"
    names.sort()
    headers = ["counter"] + list(summaries)
    rows: List[List[object]] = []
    for name in names:
        row: List[object] = [name]
        for summary in summaries.values():
            perf = getattr(summary, "perf", {}) or {}
            row.append(perf[name] if name in perf else "-")
        rows.append(row)
    return format_table(headers, rows)


def render_cache_stats(values: Mapping[str, float], label: str = "sweep") -> str:
    """One-line summary of the sweep engine's ``sweep.*`` counters.

    Used by the experiment driver to report, per figure and per run, how
    much of the grid the cell cache absorbed — the line the CI sweep-smoke
    job parses.
    """
    cached = int(values.get("sweep.cells_cached", 0))
    computed = int(values.get("sweep.cells_computed", 0))
    warm = int(values.get("sweep.solver_warm_hits", 0))
    writes = int(values.get("sweep.checkpoint_writes", 0))
    return (
        f"[{label}] cells_cached={cached} cells_computed={computed} "
        f"solver_warm_hits={warm} checkpoint_writes={writes}"
    )


def render_comparison(summaries: Mapping[str, object]) -> str:
    """A one-row-per-strategy overview of a single configuration."""
    headers = [
        "strategy",
        "delivery",
        "qos",
        "pkts/sub",
        "duplicates",
        "mean delay (ms)",
    ]
    rows = []
    for name, summary in summaries.items():
        mean_delay = getattr(summary, "mean_delay", None)
        rows.append(
            [
                name,
                getattr(summary, "delivery_ratio"),
                getattr(summary, "qos_delivery_ratio"),
                getattr(summary, "packets_per_subscriber"),
                getattr(summary, "duplicates"),
                (mean_delay or 0.0) * 1000.0,
            ]
        )
    return format_table(headers, rows)

"""Assemble and execute one simulation run.

The runner is the composition root: it builds the substrate (topology,
failure schedule, network, monitor), the workload, the strategy under test
and the broker runtimes, wires the periodic processes (publishers, the
monitoring cycle), runs the event loop, and reduces the collector into a
:class:`~repro.metrics.summary.MetricsSummary`.

Fairness across strategies: everything environmental — topology, link
delays, workload placement, the *entire failure schedule* — derives from
the run seed alone, so every strategy faces the identical world; only the
strategy's own behaviour (and hence which random-loss draws it consumes)
differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro import probes as _probes
from repro import sanity as _sanity
from repro import trace as _trace
from repro.core.forwarding import DcrdStrategy
from repro.experiments.config import ExperimentConfig
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import MetricsSummary, summarize
from repro.ordering.plan import OrderingPlan
from repro.overlay.failures import FailureSchedule, NodeFailureSchedule
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.overlay.topology import (
    Topology,
    erdos_renyi,
    full_mesh,
    line,
    random_regular,
    ring,
    star,
    waxman,
)
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.endpoints import PublisherProcess
from repro.pubsub.messages import reset_message_ids
from repro.pubsub.topics import Workload, generate_workload
from repro.routing.base import ProtocolParams, RoutingStrategy, RuntimeContext
from repro.routing.multipath import MultipathStrategy
from repro.routing.oracle import OracleStrategy
from repro.routing.trees import DTreeStrategy, PriorityDTreeStrategy, RTreeStrategy
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError

#: All strategies of the paper's comparison, by report name.
STRATEGIES: Dict[str, Callable[[RuntimeContext], RoutingStrategy]] = {
    "DCRD": DcrdStrategy,
    "R-Tree": RTreeStrategy,
    "D-Tree": DTreeStrategy,
    "ORACLE": OracleStrategy,
    "Multipath": MultipathStrategy,
    # The intro's "priority-based queueing + shortest path tree" approach;
    # only differs from D-Tree when queue_discipline="edf".
    "P-DTree": PriorityDTreeStrategy,
    # "DCRD+persist" and the other extension strategies are appended by
    # repro.extensions at import time to keep this module cycle-free.
}

#: The comparison order used in the paper's figures.
DEFAULT_STRATEGIES = ("DCRD", "R-Tree", "D-Tree", "ORACLE", "Multipath")


def build_topology(config: ExperimentConfig, streams: RandomStreams) -> Topology:
    """Instantiate the configured topology family."""
    rng = streams.get("topology")
    kind = config.topology_kind
    if kind == "full_mesh":
        return full_mesh(config.num_nodes, rng, config.delay_range)
    if kind == "regular":
        assert config.degree is not None  # validated by the config
        return random_regular(config.num_nodes, config.degree, rng, config.delay_range)
    if kind == "waxman":
        return waxman(config.num_nodes, rng, delay_range=config.delay_range)
    if kind == "erdos_renyi":
        probability = (
            config.degree / (config.num_nodes - 1) if config.degree else 0.3
        )
        return erdos_renyi(config.num_nodes, probability, rng, config.delay_range)
    if kind == "ring":
        return ring(config.num_nodes, rng, config.delay_range)
    if kind == "line":
        return line(config.num_nodes, rng, config.delay_range)
    if kind == "star":
        return star(config.num_nodes, rng, config.delay_range)
    raise ConfigurationError(f"unknown topology kind {kind!r}")


@dataclass
class SimulationEnvironment:
    """A fully wired run, ready to execute."""

    config: ExperimentConfig
    seed: int
    ctx: RuntimeContext
    strategy: RoutingStrategy
    brokers: List[BrokerRuntime]
    publishers: List[PublisherProcess]
    monitor_process: PeriodicProcess
    sanitizer: Optional[_sanity.Sanitizer] = None
    tracer: Optional[_trace.FrameTracer] = None
    ordering: Optional[OrderingPlan] = None

    def execute(self) -> MetricsSummary:
        """Run to the configured end time and summarise.

        With ``config.sanitize`` on, the environment's sanitizer is
        attached to the :mod:`repro.probes` bus for the duration of the
        run; invariant violations raise
        :class:`~repro.sanity.InvariantViolation` mid-run, and the
        end-of-drain checks (timer orphans, frame conservation) run before
        the summary is assembled. With ``config.trace`` on, the
        environment's :class:`~repro.trace.FrameTracer` is attached for
        the run *and* through the sanitizer's end-of-drain checks, so
        orphan/conservation violations still capture trace excerpts. The
        install order (sanitizer before tracer) fixes the fused callback
        order at every shared probe site. Observers attached to the bus
        directly (``repro.probes.attach``) are left untouched and keep
        observing across runs.
        """
        # Assign unconditionally: a stale sanitizer/tracer from an aborted
        # run must never observe an unrelated environment.
        _sanity.install(self.sanitizer)
        _trace.install(self.tracer)
        plan = self.ordering
        try:
            try:
                if plan is not None:
                    plan.activate()
                for publisher in self.publishers:
                    publisher.start()
                self.monitor_process.start()
                self.ctx.sim.run(until=self.config.end_time)
                # Drain any residual hold-back state while the sanitizer is
                # still attached, so "flush" releases are observed too.
                if plan is not None:
                    plan.flush()
            finally:
                if plan is not None:
                    plan.deactivate()
                _sanity.uninstall()
            if self.sanitizer is not None:
                self.sanitizer.finish(self.ctx.metrics, self.ctx.sim.now)
        finally:
            _trace.uninstall()
        return summarize(
            self.ctx.metrics,
            self.ctx.network.stats.data_sent(),
            strategy=self.strategy.name,
            data_volume=self.ctx.network.stats.data_volume(),
            perf=self._perf_snapshot(),
        )

    def _perf_snapshot(self) -> Dict[str, float]:
        """Assemble the run's perf counters (strategy + simulator)."""
        perf: Dict[str, float] = {}
        strategy_perf = getattr(self.strategy, "perf", None)
        if strategy_perf is not None:
            perf.update(strategy_perf.snapshot())
        for counter in ("tasks_started", "abandoned", "frames_forwarded"):
            value = getattr(self.strategy, counter, None)
            if value is not None:
                perf[f"data_plane.{counter}"] = float(value)
        rebuilds = getattr(self.strategy, "table_rebuilds", None)
        if rebuilds is not None:
            perf["control_plane.table_rebuilds"] = float(rebuilds)
        arq = getattr(self.strategy, "arq", None)
        if arq is not None:
            perf["arq.timers_cancelled"] = float(arq.timers_cancelled)
            perf["arq.retransmissions"] = float(arq.retransmissions)
            perf["arq.timers_elided"] = float(getattr(arq, "timers_elided", 0))
        sim = self.ctx.sim
        perf["sim.events_processed"] = float(sim.processed_events)
        perf["sim.heap_compactions"] = float(sim.heap_compactions)
        perf["sim.tombstones_reaped"] = float(sim.tombstones_reaped)
        wall = getattr(sim, "run_wall_s", 0.0)
        perf["sim.run_wall_s"] = float(wall)
        if wall > 0.0:
            perf["sim.events_per_s"] = sim.processed_events / wall
        perf["monitor.refreshes"] = float(self.ctx.monitor.refreshes)
        # Flat-path statistics: interned-table sizes, subgroup lookups, and
        # facade fallbacks (directions resolved outside the prewarmed
        # table — the benchmark's timed region asserts this stays zero).
        network = self.ctx.network
        perf["flat.dir_fallbacks"] = float(getattr(network, "dir_fallbacks", 0))
        perf["flat.interned_directions"] = float(len(network._dir_cache))
        index = self.ctx.workload.index()
        perf["flat.subgroup_lookups"] = float(index.lookups)
        perf["flat.subgroup_topics"] = float(len(index._members))
        if self.sanitizer is not None:
            perf.update(self.sanitizer.perf_counters())
        if self.tracer is not None:
            perf.update(self.tracer.perf_counters())
        if self.ordering is not None:
            perf.update(self.ordering.perf_counters())
        # External bus observers (attached via repro.probes.attach) surface
        # their counters too, e.g. ProbeCounters' probes.* entries.
        for observer in _probes.observers():
            if observer is self.sanitizer or observer is self.tracer:
                continue
            counters = getattr(observer, "perf_counters", None)
            if callable(counters):
                perf.update(counters())
        return perf


def build_environment(
    config: ExperimentConfig,
    strategy_name: str,
    seed: int,
    topology: Optional[Topology] = None,
    workload: Optional[Workload] = None,
) -> SimulationEnvironment:
    """Wire up one run of *strategy_name* under *config* with *seed*.

    ``topology``/``workload`` may be injected (tests, custom studies);
    by default both derive deterministically from the seed.
    """
    if strategy_name not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy_name!r}; known: {sorted(STRATEGIES)}"
        )
    reset_message_ids()
    streams = RandomStreams(seed)
    if topology is None:
        topology = build_topology(config, streams)
    if workload is None:
        workload = generate_workload(
            topology,
            streams.get("workload"),
            num_topics=config.num_topics,
            publish_interval=config.publish_interval,
            ps_range=config.ps_range,
            deadline_factor=config.deadline_factor,
            deadline_factor_choices=config.deadline_factor_choices,
        )
    sim = Simulator()
    failures = (
        FailureSchedule(
            topology, config.failure_probability, seed=seed, epoch=config.failure_epoch
        )
        if config.failure_probability > 0.0
        else None
    )
    node_failures = (
        NodeFailureSchedule(
            topology,
            config.node_failure_probability,
            seed=seed,
            epoch=config.failure_epoch,
        )
        if config.node_failure_probability > 0.0
        else None
    )
    link_loss_rates = None
    if config.loss_rate_range is not None:
        low, high = config.loss_rate_range
        loss_rng = streams.get("link_loss")
        link_loss_rates = {
            edge: float(loss_rng.uniform(low, high))
            for edge in sorted(topology.edges())
        }
    network = OverlayNetwork(
        sim,
        topology,
        streams,
        loss_rate=config.loss_rate,
        failures=failures,
        node_failures=node_failures,
        service_time=config.link_service_time,
        link_loss_rates=link_loss_rates,
        queue_discipline=config.queue_discipline,
        edf_drop_expired=config.edf_drop_expired,
    )
    monitor = LinkMonitor(topology, network, streams, mode=config.monitor_mode)
    metrics = MetricsCollector()
    ordering = OrderingPlan.from_text(config.ordering)
    ctx = RuntimeContext(
        sim=sim,
        topology=topology,
        network=network,
        monitor=monitor,
        workload=workload,
        metrics=metrics,
        streams=streams,
        params=ProtocolParams(
            m=config.m, ack_timeout_factor=config.ack_timeout_factor
        ),
        ordering=ordering,
    )
    # The sanitizer must watch the *build* too: strategy.setup() solves the
    # initial control tables (Theorem-1 order checks) right here. Installed
    # unconditionally — None clears any stale hook from an aborted run.
    sanitizer = _sanity.Sanitizer() if config.sanitize else None
    _sanity.install(sanitizer)
    try:
        strategy = STRATEGIES[strategy_name](ctx)
        strategy.setup()
        brokers = [BrokerRuntime(node, ctx, strategy) for node in topology.nodes]
    finally:
        _sanity.uninstall()
    # Intern every link direction now that all handlers are attached, so
    # the run itself never falls back to lazy resolution
    # (perf["flat.dir_fallbacks"] stays 0 for a steady-state run).
    network.prewarm_directions()
    # Every node hosts a broker that ACKs delivered DATA synchronously, so
    # the ARQ layer may keep its per-copy timeouts latent (pushed into the
    # calendar queue only when the copy or its ACK is actually lost).
    arq = getattr(strategy, "arq", None)
    if arq is not None and strategy.uses_acks:
        enable = getattr(arq, "enable_timer_elision", None)
        if enable is not None:
            enable()
    publishers = [
        PublisherProcess(ctx, strategy, spec, stop_time=config.duration)
        for spec in workload.topics
    ]

    def monitor_cycle() -> None:
        monitor.refresh()
        strategy.on_monitor_refresh()

    monitor_process = PeriodicProcess(sim, config.monitor_period, monitor_cycle)
    return SimulationEnvironment(
        config=config,
        seed=seed,
        ctx=ctx,
        strategy=strategy,
        brokers=brokers,
        publishers=publishers,
        monitor_process=monitor_process,
        sanitizer=sanitizer,
        tracer=_trace.FrameTracer() if config.trace else None,
        ordering=ordering,
    )


def run_single(
    config: ExperimentConfig,
    strategy_name: str,
    seed: int,
    topology: Optional[Topology] = None,
    workload: Optional[Workload] = None,
) -> MetricsSummary:
    """Build and execute one run; return its summary."""
    env = build_environment(config, strategy_name, seed, topology, workload)
    return env.execute()


def run_comparison(
    config: ExperimentConfig,
    seed: int,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
) -> Mapping[str, MetricsSummary]:
    """Run every strategy against the identical world; return summaries."""
    return {name: run_single(config, name, seed) for name in strategies}

"""Parameter sweeps: repeat runs over seeds and sweep one config axis.

The paper averages every data point over 10 random topologies (§IV-A).
:func:`run_repetitions` reproduces that by running one (config, strategy)
cell under several seeds — each seed yields a different topology, workload
placement, and failure schedule — and averaging the summaries.
:func:`sweep` walks one axis (failure probability, node degree, network
size, deadline factor, loss rate …) and produces a :class:`SweepResult`
table directly comparable to a paper figure.

Runs are single-threaded and independent, so ``workers > 1`` fans the grid
out over a process pool — results are byte-identical to the serial order
because every run derives everything from its (config, strategy, seed)
triple.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import DEFAULT_STRATEGIES, run_single
from repro.metrics.summary import MetricsSummary, mean_summaries
from repro.util.errors import ConfigurationError, ReproError

ProgressHook = Callable[[str], None]


class SweepWorkerError(ReproError):
    """A sweep cell failed; identifies the (config, strategy, seed) triple.

    Pool workers report failures as bare pickled remote tracebacks, which
    say nothing about *which* cell died. This wrapper re-raises with the
    failing triple attached (and the original exception chained as
    ``__cause__``).
    """

    def __init__(
        self, config: ExperimentConfig, strategy: str, seed: int, cause: BaseException
    ) -> None:
        self.config = config
        self.strategy = strategy
        self.seed = seed
        super().__init__(
            f"sweep cell failed: strategy={strategy!r} seed={seed} "
            f"config=[{config.describe()}]: {cause!r}"
        )


def _run_cell(task: Tuple[ExperimentConfig, str, int]) -> MetricsSummary:
    """Process-pool entry point (must be a picklable top-level function)."""
    config, strategy, seed = task
    return run_single(config, strategy, seed)


def _pool(workers: int) -> ProcessPoolExecutor:
    """A spawn-context pool: fork pools can deadlock when the parent holds
    allocator or BLAS locks at fork time, and spawn costs little here
    because each cell runs for seconds."""
    return ProcessPoolExecutor(
        max_workers=workers, mp_context=multiprocessing.get_context("spawn")
    )


def _require_workers(workers: int) -> None:
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")


def _run_grid(
    tasks: Sequence[Tuple[ExperimentConfig, str, int]], workers: int
) -> List[MetricsSummary]:
    """Run cells across the pool; annotate failures with their triple."""
    with _pool(workers) as pool:
        futures = [pool.submit(_run_cell, task) for task in tasks]
        results: List[MetricsSummary] = []
        for task, future in zip(tasks, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                config, strategy, seed = task
                raise SweepWorkerError(config, strategy, seed, exc) from exc
    return results


def run_repetitions(
    config: ExperimentConfig,
    strategy: str,
    seeds: Sequence[int],
    progress: Optional[ProgressHook] = None,
    workers: int = 1,
) -> MetricsSummary:
    """Average one (config, strategy) cell over several seeds."""
    _require_workers(workers)
    if workers > 1:
        tasks = [(config, strategy, seed) for seed in seeds]
        return mean_summaries(_run_grid(tasks, workers))
    summaries: List[MetricsSummary] = []
    for seed in seeds:
        if progress is not None:
            progress(f"{strategy} seed={seed} {config.describe()}")
        summaries.append(run_single(config, strategy, seed))
    return mean_summaries(summaries)


@dataclass
class SweepResult:
    """One figure's worth of data: metric values on a swept axis.

    ``cells[x][strategy]`` is the averaged :class:`MetricsSummary` of one
    data point.
    """

    name: str
    x_label: str
    x_values: List[object] = field(default_factory=list)
    strategies: List[str] = field(default_factory=list)
    cells: Dict[object, Dict[str, MetricsSummary]] = field(default_factory=dict)

    def series(self, strategy: str, metric: str) -> List[float]:
        """One curve: *metric* of *strategy* across the swept axis."""
        return [
            getattr(self.cells[x][strategy], metric) for x in self.x_values
        ]

    def cell(self, x: object, strategy: str) -> MetricsSummary:
        """The summary of one data point."""
        return self.cells[x][strategy]

    def metrics_table(self, metric: str) -> List[List[object]]:
        """Rows ``[x, v(strategy_1), v(strategy_2), ...]`` for one metric."""
        rows: List[List[object]] = []
        for x in self.x_values:
            row: List[object] = [x]
            row.extend(getattr(self.cells[x][s], metric) for s in self.strategies)
            rows.append(row)
        return rows


def sweep(
    name: str,
    x_label: str,
    configs: Mapping[object, ExperimentConfig],
    seeds: Sequence[int],
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    progress: Optional[ProgressHook] = None,
    workers: int = 1,
) -> SweepResult:
    """Run a full (axis x strategy) grid and collect a :class:`SweepResult`.

    ``workers > 1`` runs the *entire grid* (every (x, strategy, seed)
    triple) across a process pool; results are identical to the serial
    run, just faster.
    """
    _require_workers(workers)
    result = SweepResult(
        name=name,
        x_label=x_label,
        x_values=list(configs.keys()),
        strategies=list(strategies),
    )
    if workers > 1:
        grid = [
            (x, strategy, seed)
            for x in configs
            for strategy in strategies
            for seed in seeds
        ]
        tasks = [(configs[x], strategy, seed) for x, strategy, seed in grid]
        outputs = _run_grid(tasks, workers)
        buckets: Dict[Tuple[object, str], List[MetricsSummary]] = {}
        for (x, strategy, _), summary in zip(grid, outputs):
            buckets.setdefault((x, strategy), []).append(summary)
        for x in configs:
            result.cells[x] = {
                strategy: mean_summaries(buckets[(x, strategy)])
                for strategy in strategies
            }
        return result
    for x, config in configs.items():
        row: Dict[str, MetricsSummary] = {}
        for strategy in strategies:
            row[strategy] = run_repetitions(config, strategy, seeds, progress)
        result.cells[x] = row
    return result

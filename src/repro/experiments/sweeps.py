"""Parameter sweeps: repeat runs over seeds and sweep one config axis.

The paper averages every data point over 10 random topologies (§IV-A).
:func:`run_repetitions` reproduces that by running one (config, strategy)
cell under several seeds — each seed yields a different topology, workload
placement, and failure schedule — and averaging the summaries.
:func:`sweep` walks one axis (failure probability, node degree, network
size, deadline factor, loss rate …) and produces a :class:`SweepResult`
table directly comparable to a paper figure.

Runs are single-threaded and independent, so ``workers > 1`` fans the grid
out over a process pool — results are byte-identical to the serial order
because every run derives everything from its (config, strategy, seed)
triple.

The incremental sweep engine
----------------------------

:class:`SweepExecutor` owns the resources shared by every sweep of one
driver invocation:

* **one long-lived spawn-context pool** — historically every
  ``sweep()``/``run_repetitions()`` call built and tore down its own pool,
  paying worker spawn + import cost per figure; the executor creates the
  pool lazily on first parallel use and reuses it until :meth:`close`;
* **a content-addressed cell cache** (:class:`~repro.experiments.cache.SweepCache`)
  — each (config, strategy, seed) cell is addressed by a digest that also
  covers the package source fingerprint, so re-running a figure skips
  every unchanged cell and recomputes only invalidated ones, and cached
  results are bit-identical to fresh ones (``fresh=True`` bypasses
  lookups but still repopulates);
* **checkpoint/resume** — completed cells stream to the cache's
  append-only journal *as they finish*, so a killed driver resumes from
  the last finished cell, and one failing cell (reported as
  :class:`SweepWorkerError` with its triple) no longer discards its
  siblings' completed work;
* **per-process warm artifacts** — each pool worker (and the serial
  in-process path) keeps an LRU of built topologies and a
  :class:`~repro.core.computation.SolverDistanceCache` of per-publisher
  Dijkstra maps keyed by the exact alpha-weighted graph, and cells are
  submitted in world-grouped order so neighbouring cells that differ only
  in strategy or failure axis reuse those artifacts. Both reuses are
  bit-identical by construction (deterministic builds, exact keys), so
  ``workers > 1`` with warm sharing matches ``workers = 1`` exactly.

Engine counters land in :attr:`SweepExecutor.perf` under the ``sweep.*``
namespace: ``cells_cached``, ``cells_computed``, ``checkpoint_writes``,
``solver_warm_hits``, ``topology_warm_hits``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core import computation as _computation
from repro.experiments.cache import SweepCache, cell_digest, code_fingerprint
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import DEFAULT_STRATEGIES, build_topology, run_single
from repro.metrics.summary import MetricsSummary, mean_summaries
from repro.overlay.topology import Topology
from repro.perf import PerfStats
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError, ReproError

ProgressHook = Callable[[str], None]

#: One grid cell: (config, strategy, seed).
CellTask = Tuple[ExperimentConfig, str, int]


class SweepWorkerError(ReproError):
    """A sweep cell failed; identifies the (config, strategy, seed) triple.

    Pool workers report failures as bare pickled remote tracebacks, which
    say nothing about *which* cell died. This wrapper re-raises with the
    failing triple attached (and the original exception chained as
    ``__cause__``). Every *other* cell that completed before the failure
    surfaced has already been journalled to the executor's cache, so a
    re-run resumes instead of recomputing them.
    """

    def __init__(
        self, config: ExperimentConfig, strategy: str, seed: int, cause: BaseException
    ) -> None:
        self.config = config
        self.strategy = strategy
        self.seed = seed
        super().__init__(
            f"sweep cell failed: strategy={strategy!r} seed={seed} "
            f"config=[{config.describe()}]: {cause!r}"
        )


def _require_workers(workers: int) -> None:
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")


# ----------------------------------------------------------------------
# Per-process warm artifacts
# ----------------------------------------------------------------------
def _world_key(config: ExperimentConfig, seed: int) -> tuple:
    """The fields that determine a cell's topology (plus the seed).

    Cells sharing this key build bit-identical :class:`Topology` objects:
    construction consumes only the dedicated ``"topology"`` random stream,
    which derives from (seed, these fields) alone.
    """
    return (
        config.topology_kind,
        config.num_nodes,
        config.degree is None,
        config.degree or 0,
        config.delay_range,
        int(seed),
    )


class _WarmState:
    """Warm artifacts one process carries across sweep cells.

    Holds an LRU of built topologies keyed by :func:`_world_key` and a
    :class:`~repro.core.computation.SolverDistanceCache` installed around
    each cell run. Both are pure memos of deterministic builds, so reuse
    is invisible to results.
    """

    def __init__(self, max_topologies: int = 8) -> None:
        self.dist_cache = _computation.SolverDistanceCache()
        self._topologies: Dict[tuple, Topology] = {}
        self._order: List[tuple] = []
        self._max = max_topologies
        self.topology_hits = 0

    def topology_for(self, config: ExperimentConfig, seed: int) -> Topology:
        """The cell's topology, built once per world and reused.

        A cache hit returns the very object a previous cell built — safe
        because :class:`Topology` is immutable after construction (its
        shortest-path attributes are lazy memos of deterministic values).
        """
        key = _world_key(config, seed)
        topology = self._topologies.get(key)
        if topology is not None:
            self.topology_hits += 1
            self._order.remove(key)
            self._order.append(key)
            return topology
        topology = build_topology(config, RandomStreams(seed))
        self._topologies[key] = topology
        self._order.append(key)
        if len(self._order) > self._max:
            del self._topologies[self._order.pop(0)]
        return topology

    def counters(self) -> Dict[str, float]:
        """Cumulative warm-reuse counters (``sweep.*`` namespace)."""
        return {
            "sweep.solver_warm_hits": float(self.dist_cache.hits),
            "sweep.topology_warm_hits": float(self.topology_hits),
        }


#: The process's warm state: set by the pool initializer in workers, and
#: swapped in temporarily by the serial in-process path.
_WORKER_WARM: Optional[_WarmState] = None


def _worker_init() -> None:
    """Pool initializer: give the worker process persistent warm state."""
    global _WORKER_WARM
    _WORKER_WARM = _WarmState()


def _run_cell_warm(task: CellTask) -> Tuple[MetricsSummary, Dict[str, float]]:
    """Process-pool entry point (must be a picklable top-level function).

    Runs one cell with the process's warm artifacts engaged and returns
    ``(summary, warm-counter deltas)``. Without warm state (plain
    :func:`run_single` semantics) the deltas are empty.
    """
    config, strategy, seed = task
    warm = _WORKER_WARM
    if warm is None:
        return run_single(config, strategy, seed), {}
    before = warm.counters()
    topology = warm.topology_for(config, seed)
    previous = _computation.DIST_CACHE
    _computation.DIST_CACHE = warm.dist_cache
    try:
        summary = run_single(config, strategy, seed, topology=topology)
    finally:
        _computation.DIST_CACHE = previous
    after = warm.counters()
    deltas = {name: after[name] - before.get(name, 0.0) for name in after}
    return summary, deltas


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class SweepExecutor:
    """Shared engine behind every sweep of one driver invocation.

    Context-manager owned: the driver creates one executor, passes it to
    every figure/study, and the pool plus cache journal are released on
    exit. ``workers=1`` runs cells in-process (no pool is ever created)
    but still journals checkpoints and reuses warm artifacts, so serial
    and parallel runs execute identical per-cell code.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[SweepCache] = None,
        fresh: bool = False,
    ) -> None:
        _require_workers(workers)
        self.workers = workers
        self.cache = cache
        self.fresh = fresh
        self.perf = PerfStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._warm = _WarmState()

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down (idempotent; the cache journal stays open
        for the owning driver to close)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The shared spawn-context pool, created on first parallel use.

        Spawn rather than fork: fork pools can deadlock when the parent
        holds allocator or BLAS locks at fork time. The spawn cost is paid
        once per driver invocation instead of once per ``sweep()`` call.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
            )
        return self._pool

    def counters(self) -> Dict[str, float]:
        """Snapshot of the engine's ``sweep.*`` counters."""
        return self.perf.snapshot()

    # -- execution -----------------------------------------------------
    def run_cells(
        self,
        tasks: Sequence[CellTask],
        progress: Optional[ProgressHook] = None,
    ) -> List[MetricsSummary]:
        """Run a grid of cells; results align with *tasks*.

        Cached cells are served from the cell cache (unless ``fresh``);
        the rest run serially in-process (``workers=1``) or across the
        shared pool, grouped by world so warm artifacts get maximal reuse.
        Each finished cell is journalled immediately — the checkpoint that
        makes a killed or partially failed grid resumable.
        """
        tasks = list(tasks)
        results: List[Optional[MetricsSummary]] = [None] * len(tasks)
        digests: List[Optional[str]] = [None] * len(tasks)
        pending: List[int] = []
        fingerprint = code_fingerprint() if self.cache is not None else None
        for index, (config, strategy, seed) in enumerate(tasks):
            if self.cache is not None:
                digests[index] = cell_digest(config, strategy, seed, fingerprint)
                if not self.fresh:
                    cached = self.cache.get(digests[index])
                    if cached is not None:
                        results[index] = cached
                        self.perf.incr("sweep.cells_cached")
                        if progress is not None:
                            progress(
                                f"{strategy} seed={seed} {config.describe()} [cached]"
                            )
                        continue
            pending.append(index)
        if not pending:
            return results  # type: ignore[return-value]
        # World-grouped submission order: cells sharing (topology, seed)
        # run back to back, so the per-process warm caches see them while
        # the artifacts are still resident. Stable within a world.
        order = sorted(
            pending, key=lambda i: (_world_key(tasks[i][0], tasks[i][2]), i)
        )
        if self.workers == 1:
            self._run_serial(tasks, order, digests, results, progress)
        else:
            self._run_pooled(tasks, order, digests, results)
        return results  # type: ignore[return-value]

    def _run_serial(
        self,
        tasks: List[CellTask],
        order: List[int],
        digests: List[Optional[str]],
        results: List[Optional[MetricsSummary]],
        progress: Optional[ProgressHook],
    ) -> None:
        global _WORKER_WARM
        previous = _WORKER_WARM
        _WORKER_WARM = self._warm
        try:
            for index in order:
                config, strategy, seed = tasks[index]
                if progress is not None:
                    progress(f"{strategy} seed={seed} {config.describe()}")
                try:
                    summary, stats = _run_cell_warm(tasks[index])
                except Exception as exc:
                    # Cells journalled before this point stay resumable.
                    raise SweepWorkerError(config, strategy, seed, exc) from exc
                self._finish(tasks, index, digests, results, summary, stats)
        finally:
            _WORKER_WARM = previous

    def _run_pooled(
        self,
        tasks: List[CellTask],
        order: List[int],
        digests: List[Optional[str]],
        results: List[Optional[MetricsSummary]],
    ) -> None:
        pool = self._ensure_pool()
        futures = {pool.submit(_run_cell_warm, tasks[index]): index for index in order}
        failures: Dict[int, BaseException] = {}
        # Drain *every* future before reporting failures: completed cells
        # are journalled as they land, so one bad cell costs only itself.
        for future in as_completed(futures):
            index = futures[future]
            try:
                summary, stats = future.result()
            except Exception as exc:
                failures[index] = exc
                continue
            self._finish(tasks, index, digests, results, summary, stats)
        if failures:
            index = min(failures)  # first failing cell in task order
            config, strategy, seed = tasks[index]
            raise SweepWorkerError(
                config, strategy, seed, failures[index]
            ) from failures[index]

    def _finish(
        self,
        tasks: List[CellTask],
        index: int,
        digests: List[Optional[str]],
        results: List[Optional[MetricsSummary]],
        summary: MetricsSummary,
        stats: Mapping[str, float],
    ) -> None:
        results[index] = summary
        self.perf.incr("sweep.cells_computed")
        for name, value in stats.items():
            self.perf.incr(name, value)
        if self.cache is not None:
            config, strategy, seed = tasks[index]
            digest = digests[index]
            assert digest is not None  # computed for every task when cached
            self.cache.put(digest, config, strategy, seed, summary)
            self.perf.incr("sweep.checkpoint_writes")


def _execute(
    tasks: Sequence[CellTask],
    workers: int,
    executor: Optional[SweepExecutor],
    progress: Optional[ProgressHook],
) -> List[MetricsSummary]:
    """Run *tasks* on the given executor, or a transient one."""
    if executor is not None:
        return executor.run_cells(tasks, progress=progress)
    with SweepExecutor(workers=workers) as transient:
        return transient.run_cells(tasks, progress=progress)


def run_repetitions(
    config: ExperimentConfig,
    strategy: str,
    seeds: Sequence[int],
    progress: Optional[ProgressHook] = None,
    workers: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> MetricsSummary:
    """Average one (config, strategy) cell over several seeds.

    Pass *executor* to reuse a driver-owned :class:`SweepExecutor` (shared
    pool, cell cache, warm artifacts); *workers* is only consulted when no
    executor is given.
    """
    tasks = [(config, strategy, seed) for seed in seeds]
    return mean_summaries(_execute(tasks, workers, executor, progress))


@dataclass
class SweepResult:
    """One figure's worth of data: metric values on a swept axis.

    ``cells[x][strategy]`` is the averaged :class:`MetricsSummary` of one
    data point.
    """

    name: str
    x_label: str
    x_values: List[object] = field(default_factory=list)
    strategies: List[str] = field(default_factory=list)
    cells: Dict[object, Dict[str, MetricsSummary]] = field(default_factory=dict)

    def series(self, strategy: str, metric: str) -> List[float]:
        """One curve: *metric* of *strategy* across the swept axis."""
        return [
            getattr(self.cells[x][strategy], metric) for x in self.x_values
        ]

    def cell(self, x: object, strategy: str) -> MetricsSummary:
        """The summary of one data point."""
        return self.cells[x][strategy]

    def metrics_table(self, metric: str) -> List[List[object]]:
        """Rows ``[x, v(strategy_1), v(strategy_2), ...]`` for one metric."""
        rows: List[List[object]] = []
        for x in self.x_values:
            row: List[object] = [x]
            row.extend(getattr(self.cells[x][s], metric) for s in self.strategies)
            rows.append(row)
        return rows


def sweep(
    name: str,
    x_label: str,
    configs: Mapping[object, ExperimentConfig],
    seeds: Sequence[int],
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    progress: Optional[ProgressHook] = None,
    workers: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Run a full (axis x strategy) grid and collect a :class:`SweepResult`.

    ``workers > 1`` (or an *executor* with workers) runs the *entire grid*
    (every (x, strategy, seed) triple) across a process pool; results are
    identical to the serial run, just faster. With an executor carrying a
    cell cache, unchanged cells are served from the journal instead of
    recomputed.
    """
    result = SweepResult(
        name=name,
        x_label=x_label,
        x_values=list(configs.keys()),
        strategies=list(strategies),
    )
    grid = [
        (x, strategy, seed)
        for x in configs
        for strategy in strategies
        for seed in seeds
    ]
    tasks = [(configs[x], strategy, seed) for x, strategy, seed in grid]
    outputs = _execute(tasks, workers, executor, progress)
    buckets: Dict[Tuple[object, str], List[MetricsSummary]] = {}
    for (x, strategy, _), summary in zip(grid, outputs):
        buckets.setdefault((x, strategy), []).append(summary)
    for x in configs:
        result.cells[x] = {
            strategy: mean_summaries(buckets[(x, strategy)])
            for strategy in strategies
        }
    return result

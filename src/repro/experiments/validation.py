"""Structured verification of the paper's qualitative claims.

EXPERIMENTS.md records paper-vs-measured numbers once; this module encodes
the *shape* claims — who wins, what degrades, where crossovers sit — as
executable checks, so any future change to the library can re-verify the
whole reproduction in one call:

>>> from repro.experiments import figures
>>> from repro.experiments.validation import verify_figure
>>> result = figures.figure2(duration=20.0, seeds=(0, 1))
>>> outcomes = verify_figure("figure2", result)
>>> all(o.passed for o in outcomes)
True

Checks are deliberately tolerant (they assert orderings and coarse bands,
not point values) so they hold at reduced simulation scales; the three
documented deviations (EXPERIMENTS.md D1–D3) are *not* asserted in the
paper's direction — the measured behaviour is the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping

from repro.experiments.sweeps import SweepResult


@dataclass(frozen=True)
class ClaimOutcome:
    """One verified claim."""

    figure: str
    claim: str
    passed: bool
    detail: str = ""


Check = Callable[[SweepResult], "tuple[bool, str]"]


def _series(result: SweepResult, strategy: str, metric: str) -> Dict[object, float]:
    return dict(zip(result.x_values, result.series(strategy, metric)))


# ----------------------------------------------------------------------
# Per-figure checks
# ----------------------------------------------------------------------
def _check_fig2_dcrd_delivers_everything(result: SweepResult):
    values = result.series("DCRD", "delivery_ratio")
    worst = min(values)
    return worst > 0.995, f"min DCRD delivery {worst:.4f}"


def _check_fig2_trees_degrade(result: SweepResult):
    dtree = _series(result, "D-Tree", "delivery_ratio")
    first, last = result.x_values[0], result.x_values[-1]
    return (
        dtree[last] < dtree[first] - 0.05,
        f"D-Tree delivery {dtree[first]:.3f} -> {dtree[last]:.3f}",
    )

def _check_fig2_rtree_beats_dtree(result: SweepResult):
    last = result.x_values[-1]
    rtree = _series(result, "R-Tree", "delivery_ratio")[last]
    dtree = _series(result, "D-Tree", "delivery_ratio")[last]
    return rtree > dtree, f"R-Tree {rtree:.3f} vs D-Tree {dtree:.3f} at Pf={last}"


def _check_fig2_rtree_unit_traffic(result: SweepResult):
    values = result.series("R-Tree", "packets_per_subscriber")
    return (
        max(abs(v - 1.0) for v in values) < 0.01,
        f"R-Tree pkts/sub in [{min(values):.4f}, {max(values):.4f}]",
    )


def _check_fig2_multipath_most_traffic(result: SweepResult):
    last = result.x_values[-1]
    multipath = _series(result, "Multipath", "packets_per_subscriber")[last]
    dcrd = _series(result, "DCRD", "packets_per_subscriber")[last]
    return multipath > 2 * dcrd, f"Multipath {multipath:.2f} vs DCRD {dcrd:.2f}"


def _check_fig3_dcrd_beats_trees_on_qos(result: SweepResult):
    last = result.x_values[-1]
    dcrd = _series(result, "DCRD", "qos_delivery_ratio")[last]
    rtree = _series(result, "R-Tree", "qos_delivery_ratio")[last]
    dtree = _series(result, "D-Tree", "qos_delivery_ratio")[last]
    return (
        dcrd > rtree and dcrd > dtree,
        f"DCRD {dcrd:.3f} vs R-Tree {rtree:.3f}, D-Tree {dtree:.3f}",
    )


def _check_fig3_oracle_upper_bound(result: SweepResult):
    for x in result.x_values:
        oracle = _series(result, "ORACLE", "qos_delivery_ratio")[x]
        dcrd = _series(result, "DCRD", "qos_delivery_ratio")[x]
        if oracle < dcrd - 1e-9:
            return False, f"ORACLE {oracle:.3f} < DCRD {dcrd:.3f} at {x}"
    return True, "ORACLE >= DCRD at every point"


def _check_fig4_sparse_is_harder(result: SweepResult):
    dcrd = _series(result, "DCRD", "qos_delivery_ratio")
    return (
        dcrd[3] < dcrd[8],
        f"DCRD QoS degree 3: {dcrd[3]:.3f}, degree 8: {dcrd[8]:.3f}",
    )


def _check_fig4_high_degree_near_oracle(result: SweepResult):
    dcrd = _series(result, "DCRD", "qos_delivery_ratio")[8]
    oracle = _series(result, "ORACLE", "qos_delivery_ratio")[8]
    return oracle - dcrd < 0.08, f"gap {oracle - dcrd:.3f} at degree 8"


def _check_fig5_trees_degrade_with_size(result: SweepResult):
    dtree = result.series("D-Tree", "delivery_ratio")
    return dtree[-1] < dtree[0], f"D-Tree {dtree[0]:.3f} -> {dtree[-1]:.3f}"


def _check_fig5_dcrd_scales(result: SweepResult):
    dcrd = result.series("DCRD", "delivery_ratio")
    return min(dcrd) > 0.97, f"min DCRD delivery {min(dcrd):.3f}"


def _check_fig6_looser_deadlines_help_dcrd(result: SweepResult):
    dcrd = _series(result, "DCRD", "qos_delivery_ratio")
    xs = result.x_values
    return dcrd[xs[-1]] > dcrd[xs[0]] + 0.03, (
        f"DCRD QoS {dcrd[xs[0]]:.3f} at {xs[0]}x -> {dcrd[xs[-1]]:.3f} at {xs[-1]}x"
    )


def _check_fig6_trees_insensitive(result: SweepResult):
    dtree = result.series("D-Tree", "qos_delivery_ratio")
    return max(dtree) - min(dtree) < 0.08, (
        f"D-Tree QoS spread {max(dtree) - min(dtree):.3f}"
    )


def _check_fig6_multipath_wins_only_when_tight(result: SweepResult):
    dcrd = _series(result, "DCRD", "qos_delivery_ratio")
    multipath = _series(result, "Multipath", "qos_delivery_ratio")
    tightest, loosest = result.x_values[0], result.x_values[-1]
    tight_gap = multipath[tightest] - dcrd[tightest]
    loose_gap = multipath[loosest] - dcrd[loosest]
    return loose_gap < tight_gap, (
        f"Multipath-DCRD gap {tight_gap:+.3f} at {tightest}x, "
        f"{loose_gap:+.3f} at {loosest}x"
    )


def _check_fig7_cdfs_monotone(curves: Mapping[str, tuple]):
    for label, (_, values) in curves.items():
        if values != sorted(values):
            return False, f"{label} CDF not monotone"
    return True, "all CDFs monotone"


def _check_fig7_mesh_dominates_sparse(curves: Mapping[str, tuple]):
    mesh = curves["full-mesh"][1]
    sparse = curves["degree-8"][1]
    ahead = sum(1 for a, b in zip(mesh, sparse) if a >= b - 0.02)
    return ahead >= len(mesh) - 1, (
        f"mesh >= degree-8 at {ahead}/{len(mesh)} grid points"
    )


def _check_fig7_short_tail(curves: Mapping[str, tuple]):
    for label, (grid, values) in curves.items():
        lookup = dict(zip(grid, values))
        if lookup.get(2.0, 0.0) < 0.8:
            return False, f"{label}: only {lookup.get(2.0, 0.0):.2f} within 2x"
    return True, "≥80% of late packets within 2x the requirement"


def _check_fig8_m1_beats_m2_at_low_loss(results: Mapping[int, SweepResult]):
    low = results[1].x_values[0]
    m1 = _series(results[1], "DCRD", "qos_delivery_ratio")[low]
    m2 = _series(results[2], "DCRD", "qos_delivery_ratio")[low]
    return m1 >= m2 - 0.002, f"m=1 {m1:.4f} vs m=2 {m2:.4f} at Pl={low}"


def _check_fig8_m2_helps_at_heavy_loss(results: Mapping[int, SweepResult]):
    high = results[1].x_values[-1]
    outcomes = []
    for name in ("R-Tree", "D-Tree"):
        m1 = _series(results[1], name, "qos_delivery_ratio")[high]
        m2 = _series(results[2], name, "qos_delivery_ratio")[high]
        outcomes.append(m2 > m1)
    return all(outcomes), f"trees m=2 > m=1 at Pl={high}: {outcomes}"


#: Registry: figure name -> list of (claim text, check).
FIGURE_CHECKS: Dict[str, List] = {
    "figure2": [
        ("DCRD delivers ~100% at every failure probability", _check_fig2_dcrd_delivers_everything),
        ("fixed trees degrade with Pf", _check_fig2_trees_degrade),
        ("R-Tree is the more robust tree", _check_fig2_rtree_beats_dtree),
        ("R-Tree sends exactly 1 packet/subscriber in the mesh", _check_fig2_rtree_unit_traffic),
        ("Multipath sends >2x DCRD's traffic", _check_fig2_multipath_most_traffic),
    ],
    "figure3": [
        ("DCRD beats both trees on QoS delivery", _check_fig3_dcrd_beats_trees_on_qos),
        ("ORACLE upper-bounds DCRD everywhere", _check_fig3_oracle_upper_bound),
    ],
    "figure4": [
        ("sparser overlays are harder for DCRD", _check_fig4_sparse_is_harder),
        ("degree 8 puts DCRD within a few points of ORACLE", _check_fig4_high_degree_near_oracle),
    ],
    "figure5": [
        ("fixed trees degrade with network size", _check_fig5_trees_degrade_with_size),
        ("DCRD keeps delivering at every size", _check_fig5_dcrd_scales),
    ],
    "figure6": [
        ("looser deadlines help DCRD substantially", _check_fig6_looser_deadlines_help_dcrd),
        ("fixed trees barely react to deadline changes", _check_fig6_trees_insensitive),
        ("Multipath's edge exists only at tight deadlines", _check_fig6_multipath_wins_only_when_tight),
    ],
    "figure7": [
        ("late-packet CDFs are monotone", _check_fig7_cdfs_monotone),
        ("the full mesh dominates the sparse overlay", _check_fig7_mesh_dominates_sparse),
        ("late packets have a short tail", _check_fig7_short_tail),
    ],
    "figure8": [
        ("m=1 is at least as good as m=2 for DCRD at low loss", _check_fig8_m1_beats_m2_at_low_loss),
        ("m=2 helps the trees under heavy loss", _check_fig8_m2_helps_at_heavy_loss),
    ],
}


def verify_figure(figure: str, result) -> List[ClaimOutcome]:
    """Run every registered check of *figure* against *result*."""
    if figure not in FIGURE_CHECKS:
        raise KeyError(f"no checks registered for {figure!r}")
    outcomes = []
    for claim, check in FIGURE_CHECKS[figure]:
        passed, detail = check(result)
        outcomes.append(
            ClaimOutcome(figure=figure, claim=claim, passed=passed, detail=detail)
        )
    return outcomes


def render_outcomes(outcomes: List[ClaimOutcome]) -> str:
    """Human-readable PASS/FAIL listing."""
    lines = []
    for outcome in outcomes:
        status = "PASS" if outcome.passed else "FAIL"
        lines.append(f"[{status}] {outcome.figure}: {outcome.claim} ({outcome.detail})")
    return "\n".join(lines)

"""Extensions beyond the paper's core evaluation.

* :mod:`repro.extensions.persistence` — the persistency mode sketched in
  §III ("to provide the delivery guarantee even in case of persistent
  failures, we need to persist all packets, and then send them when the
  failures are recovered");
* :mod:`repro.extensions.node_failures` — the node-failure evaluation the
  paper lists as work underway in §V;
* :mod:`repro.extensions.ablations` — design-choice ablations: monitoring
  mode (analytic vs sampled) and the ACK-timeout factor.
"""

from repro.extensions.ablations import (
    ack_timeout_ablation,
    monitoring_mode_ablation,
)
from repro.extensions.adaptive import AdaptiveDcrdStrategy, AdaptiveTimeoutPolicy
from repro.extensions.churn import ChurnProcess, churn_study, run_with_churn
from repro.extensions.congestion import congestion_study
from repro.extensions.fec import FecMultipathStrategy, fec_study, select_diverse_paths
from repro.extensions.heterogeneous import (
    NaiveOrderDcrdStrategy,
    heterogeneity_study,
    reorder_table_by_delay,
)
from repro.extensions.node_failures import node_failure_study
from repro.extensions.persistence import PersistentDcrdStrategy
from repro.extensions.priority import priority_queueing_study

# Register the extension strategies with the experiment runner so configs
# can request them by name like any paper baseline.
from repro.experiments.runner import STRATEGIES as _STRATEGIES

_STRATEGIES.setdefault("DCRD+persist", PersistentDcrdStrategy)
_STRATEGIES.setdefault("DCRD+adaptive", AdaptiveDcrdStrategy)
_STRATEGIES.setdefault("FEC", FecMultipathStrategy)
_STRATEGIES.setdefault("DCRD-naive-order", NaiveOrderDcrdStrategy)

__all__ = [
    "AdaptiveDcrdStrategy",
    "AdaptiveTimeoutPolicy",
    "ChurnProcess",
    "FecMultipathStrategy",
    "NaiveOrderDcrdStrategy",
    "PersistentDcrdStrategy",
    "ack_timeout_ablation",
    "churn_study",
    "congestion_study",
    "fec_study",
    "heterogeneity_study",
    "monitoring_mode_ablation",
    "node_failure_study",
    "priority_queueing_study",
    "reorder_table_by_delay",
    "run_with_churn",
    "select_diverse_paths",
]

"""Design-choice ablations DESIGN.md calls out.

Two implementation decisions in this reproduction deserve quantification:

* **Monitoring mode.** The paper's control plane sees long-run link
  quality ("analytic" mode); a real deployment measures it with probes
  ("sampled" mode, EWMA over Bernoulli observations). How much does the
  estimation noise cost DCRD?
* **ACK-timeout factor.** The paper waits "``alpha_Xk`` of time" for an
  ACK; a one-way expectation cannot cover a round trip, so this library
  defaults to ``2 * alpha`` (+1 ms slack). Larger factors trade deadline
  budget for patience on dead links.

.. warning::
   Factors **below 2** are not merely suboptimal, they are catastrophic in
   this substrate: link delays are deterministic, so the ACK round trip is
   exactly ``2 * alpha`` and any shorter timer expires on *every*
   transmission. Each sender then walks its whole sending list while every
   receiver keeps forwarding, which floods the overlay with one copy per
   loop-free path — exponentially many. The ablation therefore sweeps
   factors >= 2; the paper's literal ``1 x alpha`` reading is the
   documented cliff, not a data point.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import ProgressHook, SweepExecutor, SweepResult, sweep

#: ACK-timeout factors swept by the ablation; 2.0 is the library default
#: (factors < 2 flood the overlay — see the module warning).
ACK_TIMEOUT_FACTORS = (2.0, 2.5, 3.0, 4.0, 6.0)


def _base_config(duration: float, **overrides: object) -> ExperimentConfig:
    config = ExperimentConfig(
        topology_kind="regular",
        degree=8,
        duration=duration,
        failure_probability=0.06,
    )
    return config.with_updates(**overrides) if overrides else config


def monitoring_mode_ablation(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    strategies: Sequence[str] = ("DCRD",),
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """DCRD under perfect (analytic) vs probe-based (sampled) monitoring."""
    configs: Dict[object, ExperimentConfig] = {
        mode: _base_config(duration, monitor_mode=mode, monitor_period=10.0)
        for mode in ("analytic", "sampled")
    }
    return sweep(
        "Ablation: monitoring mode",
        "monitor mode",
        configs,
        seeds,
        strategies,
        progress,
        executor=executor,
    )


def ack_timeout_ablation(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    factors: Sequence[float] = ACK_TIMEOUT_FACTORS,
    strategies: Sequence[str] = ("DCRD",),
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Sweep the ACK-timeout multiplier under the paper's failure setting."""
    for factor in factors:
        if factor < 2.0:
            raise ValueError(
                f"ack_timeout_factor {factor} < 2 floods the overlay with "
                "duplicate copies (deterministic RTT is 2*alpha); see the "
                "module docstring"
            )
    configs = {
        factor: _base_config(duration, ack_timeout_factor=factor)
        for factor in factors
    }
    return sweep(
        "Ablation: ACK timeout factor",
        "timeout factor (x alpha)",
        configs,
        seeds,
        strategies,
        progress,
        executor=executor,
    )

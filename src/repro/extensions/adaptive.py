"""Adaptive ACK timeouts: fixing DCRD's congestion collapse.

The congestion study (:mod:`repro.extensions.congestion`) exposes a failure
mode the paper never evaluates: on finite-capacity links, queueing delay
makes the static ``factor * alpha`` ACK timer fire on frames that were
merely *queued*, not lost. The sender then retransmits **and** walks its
sending list while the original copy still arrives — every spurious timeout
multiplies offered load, which deepens the queues, which causes more
timeouts: classic congestion collapse (observed experimentally: QoS falls
to <1% and traffic explodes ~25x at 2x overload).

The classical fix is TCP's retransmission-timeout estimator.
:class:`AdaptiveTimeoutPolicy` implements Jacobson/Karn per link direction:

* before any sample exists, the RTO is a deliberately *conservative*
  ``initial_rto`` (RFC 6298 starts TCP at 1 s for the same reason): if the
  very first timer undercuts the true no-load RTT, every first attempt
  "fails" before its ACK lands and — with Karn filtering — the estimator
  can never learn. This bootstrap problem is exactly what the static paper
  timer exhibits on finite-capacity links;
* ``srtt`` and ``rttvar`` are EWMAs of observed ACK round trips
  (first-attempt samples only — Karn's rule — fed by the ARQ layer);
* timeout = ``srtt + 4 * rttvar`` (+slack), clamped to
  ``[floor, ceiling]`` where the floor is the static paper timer (never be
  *more* aggressive than the baseline) and the ceiling bounds how long a
  truly dead neighbour can stall failure detection.

:class:`AdaptiveDcrdStrategy` is DCRD with this policy plugged into its
ARQ layer; everything else — sending lists, bouncing, Theorem 1 — is
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.forwarding import DcrdStrategy
from repro.routing.arq import ArqSender
from repro.routing.base import RuntimeContext
from repro.util.validation import require, require_positive


@dataclass
class _RttState:
    """Jacobson estimator state for one link direction."""

    srtt: float
    rttvar: float


class AdaptiveTimeoutPolicy:
    """Per-link Jacobson/Karn retransmission-timeout estimation."""

    def __init__(
        self,
        ctx: RuntimeContext,
        alpha: float = 0.125,
        beta: float = 0.25,
        var_factor: float = 4.0,
        initial_rto: float = 0.5,
        ceiling: float = 5.0,
    ) -> None:
        require(0.0 < alpha < 1.0, "alpha must be in (0, 1)")
        require(0.0 < beta < 1.0, "beta must be in (0, 1)")
        require_positive(var_factor, "var_factor")
        require_positive(initial_rto, "initial_rto")
        require_positive(ceiling, "ceiling")
        require(ceiling >= initial_rto, "ceiling must cover initial_rto")
        self.ctx = ctx
        self.alpha = alpha
        self.beta = beta
        self.var_factor = var_factor
        self.initial_rto = initial_rto
        self.ceiling = ceiling
        self._state: Dict[Tuple[int, int], _RttState] = {}
        self.samples = 0

    def _floor(self, src: int, dst: int) -> float:
        """Never undercut the paper's static timer."""
        link_alpha = self.ctx.monitor.estimate(src, dst).alpha
        return self.ctx.params.ack_timeout(link_alpha)

    def timeout(self, src: int, dst: int) -> float:
        """Current RTO for the (src, dst) direction."""
        floor = self._floor(src, dst)
        state = self._state.get((src, dst))
        if state is None:
            # Conservative bootstrap until the first unambiguous sample.
            return min(max(floor, self.initial_rto), self.ceiling)
        rto = state.srtt + self.var_factor * state.rttvar
        rto += self.ctx.params.ack_timeout_slack
        return min(max(rto, floor), self.ceiling)

    def on_sample(self, src: int, dst: int, rtt: float) -> None:
        """Fold one unambiguous RTT observation into the estimator."""
        self.samples += 1
        state = self._state.get((src, dst))
        if state is None:
            self._state[(src, dst)] = _RttState(srtt=rtt, rttvar=rtt / 2.0)
            return
        deviation = abs(state.srtt - rtt)
        state.rttvar = (1.0 - self.beta) * state.rttvar + self.beta * deviation
        state.srtt = (1.0 - self.alpha) * state.srtt + self.alpha * rtt


class AdaptiveDcrdStrategy(DcrdStrategy):
    """DCRD with congestion-aware (Jacobson/Karn) ACK timeouts."""

    name = "DCRD+adaptive"

    def __init__(self, ctx: RuntimeContext, rto_ceiling: float = 5.0) -> None:
        super().__init__(ctx)
        self.rto_policy = AdaptiveTimeoutPolicy(ctx, ceiling=rto_ceiling)
        self.arq = ArqSender(ctx, timeout_policy=self.rto_policy)

"""Subscriber churn: joins and leaves while traffic flows.

The overlay-multicast literature the paper builds on ([7], [8]) is largely
about handling membership churn efficiently; the paper itself evaluates a
static population. This extension adds runtime churn:

* :class:`ChurnProcess` flips random (topic, broker) subscriptions at a
  configurable rate — a join picks a broker not currently subscribed (with
  a deadline derived the same way as the static workload), a leave removes
  an existing subscriber (never the last one, so every topic stays live);
* after each flip the strategy is notified through the
  ``on_subscription_added`` / ``on_subscription_removed`` hooks — DCRD
  recomputes one ``<d, r>`` table, the fixed baselines rebuild;
* :func:`churn_study` sweeps the churn rate and compares strategies.

Metrics semantics under churn: a message's expected recipients are the
subscribers *at publish time*; a subscriber that leaves with copies in
flight counts against delivery if the copy no longer reaches it. That is
the operator-visible behaviour of a real broker network.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment
from repro.experiments.sweeps import ProgressHook, SweepResult
from repro.metrics.summary import MetricsSummary, mean_summaries
from repro.pubsub.topics import Subscription
from repro.routing.base import RoutingStrategy, RuntimeContext
from repro.util.validation import require_positive


class ChurnProcess:
    """Flips random subscriptions at exponential intervals."""

    def __init__(
        self,
        ctx: RuntimeContext,
        strategy: RoutingStrategy,
        rate: float,
        deadline_factor: float = 3.0,
        stop_time: Optional[float] = None,
    ) -> None:
        require_positive(rate, "rate")
        self.ctx = ctx
        self.strategy = strategy
        self.rate = rate
        self.deadline_factor = deadline_factor
        self.stop_time = stop_time
        self.joins = 0
        self.leaves = 0
        self._rng = ctx.streams.get("churn")

    def start(self) -> None:
        """Schedule the first flip."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = float(self._rng.exponential(1.0 / self.rate))
        self.ctx.sim.schedule(delay, self._flip)

    def _flip(self) -> None:
        if self.stop_time is not None and self.ctx.sim.now >= self.stop_time:
            return
        workload = self.ctx.workload
        spec = workload.topics[int(self._rng.integers(0, len(workload.topics)))]
        node = int(self._rng.integers(0, self.ctx.topology.num_nodes))
        subscribed = node in spec.subscriber_nodes
        if subscribed and len(spec.subscriptions) > 1:
            workload.remove_subscription(spec.topic, node)
            self.strategy.on_subscription_removed(spec.topic, node)
            self.leaves += 1
        elif not subscribed and node != spec.publisher:
            deadline = self.deadline_factor * self.ctx.topology.shortest_delay(
                spec.publisher, node
            )
            subscription = Subscription(node=node, deadline=deadline)
            workload.add_subscription(spec.topic, subscription)
            self.strategy.on_subscription_added(spec.topic, subscription)
            self.joins += 1
        self._schedule_next()


def run_with_churn(
    config: ExperimentConfig,
    strategy_name: str,
    seed: int,
    churn_rate: float,
) -> Tuple[MetricsSummary, ChurnProcess]:
    """One run with a churn process attached; returns (summary, process)."""
    env = build_environment(config, strategy_name, seed)
    churn = ChurnProcess(
        env.ctx,
        env.strategy,
        rate=churn_rate,
        deadline_factor=config.deadline_factor,
        stop_time=config.duration,
    )
    churn.start()
    summary = env.execute()
    return summary, churn


#: Default churn-rate axis (subscription flips per second, network-wide).
DEFAULT_CHURN_RATES = (0.0, 0.5, 2.0, 8.0)


def churn_study(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    churn_rates: Sequence[float] = DEFAULT_CHURN_RATES,
    degree: int = 5,
    failure_probability: float = 0.04,
    strategies: Sequence[str] = ("DCRD", "D-Tree", "Multipath"),
    progress: Optional[ProgressHook] = None,
) -> SweepResult:
    """Sweep the churn rate under the paper's failure setting."""
    result = SweepResult(
        name="Extension: subscriber churn",
        x_label="churn rate (flips/s)",
        x_values=list(churn_rates),
        strategies=list(strategies),
    )
    config = ExperimentConfig(
        topology_kind="regular",
        degree=degree,
        duration=duration,
        failure_probability=failure_probability,
    )
    for rate in churn_rates:
        row = {}
        for strategy in strategies:
            summaries: List[MetricsSummary] = []
            for seed in seeds:
                if progress is not None:
                    progress(f"churn={rate} {strategy} seed={seed}")
                if rate == 0.0:
                    env = build_environment(config, strategy, seed)
                    summaries.append(env.execute())
                else:
                    summary, _ = run_with_churn(config, strategy, seed, rate)
                    summaries.append(summary)
            row[strategy] = mean_summaries(summaries)
        result.cells[rate] = row
    return result

"""Congestion study: DCRD's bypass behaviour on finite-capacity links.

The paper motivates DCRD with "link failures *and congestions*
unpredictably occurring at overlay links" (§III) but its evaluation models
only failures. This extension closes the gap using the substrate's
finite-capacity link mode (``link_service_time``): each link direction
serialises one DATA frame per service time, so offered load above capacity
builds FIFO queues and queueing delay.

The headline result is a **negative** one for the paper's design, in two
escalating parts (measured: degree 5, 20 ms service time, 10–50 ms
propagation, 8 topics):

1. **Mis-calibration, no congestion needed.** The static ACK timer
   (``factor * alpha``) is propagation-based; once serialisation is
   comparable to propagation, the *unloaded* round trip already exceeds it
   (e.g. a 10 ms link: timer 21 ms vs RTT 20 + 10 + 10 = 40 ms). Every
   transmission is declared failed while its copy still arrives; the
   sender walks its whole sending list per hop and traffic explodes to
   *hundreds* of packets per subscriber even at 1 pkt/s — QoS ~2% where
   the naive fixed tree delivers 100%.
2. **Metastable collapse at saturation.** The adaptive
   (:class:`repro.extensions.adaptive.AdaptiveDcrdStrategy`, Jacobson/Karn)
   timer fixes regime 1 completely — it matches the tree's 100%/1.41
   pkts/sub exactly through moderate load — but near true link saturation
   a transient queue spike can outrun the RTT estimator, and one burst of
   spurious timeouts re-ignites the storm. Rerouting-on-silence is
   *inherently* load-amplifying; only admission control or backoff (out of
   scope for the paper's design) removes the metastability.

Multipath, whose duplication doubles its own offered load, congests itself
well before the single-copy schemes at every level.

:func:`congestion_study` sweeps the publish rate (load) at a fixed service
time and reports QoS delivery per strategy, including the adaptive fix.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import ProgressHook, SweepExecutor, SweepResult, sweep

#: Publish intervals swept (seconds between packets per topic); smaller is
#: more load.
DEFAULT_PUBLISH_INTERVALS = (1.0, 0.5, 0.25, 0.125)


def congestion_study(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    publish_intervals: Sequence[float] = DEFAULT_PUBLISH_INTERVALS,
    service_time: float = 0.02,
    degree: int = 5,
    strategies: Sequence[str] = ("DCRD", "DCRD+adaptive", "D-Tree", "Multipath"),
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Sweep offered load on finite-capacity links.

    With ``service_time = 0.02`` a link direction carries at most 50
    DATA frames/s; ten topics at 8 pkt/s with multi-subscriber fan-out
    push shared tree links well past that.

    ORACLE is deliberately absent: its clairvoyance covers failures, not
    queues, and its loss-immunity makes congested comparisons misleading.
    """
    configs = {
        interval: ExperimentConfig(
            topology_kind="regular",
            degree=degree,
            duration=duration,
            failure_probability=0.0,
            publish_interval=interval,
            link_service_time=service_time,
        )
        for interval in publish_intervals
    }
    return sweep(
        "Extension: congestion",
        "publish interval (s)",
        configs,
        seeds,
        strategies,
        progress,
        executor=executor,
    )

"""FEC baseline: path diversity with forward error correction.

The paper's related work cites Nguyen & Zakhor's PDF system [5] — packet-
level FEC over diverse paths — as the other classical way of buying
reliability with redundancy. This extension implements the idea so the
redundancy/reliability trade-off can be measured against DCRD and plain
Multipath:

* each published message is expanded into ``n = k + r`` fragments
  (``k`` data + ``r`` parity, an (n, k) erasure code — we simulate the
  combinatorics, not the Galois-field arithmetic: *any* ``k`` distinct
  fragments decode the message);
* the ``n`` fragments are source-routed over the ``n`` most link-disjoint
  of the shortest-delay paths (greedy selection, same spirit as the
  Multipath baseline's secondary-path rule);
* fragments are forwarded hop-by-hop with the shared ARQ; the subscriber's
  broker runtime reassembles — delivery happens when the ``k``-th distinct
  fragment arrives;
* like the other fixed-path schemes, FEC never reroutes: a fragment whose
  path fails is lost, and the message survives only while at least ``k``
  fragment paths stay alive.

Per-subscriber traffic is ~``n/k`` of a tree's (for same-length paths),
tunable between Multipath's 2x (``k=1, r=1`` duplicates) and thinner
redundancy like (3, 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import ProgressHook, SweepExecutor, SweepResult, sweep
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.pubsub.topics import TopicSpec
from repro.routing.arq import ArqSender
from repro.routing.base import RoutingStrategy, RuntimeContext
from repro.routing.paths import k_shortest_delay_paths, path_links
from repro.util.errors import RoutingError
from repro.util.validation import require


def select_diverse_paths(candidates: Sequence[List[int]], count: int) -> List[List[int]]:
    """Greedily pick *count* paths minimising pairwise link overlap.

    Starts from the shortest candidate, then repeatedly adds the candidate
    sharing the fewest links with everything already chosen (ties resolve
    toward shorter delay, i.e. earlier candidates). Candidates may repeat
    if the topology offers fewer distinct paths than requested.
    """
    if not candidates:
        raise RoutingError("select_diverse_paths needs at least one candidate")
    chosen: List[List[int]] = [list(candidates[0])]
    chosen_links = set(path_links(candidates[0]))
    while len(chosen) < count:
        best = None
        best_overlap = None
        for candidate in candidates:
            if list(candidate) in chosen:
                continue
            overlap = len(path_links(candidate) & chosen_links)
            if best_overlap is None or overlap < best_overlap:
                best = list(candidate)
                best_overlap = overlap
        if best is None:
            # Topology exhausted: reuse paths round-robin.
            best = chosen[len(chosen) % len(set(map(tuple, chosen)))]
        chosen.append(best)
        chosen_links |= path_links(best)
    return chosen


class FecMultipathStrategy(RoutingStrategy):
    """(n, k) erasure-coded delivery over diverse fixed paths."""

    name = "FEC"
    uses_acks = True

    #: Code parameters: k data fragments, r parity fragments.
    k = 2
    r = 1

    #: Candidate pool of shortest-delay paths to pick from.
    candidate_pool = 8

    def __init__(self, ctx: RuntimeContext) -> None:
        require(self.k >= 1, "k must be >= 1")
        require(self.r >= 0, "r must be >= 0")
        super().__init__(ctx)
        self.arq = ArqSender(ctx)
        # (topic, subscriber) -> one fixed path per fragment.
        self._paths: Dict[Tuple[int, int], List[List[int]]] = {}
        self.abandoned_fragments = 0

    @property
    def n(self) -> int:
        """Total fragments per message per subscriber."""
        return self.k + self.r

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Fix the fragment paths of every (topic, subscriber) pair."""
        estimates = self.ctx.monitor.estimates()
        for spec in self.ctx.workload.topics:
            for sub in spec.subscriptions:
                if sub.node == spec.publisher:
                    continue
                candidates = k_shortest_delay_paths(
                    self.ctx.topology,
                    spec.publisher,
                    sub.node,
                    self.candidate_pool,
                    estimates,
                )
                self._paths[(spec.topic, sub.node)] = select_diverse_paths(
                    candidates, self.n
                )

    def paths_for(self, topic: int, subscriber: int) -> List[List[int]]:
        """The fixed per-fragment paths of one pair."""
        return self._paths[(topic, subscriber)]

    # ------------------------------------------------------------------
    def publish(self, spec: TopicSpec, msg_id: int) -> None:
        """Emit n source-routed fragments per subscriber."""
        now = self.ctx.sim.now
        for sub in spec.subscriptions:
            if sub.node == spec.publisher:
                self.ctx.metrics.record_delivery(msg_id, sub.node, now)
                continue
            paths = self._paths[(spec.topic, sub.node)]
            for index, route in enumerate(paths):
                frame = PacketFrame.fresh(
                    msg_id=msg_id,
                    topic=spec.topic,
                    origin=spec.publisher,
                    publish_time=now,
                    destinations=frozenset({sub.node}),
                    source_route=tuple(route[1:]),
                    fragment_index=index,
                    fragments_needed=self.k,
                    size=1.0 / self.k,
                )
                self._forward(spec.publisher, frame)

    def handle_data(self, node: int, sender: int, frame: PacketFrame) -> None:
        """Advance the fragment along its source route."""
        self._forward(node, frame)

    def handle_ack(self, node: int, sender: int, ack: AckFrame) -> None:
        """Route hop-by-hop ACKs into the ARQ layer."""
        self.arq.handle_ack(node, sender, ack)

    # ------------------------------------------------------------------
    def _forward(self, node: int, frame: PacketFrame) -> None:
        if not frame.source_route:
            raise RoutingError(
                f"FEC fragment of msg {frame.msg_id} stranded at {node}"
            )
        hop = frame.source_route[0]
        copy = frame.forwarded(
            node, frame.destinations, source_route=frame.source_route[1:]
        )
        self.frames_forwarded += 1
        self.arq.send(node, hop, copy, self._on_acked, self._on_failed)

    def _on_acked(self, copy: PacketFrame) -> None:
        """Responsibility moved downstream; nothing to do."""

    def _on_failed(self, copy: PacketFrame) -> None:
        """Fixed paths cannot reroute: this fragment dies here."""
        self.abandoned_fragments += 1
        # Only the erasure code's slack is lost; metrics-level give-up is
        # not recorded per fragment (the message may still decode).


def fec_study(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    failure_probabilities: Sequence[float] = (0.0, 0.02, 0.06, 0.1),
    degree: int = 5,
    strategies: Sequence[str] = ("DCRD", "Multipath", "FEC", "D-Tree"),
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Redundancy trade-off sweep: FEC vs Multipath vs DCRD under failures."""
    configs = {
        pf: ExperimentConfig(
            topology_kind="regular",
            degree=degree,
            duration=duration,
            failure_probability=pf,
        )
        for pf in failure_probabilities
    }
    return sweep(
        "Extension: FEC redundancy",
        "failure probability",
        configs,
        seeds,
        strategies,
        progress,
        executor=executor,
    )

"""Heterogeneous link quality: where Theorem 1 earns its keep.

In the paper's evaluation every link shares one loss rate, so
``r_X^i = gamma * r_i`` scales every candidate identically and Theorem 1's
``d/r`` sort collapses (almost) to a plain delay sort. Real overlays are
not like that: loss is wildly uneven across paths. This extension draws
each link's loss rate independently (``loss_rate_range``), which makes the
ordering decision genuinely two-dimensional — a slightly slower but much
cleaner neighbour should be tried first.

To isolate the theorem's contribution, :class:`NaiveOrderDcrdStrategy`
is DCRD with exactly one change: sending lists are sorted by expected
delay ``d_via`` alone (what a "shortest expected delay first" heuristic
would do) instead of ``d_via / r_via``. Everything else — Eq. 1/2/3, ACKs,
bouncing — is identical, so any performance gap is the ordering rule.

:func:`heterogeneity_study` sweeps the loss-rate spread at zero transient
failures (so loss is the only hazard) and compares DCRD, the naive-order
variant, and D-Tree.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.computation import (
    DrTable,
    NodeState,
    ViaNeighbor,
    aggregate_dr,
    compute_dr_table,
)
from repro.core.forwarding import DcrdStrategy
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import ProgressHook, SweepExecutor, SweepResult, sweep


def reorder_table_by_delay(table: DrTable) -> DrTable:
    """A copy of *table* whose sending lists are sorted by ``d_via`` only.

    ``<d, r>`` values are re-aggregated under the new order so the
    advertised expectations stay internally consistent (the delivery
    ratio ``r`` is order-invariant; the expected delay ``d`` is not).
    """
    states: Dict[int, NodeState] = {}
    for node, state in table.states.items():
        if not state.sending_list:
            states[node] = state
            continue
        reordered: Tuple[ViaNeighbor, ...] = tuple(
            sorted(state.sending_list, key=lambda via: (via.d_via, via.neighbor))
        )
        d, r = aggregate_dr(reordered)
        states[node] = NodeState(d=d, r=r, sending_list=reordered)
    return DrTable(
        publisher=table.publisher,
        subscriber=table.subscriber,
        deadline=table.deadline,
        states=states,
        budgets=dict(table.budgets),
        rounds=table.rounds,
        converged=table.converged,
    )


class NaiveOrderDcrdStrategy(DcrdStrategy):
    """DCRD with delay-only sending-list order (Theorem 1 ablation)."""

    name = "DCRD-naive-order"

    def _rebuild_tables(self) -> None:
        before = self.table_rebuilds
        super()._rebuild_tables()
        if self.table_rebuilds == before:
            return  # estimates unchanged; tables untouched
        self._tables = {
            key: reorder_table_by_delay(table)
            for key, table in self._tables.items()
        }

    def on_subscription_added(self, topic: int, subscription) -> None:
        super().on_subscription_added(topic, subscription)
        key = (topic << 21) | subscription.node  # packed pair id
        self._tables[key] = reorder_table_by_delay(self._tables[key])


#: Loss-spread axis: (low, high) per-link loss ranges with equal means.
DEFAULT_SPREADS: Tuple[Tuple[float, float], ...] = (
    (0.10, 0.10),
    (0.05, 0.15),
    (0.00, 0.20),
    (0.00, 0.30),
)


def heterogeneity_study(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    spreads: Sequence[Tuple[float, float]] = DEFAULT_SPREADS,
    degree: int = 5,
    m: int = 1,
    strategies: Sequence[str] = ("DCRD", "DCRD-naive-order", "D-Tree"),
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Sweep per-link loss heterogeneity at zero transient failures."""
    configs = {}
    for low, high in spreads:
        label = f"U[{low:.2f},{high:.2f}]"
        configs[label] = ExperimentConfig(
            topology_kind="regular",
            degree=degree,
            duration=duration,
            failure_probability=0.0,
            loss_rate_range=(low, high),
            m=m,
        )
    return sweep(
        "Extension: loss heterogeneity",
        "per-link loss range",
        configs,
        seeds,
        strategies,
        progress,
        executor=executor,
    )

"""Node-failure evaluation (paper §V: "work is also underway…").

The paper's future-work section highlights node failures: a crashed broker
takes all its links down simultaneously, can strand packets cached at it,
and can cut destinations off entirely. The substrate already models this
(:class:`repro.overlay.failures.NodeFailureSchedule`); this module provides
the study the paper promises: a sweep over the per-node crash probability
comparing DCRD with the baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import DEFAULT_STRATEGIES
from repro.experiments.sweeps import ProgressHook, SweepExecutor, SweepResult, sweep

#: Default crash-probability axis (per node, per second).
NODE_FAILURE_PROBABILITIES = (0.0, 0.01, 0.02, 0.04, 0.06)


def node_failure_study(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    probabilities: Sequence[float] = NODE_FAILURE_PROBABILITIES,
    degree: int = 8,
    link_failure_probability: float = 0.02,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Sweep the per-node crash probability on a degree-``degree`` overlay.

    Link failures stay at a small constant rate so the node-crash axis is
    the dominant effect. Crashed publishers cannot emit (their frames are
    dropped at the network), and crashed subscribers cannot receive —
    deliveries simply arrive once the node recovers, which is exactly the
    latency cost the paper anticipates.
    """
    configs = {
        probability: ExperimentConfig(
            topology_kind="regular",
            degree=degree,
            duration=duration,
            failure_probability=link_failure_probability,
            node_failure_probability=probability,
        )
        for probability in probabilities
    }
    return sweep(
        "Extension: node failures",
        "node crash probability",
        configs,
        seeds,
        strategies,
        progress,
        executor=executor,
    )

"""Persistency mode: never drop, store and retry (paper §III).

The core DCRD algorithm guarantees delivery only while a failure-free path
exists. §III sketches a persistency mode for the remaining case: a broker
that has exhausted every option *persists* the packet and retries once the
(transient, per-second) failures have moved on. The paper explicitly does
not evaluate it — "this mode incurs a large overhead" — which makes it a
natural extension target: :class:`PersistentDcrdStrategy` implements it and
the ablation benchmark quantifies that overhead.

Design:

* :meth:`DcrdStrategy.abandon` is overridden: instead of recording a
  give-up, the broker appends the destination to its
  :class:`PersistentStore` and schedules a retry after ``retry_backoff``
  seconds (longer than one failure epoch, so the world has re-rolled);
* the retry re-enters Algorithm 2 at the storing broker with a *fresh*
  routing path — earlier exploration state is deliberately discarded since
  the failures that caused it have likely cleared;
* retries repeat up to ``max_retries`` per stored packet; only after the
  last one fails is the destination finally given up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import probes as _probes
from repro.core.forwarding import DcrdStrategy
from repro.pubsub.messages import PacketFrame
from repro.routing.base import RuntimeContext
from repro.util.validation import require, require_positive


@dataclass
class StoredPacket:
    """One persisted (packet, destination) awaiting retry."""

    node: int
    subscriber: int
    frame: PacketFrame
    retries_left: int


@dataclass
class PersistentStore:
    """Per-run bookkeeping of the persistency mode."""

    stored: int = 0
    recovered: int = 0
    exhausted: int = 0
    pending: Dict[Tuple[int, int, int], StoredPacket] = field(default_factory=dict)

    def key(self, item: StoredPacket) -> Tuple[int, int, int]:
        """Identity of a stored entry: (broker, msg, subscriber)."""
        return (item.node, item.frame.msg_id, item.subscriber)


class PersistentDcrdStrategy(DcrdStrategy):
    """DCRD plus the §III persistency mode."""

    name = "DCRD+persist"

    def __init__(
        self,
        ctx: RuntimeContext,
        retry_backoff: float = 1.5,
        max_retries: int = 10,
    ) -> None:
        require_positive(retry_backoff, "retry_backoff")
        require(max_retries >= 1, "max_retries must be >= 1")
        super().__init__(ctx)
        self.retry_backoff = retry_backoff
        self.max_retries = max_retries
        self.store = PersistentStore()
        self._retired: set = set()

    def abandon(self, node: int, frame: PacketFrame, subscriber: int) -> None:
        """Persist instead of dropping; schedule the first retry."""
        if self.ctx.metrics.outcome(frame.msg_id, subscriber).delivered:
            # Another branch already delivered; nothing worth persisting.
            return
        item = StoredPacket(
            node=node,
            subscriber=subscriber,
            frame=frame,
            retries_left=self.max_retries,
        )
        key = self.store.key(item)
        if key in self.store.pending or key in self._retired:
            # Already persisted (or finally given up) by an earlier branch.
            return
        self.store.stored += 1
        self.store.pending[key] = item
        probe = _probes.on_custody
        if probe is not None:
            # The pair is in explicit custody, not leaked: the sanitizer's
            # end-of-run conservation check must account it as such when
            # the run ends before the retries are exhausted, and the tracer
            # records the custody hand-off for journey reconstruction.
            probe(self.ctx.sim._now, node, frame, subscriber, "stored", -1)
        self.ctx.sim.schedule(self.retry_backoff, self._retry, key)

    def _retry(self, key: Tuple[int, int, int]) -> None:
        item = self.store.pending.get(key)
        if item is None:
            return
        outcome = self.ctx.metrics.outcome(item.frame.msg_id, item.subscriber)
        if outcome.delivered:
            # Another copy made it in the meantime; retire the entry.
            del self.store.pending[key]
            self.store.recovered += 1
            return
        if item.retries_left <= 0:
            del self.store.pending[key]
            self._retired.add(key)
            self.store.exhausted += 1
            super().abandon(item.node, item.frame, item.subscriber)
            return
        item.retries_left -= 1
        # Re-enter Algorithm 2 from the storing broker with a clean slate:
        # fresh routing path, single destination, new copy.
        fresh = PacketFrame.fresh(
            msg_id=item.frame.msg_id,
            topic=item.frame.topic,
            origin=item.frame.origin,
            publish_time=item.frame.publish_time,
            destinations=frozenset({item.subscriber}),
            routing_path=(),
        )
        probe = _probes.on_custody
        if probe is not None:
            # Link the fresh copy to the stored frame so the tracer can
            # walk a redelivered pair's journey back through this broker.
            probe(
                self.ctx.sim._now,
                item.node,
                item.frame,
                item.subscriber,
                "redelivered",
                fresh.transfer_id,
            )
        self._start_task(item.node, fresh)
        self.ctx.sim.schedule(self.retry_backoff, self._retry, key)

    @property
    def still_pending(self) -> int:
        """Entries persisted and not yet delivered or exhausted."""
        return len(self.store.pending)

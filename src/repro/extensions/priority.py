"""Priority-based queueing: the intro's other timely-delivery standard.

The paper's introduction contrasts DCRD with "standard approaches to
timely delivery of messages, such as priority-based queuing and shortest
path tree", which "do not simultaneously consider reliable delivery". With
the finite-capacity substrate, that approach is implementable and
measurable: ``P-DTree`` is the shortest-delay tree whose frames carry
their earliest destination deadline, served earliest-deadline-first at
every busy link.

The study's findings (recorded in EXPERIMENTS.md) are the textbook ones:

* **at moderate load EDF reordering alone helps**: urgent frames overtake
  transient queues and the QoS ratio recovers toward 100% while FIFO
  already leaks;
* **under sustained overload plain EDF ≈ FIFO** — a saturated queue
  drains at a fixed rate no matter the order, and EDF's preference for
  the earliest deadlines spends capacity on frames that are often
  *already doomed* (the EDF domino effect);
* **EDF + drop-expired** is the real priority-queueing system: discarding
  frames that can no longer meet their deadline frees capacity, raising
  the QoS ratio at the direct cost of delivery ratio — timeliness traded
  against reliability, which is precisely the trade-off the paper says
  this approach cannot escape (and which DCRD's rerouting does not face:
  its losses come only from genuine partitions).

:func:`priority_queueing_study` sweeps offered load with mixed urgency
classes under three modes (fifo / edf / edf+drop), one
:class:`~repro.experiments.sweeps.SweepResult` per mode.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import ProgressHook, SweepExecutor, SweepResult, sweep

#: Load axis: seconds between packets per topic (last point is overload).
DEFAULT_INTERVALS = (0.5, 0.125, 0.0625)

#: The queueing modes compared, with their config overrides.
MODES: Dict[str, Dict[str, object]] = {
    "fifo": {"queue_discipline": "fifo"},
    "edf": {"queue_discipline": "edf"},
    "edf+drop": {"queue_discipline": "edf", "edf_drop_expired": True},
}


def priority_queueing_study(
    duration: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    publish_intervals: Sequence[float] = DEFAULT_INTERVALS,
    service_time: float = 0.02,
    degree: int = 5,
    deadline_factor_choices: Sequence[float] = (4.0, 16.0),
    strategies: Sequence[str] = ("P-DTree",),
    modes: Sequence[str] = ("fifo", "edf", "edf+drop"),
    progress: Optional[ProgressHook] = None,
    executor: Optional[SweepExecutor] = None,
) -> Mapping[str, SweepResult]:
    """Sweep offered load per queueing mode with mixed urgency classes.

    Deadline classes are chosen so that the urgent class (4x) is feasible
    on idle links (propagation + per-hop service) but dies in queues,
    while the bulk class (16x) has genuine slack — the regime where EDF's
    reordering can matter at all.
    """
    results: Dict[str, SweepResult] = {}
    for mode in modes:
        overrides = MODES[mode]
        configs = {
            interval: ExperimentConfig(
                topology_kind="regular",
                degree=degree,
                duration=duration,
                failure_probability=0.0,
                publish_interval=interval,
                link_service_time=service_time,
                deadline_factor_choices=tuple(deadline_factor_choices),
                **overrides,  # type: ignore[arg-type]
            )
            for interval in publish_intervals
        }
        results[mode] = sweep(
            f"Extension: priority queueing ({mode})",
            "publish interval (s)",
            configs,
            seeds,
            strategies,
            progress,
            executor=executor,
        )
    return results

"""Live mode: the broker stack over asyncio TCP sockets.

This package is the wall-clock/socket substrate behind the
:mod:`repro.substrate` contract — the same :class:`BrokerRuntime`,
:class:`ArqSender` and DCRD forwarding logic that runs on the
discrete-event kernel, deployed over real loopback TCP:

* :mod:`repro.live.clock` — :class:`WallClock`, the asyncio-loop Clock;
* :mod:`repro.live.codec` — length-prefixed JSON frame codec;
* :mod:`repro.live.faults` — the seeded deterministic fault-injection
  shim (drop/duplicate/reorder/delay at the transport seam);
* :mod:`repro.live.transport` — :class:`LiveTransport`, per-peer TCP
  connection management + probe-bus observability;
* :mod:`repro.live.config` — :class:`LiveConfig`, validated runtime knobs;
* :mod:`repro.live.scenarios` — scripted differential scenarios shared
  with the sim substrate;
* :mod:`repro.live.runtime` — the live composition root
  (:func:`run_live_scenario`);
* :mod:`repro.live.broker` — the standalone multi-process broker
  entrypoint (``python -m repro.live.broker``) and its in-process
  testable :class:`PartitionRuntime`;
* :mod:`repro.live.cluster` — the multi-process coordinator
  (:class:`LiveCluster`, :func:`run_cluster_scenario`).

Equivalence with the sim substrate is pinned by
``tests/integration/test_live_conformance.py`` (single process) and
``tests/integration/test_multiproc_conformance.py`` (process fleet); see
``docs/LIVE_MODE.md``.
"""

from repro.live.config import LiveConfig
from repro.live.faults import DropRule, FaultInjector

__all__ = ["LiveConfig", "DropRule", "FaultInjector"]

"""The standalone multi-process broker entrypoint.

One OS process hosts one *partition* of the overlay — a subset of broker
nodes sharing a :class:`~repro.live.transport.LiveTransport` — and is
driven by the cluster coordinator (:mod:`repro.live.cluster`) over a
newline-delimited-JSON TCP control channel::

    python -m repro.live.broker --node-id 0 --node-id 3 \\
        --peers addr.json --scenario scenario.json --control 127.0.0.1:9000

The protocol stack inside a partition is byte-for-byte the stack of the
single-process live runtime (:mod:`repro.live.runtime`): the same
:class:`DcrdStrategy` + :class:`ArqSender` + :class:`BrokerRuntime` +
analytic :class:`LinkMonitor` composition, the same probe/sanitizer
install order — only the *deployment* differs. That is the claim the
three-way conformance suite pins: sim, single-process live, and
multi-process live must produce identical delivered-pair sets with zero
changes to the protocol modules.

Multi-process glue, all of it outside the protocol code:

* **Transfer-id striping** — each copy's globally unique ``transfer_id``
  is normally drawn from one process-wide counter; with many processes
  the counters would collide. :func:`install_transfer_stripe` rebinds the
  allocator to a disjoint range per partition (group id shifted past
  :data:`TRANSFER_STRIPE_BITS`), without touching the protocol module:
  both allocation sites read the module global at call time.
* **Epoch-pinned clocks** — the coordinator's ``start`` command carries a
  ``time.time()`` epoch; every partition pins its
  :class:`~repro.live.clock.WallClock` to it, so frame timestamps,
  delivery delays and trace events are comparable fleet-wide.
* **Pre-registered expectations** — every partition registers *all*
  expected ``(message, subscriber)`` pairs at start (with the scheduled
  publish times), so deliveries and give-ups are recorded in whichever
  process they happen; the coordinator merges by union.
* **Partitioned sanitizer** — :class:`repro.sanity.Sanitizer` runs in
  ``partitioned`` mode (remote transmissions legitimately arrive without
  a local send record); timer settlement is checked locally, frame
  conservation is re-proved over the merged fleet ledgers at the
  coordinator.

The control channel understands ``start``, ``status``, ``report`` and
``shutdown``; see :mod:`repro.live.cluster` for the coordinator side.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import probes as _probes
from repro import sanity as _sanity
from repro import trace as _trace
from repro.core.forwarding import DcrdStrategy
from repro.live.clock import WallClock
from repro.live.config import LiveConfig
from repro.live.faults import FaultInjector
from repro.live.scenarios import AcceptLedger, Scenario, scenario_from_dict
from repro.live.transport import LiveTransport
from repro.metrics.collector import MetricsCollector
from repro.ordering.plan import OrderingPlan, plan_from_scenario
from repro.overlay.monitor import LinkMonitor
from repro.pubsub import messages as _messages
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.messages import next_message_id, reset_message_ids
from repro.routing.base import RuntimeContext
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError, SimulationError

#: Transfer ids are striped per partition: the high bits carry the group
#: id (``min(local_nodes) + 1``), the low 40 bits the local sequence.
#: 2^40 copies per partition per run is far beyond any scenario.
TRANSFER_STRIPE_BITS = 40


def install_transfer_stripe(group: int) -> None:
    """Move this process's transfer-id allocator to *group*'s stripe.

    Rebinds ``repro.pubsub.messages._transfer_counter`` — the module
    global both allocation sites read at call time — to count from
    ``(group << TRANSFER_STRIPE_BITS) + 1``. Call after
    :func:`~repro.pubsub.messages.reset_message_ids` (which resets the
    counter to the unstriped range). Message ids are *not* striped: only
    the publisher's process allocates them, starting at 1.
    """
    if group < 1:
        raise ConfigurationError(f"transfer stripe group must be >= 1, got {group}")
    _messages._transfer_counter = itertools.count(
        (group << TRANSFER_STRIPE_BITS) + 1
    )


def split_transfer_id(transfer_id: int) -> Tuple[int, int]:
    """Decompose a (possibly striped) transfer id into (group, local seq).

    Single-process ids (group 0) pass through unchanged; the multi-process
    golden pin uses this to normalize ids across deployments.
    """
    return divmod(transfer_id, 1 << TRANSFER_STRIPE_BITS)


class PartitionRuntime:
    """One partition of a live deployment: the hosted brokers + glue.

    Composes the full protocol stack over a partitioned
    :class:`LiveTransport` and owns the partition-local observability
    (accept ledger, partitioned sanitizer, optional tracer). The class is
    loop-agnostic and in-process testable: the cluster coordinator drives
    it inside :func:`broker_main`, while the test suite runs two
    instances on one loop to cover the partition seams under coverage.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int,
        local_nodes: Sequence[int],
        config: Optional[LiveConfig] = None,
        sanitize: bool = True,
        trace: bool = False,
        stripe_group: Optional[int] = None,
        manage_observers: bool = True,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.local_nodes = frozenset(local_nodes)
        if not self.local_nodes:
            raise ConfigurationError("a partition must host at least one node")
        self.config = config if config is not None else LiveConfig()
        self.sanitize = sanitize
        self.stripe_group = stripe_group
        self.manage_observers = manage_observers
        self.clock: Optional[WallClock] = None
        self.transport: Optional[LiveTransport] = None
        self.strategy: Optional[DcrdStrategy] = None
        self.ctx: Optional[RuntimeContext] = None
        self.ordering: Optional[OrderingPlan] = None
        self.sanitizer: Optional[_sanity.Sanitizer] = None
        self.ledger = AcceptLedger()
        self.tracer: Optional[_trace.FrameTracer] = (
            _trace.FrameTracer() if trace else None
        )
        self.published = 0
        self.done_publishing = not self.hosts_publisher
        self._publish_task: Optional["asyncio.Task[None]"] = None
        self._finished = False

    @property
    def hosts_publisher(self) -> bool:
        return self.scenario.publisher in self.local_nodes

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Boot the partition: counters, transport, stack, observers."""
        reset_message_ids()
        if self.stripe_group is not None:
            install_transfer_stripe(self.stripe_group)
        loop = asyncio.get_running_loop()
        self.clock = WallClock(loop)
        topology = self.scenario.topology()
        rules = self.scenario.rules()
        fault = FaultInjector(seed=self.seed, rules=rules) if rules else None
        self.transport = LiveTransport(
            topology,
            self.clock,
            self.config,
            fault,
            local_nodes=self.local_nodes,
        )
        streams = RandomStreams(self.seed)
        monitor = LinkMonitor(topology, self.transport, streams, mode="analytic")
        self.ordering = plan_from_scenario(self.scenario.ordering)
        self.ctx = RuntimeContext(
            sim=self.clock,
            topology=topology,
            network=self.transport,
            monitor=monitor,
            workload=self.scenario.workload(),
            metrics=MetricsCollector(),
            streams=streams,
            params=self.scenario.params(),
            ordering=self.ordering,
        )
        if self.ordering is not None and self.hosts_publisher:
            # The stamper hook is process-global; only the publisher's
            # partition ever runs fresh(), and activating just that one
            # keeps co-located test partitions from clobbering each other.
            self.ordering.activate()
        self.strategy = DcrdStrategy(self.ctx)
        self.strategy.setup()
        brokers = [
            BrokerRuntime(node, self.ctx, self.strategy)
            for node in sorted(self.local_nodes)
        ]
        assert brokers  # attach side effects; the list itself is not used
        self.sanitizer = (
            _sanity.Sanitizer(partitioned=True) if self.sanitize else None
        )
        if self.manage_observers:
            # Same install order as both single-process runners.
            _sanity.install(self.sanitizer)
            _trace.install(self.tracer)
            _probes.attach(self.ledger)
        await self.transport.start()

    def begin(self, epoch: float, publish_times: Sequence[float]) -> None:
        """Apply the coordinator's ``start``: pin the clock, register all
        expectations, and (in the publisher's partition) launch the
        scripted publish loop."""
        assert self.clock is not None and self.ctx is not None
        self.clock.pin_epoch(epoch)
        scenario = self.scenario
        spec = self.ctx.workload.topic(scenario.topic)
        deadlines = {sub.node: sub.deadline for sub in spec.subscriptions}
        for i, publish_time in enumerate(publish_times):
            self.ctx.metrics.expect(i + 1, scenario.topic, publish_time, deadlines)
        if self.hosts_publisher:
            self._publish_task = asyncio.ensure_future(
                self._publish_loop(spec, publish_times)
            )

    async def _publish_loop(self, spec: Any, publish_times: Sequence[float]) -> None:
        assert self.clock is not None and self.strategy is not None
        for publish_time in publish_times:
            wait = publish_time - self.clock.now
            if wait > 0:
                await asyncio.sleep(wait)
            msg_id = next_message_id()
            self.strategy.publish(spec, msg_id)
            self.published += 1
        self.done_publishing = True

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The coordinator's quiescence-poll payload.

        ``activity`` is a monotone sum of link sends and deliveries: the
        fleet is quiescent when everyone is done publishing, no ARQ copy
        is in flight anywhere, and the global activity sum is unchanged
        across consecutive sweeps (a pending retransmission always keeps
        its copy in flight, so the counters cannot be transiently flat).
        """
        assert self.strategy is not None and self.transport is not None
        stats = self.transport.stats
        activity = sum(stats._sent) + sum(stats._delivered)
        return {
            "nodes": sorted(self.local_nodes),
            "in_flight": self.strategy.arq.in_flight,
            # Frames parked in hold-back pipelines: still "in flight" for
            # quiescence purposes (a stall timer will release them).
            "held": self.ordering.held_count() if self.ordering else 0,
            "activity": activity,
            "done_publishing": self.done_publishing,
            "published": self.published,
        }

    def report(self, include_trace: bool = False) -> Dict[str, Any]:
        """Reduce the partition to its mergeable end-of-run facts.

        Runs the partition-local sanitizer checks first
        (:meth:`~repro.sanity.Sanitizer.finish_partition`), which raise
        on a violation; the fleet-wide conservation check runs at the
        coordinator over the exported ledgers.
        """
        assert self.ctx is not None and self.strategy is not None
        assert self.clock is not None
        if not self._finished:
            self._finished = True
            # Flush hold-back buffers first so end-of-run releases land in
            # the metrics (and the sanitizer) before the partition checks.
            if self.ordering is not None:
                self.ordering.flush()
            if self.sanitizer is not None:
                self.sanitizer.finish_partition(self.clock.now)
        metrics = self.ctx.metrics
        local = self.local_nodes
        outcomes = metrics.outcomes()
        result: Dict[str, Any] = {
            "nodes": sorted(local),
            "published": self.published,
            "delivered": sorted(
                [o.msg_id, o.subscriber] for o in outcomes if o.delivered
            ),
            "gave_up": sorted(
                [o.msg_id, o.subscriber] for o in outcomes if o.gave_up
            ),
            "delays": sorted(
                [o.msg_id, o.subscriber, o.delay]
                for o in outcomes
                if o.delay is not None
            ),
            "duplicates": metrics.duplicate_count(),
            # The probe bus is process-global, so filter to the hosted
            # nodes — a no-op in a real one-partition-per-process run,
            # load-bearing when tests co-locate partitions on one loop.
            "deliveries": sorted(
                [msg, node] for msg, node in self.ledger.deliveries if node in local
            ),
            # Unsorted arrival order (local nodes only): the ordering
            # conformance suite compares per-node subsequences of this.
            "delivery_order": [
                [msg, node] for msg, node in self.ledger.deliveries if node in local
            ],
            "accepts_max": max(
                (
                    count
                    for (_, node), count in self.ledger.accepts.items()
                    if node in local
                ),
                default=0,
            ),
            "retransmissions": self.strategy.arq.retransmissions,
            "abandoned": self.strategy.abandoned,
            "in_flight": self.strategy.arq.in_flight,
        }
        if self.sanitizer is not None:
            perf = self.sanitizer.perf_counters()
            result["timers_started"] = perf["sanity.timers_started"]
            result["timers_settled"] = perf["sanity.timers_settled"]
            result["violations"] = perf["sanity.violations"]
            result["sanitizer"] = self.sanitizer.export_partition()
        if include_trace and self.tracer is not None:
            result["trace"] = [
                [event.t, event.kind, event.msg, event.transfer, event.node, event.peer]
                for event in self.tracer.events()
            ]
        return result

    async def close(self) -> None:
        """Tear down the publish task, observers, and transport."""
        if self._publish_task is not None:
            self._publish_task.cancel()
            try:
                await self._publish_task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
            self._publish_task = None
        if self.ordering is not None:
            self.ordering.deactivate()
        if self.manage_observers:
            _sanity.uninstall()
            _trace.uninstall()
            _probes.detach(self.ledger)
        if self.transport is not None and self.transport.started:
            await self.transport.close()


# ---------------------------------------------------------------------------
# Control-channel session (the broker side of the cluster protocol)
# ---------------------------------------------------------------------------
async def _control_session(
    runtime: PartitionRuntime,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    def send(message: Dict[str, Any]) -> None:
        writer.write(json.dumps(message).encode("utf-8") + b"\n")

    send({"type": "hello", "nodes": sorted(runtime.local_nodes)})
    await writer.drain()
    while True:
        line = await reader.readline()
        if not line:
            return  # coordinator vanished: exit, the teardown is in main
        command = json.loads(line)
        kind = command.get("type")
        if kind == "start":
            runtime.begin(command["epoch"], command["publish_times"])
            send({"type": "ok"})
        elif kind == "status":
            send({"type": "status", **runtime.status()})
        elif kind == "report":
            try:
                report = runtime.report(
                    include_trace=bool(command.get("trace", False))
                )
            except _sanity.InvariantViolation as violation:
                send({"type": "error", "error": violation.report()})
            else:
                send({"type": "report", **report})
        elif kind == "shutdown":
            send({"type": "bye"})
            await writer.drain()
            return
        else:
            send({"type": "error", "error": f"unknown command {kind!r}"})
        await writer.drain()


async def broker_main(args: argparse.Namespace) -> int:
    scenario = scenario_from_dict(
        json.loads(Path(args.scenario).read_text(encoding="utf-8"))
    )
    peers_raw = json.loads(Path(args.peers).read_text(encoding="utf-8"))
    peers = {int(node): (host, int(port)) for node, (host, port) in peers_raw.items()}
    config = LiveConfig(
        peers=peers,
        connect_timeout=args.connect_timeout,
        settle_timeout=args.settle_timeout,
    )
    nodes = sorted(set(args.node_id))
    runtime = PartitionRuntime(
        scenario,
        args.seed,
        nodes,
        config,
        sanitize=not args.no_sanitize,
        trace=args.trace,
        stripe_group=min(nodes) + 1,
    )
    control_host, _, control_port = args.control.rpartition(":")
    await runtime.start()
    try:
        reader, writer = await asyncio.open_connection(
            control_host, int(control_port)
        )
        try:
            await _control_session(runtime, reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # pragma: no cover - teardown best effort
                pass
    finally:
        await runtime.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.broker",
        description="One partition of a multi-process live broker overlay.",
    )
    parser.add_argument(
        "--node-id",
        type=int,
        action="append",
        required=True,
        help="broker node hosted by this process (repeatable)",
    )
    parser.add_argument(
        "--peers",
        required=True,
        help="JSON file mapping node id -> [host, port] for every broker",
    )
    parser.add_argument(
        "--scenario",
        required=True,
        help="JSON file with the serialized scenario (scenario_to_dict form)",
    )
    parser.add_argument(
        "--control",
        required=True,
        help="host:port of the cluster coordinator's control server",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-sanitize", action="store_true")
    parser.add_argument("--trace", action="store_true")
    parser.add_argument("--connect-timeout", type=float, default=10.0)
    parser.add_argument("--settle-timeout", type=float, default=10.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(broker_main(args))
    except (SimulationError, ConfigurationError) as exc:
        print(f"broker failed: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(main())

"""The wall-clock :class:`~repro.substrate.Clock` over an asyncio loop.

:class:`WallClock` reports seconds since its construction (monotonic,
``loop.time()``-based) and arms real timers via ``loop.call_later``. It
duck-types the two conventions the broker stack's hot paths rely on (see
:mod:`repro.substrate`):

* ``_now`` is readable as a plain attribute access — here a property
  alias of :attr:`now`, so ``ctx.sim._now`` works unchanged;
* it does **not** offer ``calendar_kernel()``, which routes the ARQ layer
  onto its portable scheduling path.

Timer handles (:class:`WallTimer`) carry a clock-unique ``seq`` token so
the ``timer_started``/``timer_cancelled``/``timer_fired`` probe families —
and through them the sanitizer's settlement table — work identically on
both substrates.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Callable, Optional

from repro.util.errors import SimulationError


class WallTimer:
    """A cancellable wall-clock timer (portable :class:`TimerHandle`)."""

    __slots__ = ("time", "seq", "cancelled", "fired", "_handle")

    def __init__(self, time: float, seq: int) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self.fired = False
        self._handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        """Prevent the timer from firing. Safe to call more than once."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"WallTimer(t={self.time:.6f}, seq={self.seq}, {state})"


class WallClock:
    """Wall time relative to runtime start, timers on the asyncio loop."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._origin = self._loop.time()
        self._seq = itertools.count()
        #: Timers armed over the clock's lifetime (observation only).
        self.timers_scheduled = 0

    @property
    def now(self) -> float:
        """Seconds since the runtime started."""
        return self._loop.time() - self._origin

    # The broker/forwarding/ARQ hot paths read ``ctx.sim._now`` as a bare
    # attribute; aliasing the property keeps that contract without a
    # kernel-style mutable float.
    _now = now

    def pin_epoch(self, epoch: float) -> None:
        """Re-origin the clock so ``now`` reads ``time.time() - epoch``.

        Multi-process deployments need one shared time base: every broker
        process pins its clock to the coordinator's epoch (a ``time.time()``
        stamp), so timestamps — frame publish times, delivery delays, trace
        events — are comparable across processes to within the machine's
        scheduler jitter. Must be called before any timers are armed; armed
        ``loop.call_later`` handles keep their original (relative) delays.
        """
        self._origin = self._loop.time() - (time.time() - epoch)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> WallTimer:
        """Run ``callback(*args)`` after ``delay`` seconds; returns a handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        timer = WallTimer(self.now + delay, next(self._seq))
        timer._handle = self._loop.call_later(delay, self._fire, timer, callback, args)
        self.timers_scheduled += 1
        return timer

    def schedule_fire(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if delay == 0.0:
            # Zero-delay deliveries run synchronously: the loopback frame
            # is already "on the wire" and the loop's FIFO would only add
            # jitter between causally ordered events.
            callback(*args)
            return
        self._loop.call_later(delay, callback, *args)
        self.timers_scheduled += 1

    @staticmethod
    def _fire(timer: WallTimer, callback: Callable[..., None], args: tuple) -> None:
        if timer.cancelled:  # pragma: no cover - call_later was cancelled too
            return
        timer.fired = True
        timer._handle = None
        callback(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallClock(now={self.now:.6f})"

"""The multi-process cluster coordinator.

:class:`LiveCluster` spawns one ``python -m repro.live.broker`` process
per partition, distributes the serialized scenario and peer-address map,
synchronizes the fleet on a shared epoch, polls it to quiescence, and
merges the per-partition reports back into the exact harvest shape the
single-substrate runners produce — which is what lets the three-way
conformance suite compare sim, single-process live, and multi-process
live runs with one assertion helper.

Design points:

* **Control channel** — the coordinator binds one TCP control server;
  each broker process dials in and identifies itself with a ``hello``
  naming its hosted nodes. Commands (``start``/``status``/``report``/
  ``shutdown``) and replies are newline-delimited JSON. The coordinator
  side is plain blocking sockets with timeouts — it runs no event loop.
* **Quiescence** — the fleet is settled when every partition is done
  publishing, the fleet-wide ARQ in-flight sum is zero, and the global
  (monotone) link-activity sum is unchanged across two consecutive
  sweeps. A copy awaiting retransmission is still in flight, so the
  counters cannot look flat mid-recovery.
* **Crash/straggler detection** — every poll sweep checks the child
  processes (``poll()``) and the control sockets; a dead or unresponsive
  partition raises :class:`ClusterError` naming its node ids instead of
  hanging, and the whole wait is bounded by the publish window plus the
  settle timeout.
* **Merged verification** — the coordinator re-proves fleet-wide frame
  conservation from the partitions' exported sanitizer ledgers
  (:func:`repro.sanity.check_merged_conservation`); timer settlement was
  already checked inside each process.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import sanity as _sanity
from repro.live.config import LiveConfig
from repro.live.scenarios import Scenario, scenario_to_dict
from repro.util.errors import ConfigurationError, ReproError
from repro.util.validation import require, require_in_range, require_type


class ClusterError(ReproError):
    """A broker process crashed, stalled, or misbehaved on the control channel."""


#: Seconds between the shared start epoch and the first publish — covers
#: the control round-trips so every partition pins its clock before any
#: frame is on the wire.
START_DELAY = 0.5

#: Poll interval of the quiescence sweep.
POLL_INTERVAL = 0.05

#: Consecutive flat activity sweeps required to declare quiescence.
STABLE_SWEEPS = 2


@dataclass(frozen=True)
class ClusterConfig:
    """Validated deployment plan of one multi-process cluster.

    Attributes
    ----------
    groups:
        The partition of the overlay's nodes into processes — one inner
        tuple per broker process. Every node appears exactly once.
    addresses:
        ``node -> (host, port)`` listen address of every broker's data
        server. Must cover every grouped node (a grouped node without an
        address is unreachable by its peers) and be pairwise distinct.
    control:
        ``(host, port)`` of the coordinator's control server; must not
        collide with any broker address.
    """

    groups: Tuple[Tuple[int, ...], ...]
    addresses: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    control: Tuple[str, int] = ("127.0.0.1", 0)

    def __post_init__(self) -> None:
        require(bool(self.groups), "cluster needs at least one process group")
        seen_nodes: Dict[int, int] = {}
        for index, group in enumerate(self.groups):
            require(
                bool(group), f"process group {index} hosts no nodes"
            )
            for node in group:
                require_type(node, int, "group node")
                if node in seen_nodes:
                    raise ConfigurationError(
                        f"node {node} appears in process groups "
                        f"{seen_nodes[node]} and {index}"
                    )
                seen_nodes[node] = index
        seen_addresses: Dict[Tuple[str, int], int] = {}
        for node, address in self.addresses.items():
            require_type(node, int, "addresses key")
            require(
                isinstance(address, tuple) and len(address) == 2,
                f"addresses[{node}] must be a (host, port) pair, got {address!r}",
            )
            host, port = address
            require_type(host, str, f"addresses[{node}] host")
            require(bool(host), f"addresses[{node}] host must be non-empty")
            require_type(port, int, f"addresses[{node}] port")
            require_in_range(port, 1, 65535, f"addresses[{node}] port")
            if address in seen_addresses:
                raise ConfigurationError(
                    f"address collision {host}:{port} "
                    f"(nodes {seen_addresses[address]} and {node})"
                )
            seen_addresses[address] = node
        missing = sorted(set(seen_nodes) - set(self.addresses))
        if missing:
            raise ConfigurationError(
                f"node(s) {missing} are grouped but have no listen address "
                f"(unreachable peers)"
            )
        control_host, control_port = self.control
        require_type(control_host, str, "control host")
        require(bool(control_host), "control host must be non-empty")
        require_type(control_port, int, "control port")
        if control_port != 0:
            require_in_range(control_port, 1, 65535, "control port")
            if (control_host, control_port) in seen_addresses:
                raise ConfigurationError(
                    f"control address {control_host}:{control_port} collides "
                    f"with broker node "
                    f"{seen_addresses[(control_host, control_port)]}"
                )

    @property
    def nodes(self) -> Tuple[int, ...]:
        """All grouped nodes, sorted."""
        return tuple(sorted(node for group in self.groups for node in group))

    def group_of(self, node: int) -> int:
        """Index of the process group hosting *node*."""
        for index, group in enumerate(self.groups):
            if node in group:
                return index
        raise ConfigurationError(f"node {node} is not in any process group")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (round-trips through :meth:`from_dict`)."""
        return {
            "groups": [list(group) for group in self.groups],
            "addresses": {
                str(node): [host, port]
                for node, (host, port) in sorted(self.addresses.items())
            },
            "control": list(self.control),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterConfig":
        unknown = set(data) - {"groups", "addresses", "control"}
        require(not unknown, f"unknown cluster config field(s): {sorted(unknown)}")
        return cls(
            groups=tuple(tuple(group) for group in data["groups"]),
            addresses={
                int(node): (host, port)
                for node, (host, port) in data.get("addresses", {}).items()
            },
            control=tuple(data.get("control", ("127.0.0.1", 0))),
        )


def allocate_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve *count* distinct ephemeral ports on *host*.

    Binds (and then closes) one socket per port while holding all of
    them open, so the kernel hands out distinct ports. The tiny window
    between close and the brokers' re-bind is an accepted loopback race —
    the same one every ephemeral-port test fixture lives with.
    """
    sockets: List[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def plan_cluster(
    nodes: Sequence[int], processes: int, host: str = "127.0.0.1"
) -> ClusterConfig:
    """Round-robin *nodes* over *processes* groups with fresh ports."""
    node_list = sorted(nodes)
    require(bool(node_list), "cannot plan a cluster with no nodes")
    require(processes >= 1, f"processes must be >= 1, got {processes}")
    processes = min(processes, len(node_list))
    groups: List[List[int]] = [[] for _ in range(processes)]
    for index, node in enumerate(node_list):
        groups[index % processes].append(node)
    ports = allocate_ports(len(node_list) + 1, host)
    addresses = {node: (host, ports[i]) for i, node in enumerate(node_list)}
    return ClusterConfig(
        groups=tuple(tuple(group) for group in groups),
        addresses=addresses,
        control=(host, ports[-1]),
    )


class _ControlPeer:
    """One accepted broker control connection (blocking, line-framed)."""

    def __init__(self, conn: socket.socket, nodes: Sequence[int]) -> None:
        self.conn = conn
        self.nodes = tuple(nodes)
        self.file = conn.makefile("rwb")

    def request(self, message: Dict[str, Any], timeout: float) -> Dict[str, Any]:
        self.conn.settimeout(timeout)
        self.file.write(json.dumps(message).encode("utf-8") + b"\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            raise ClusterError(
                f"broker process hosting nodes {sorted(self.nodes)} closed "
                f"its control channel"
            )
        return json.loads(line)

    def close(self) -> None:
        try:
            self.file.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


class LiveCluster:
    """Spawn, drive, and harvest one multi-process live scenario run."""

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        config: Optional[ClusterConfig] = None,
        processes: Optional[int] = None,
        sanitize: bool = True,
        trace: bool = False,
        connect_timeout: float = 10.0,
        settle_timeout: float = 10.0,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        topology_nodes = list(scenario.topology().nodes)
        if config is None:
            config = plan_cluster(
                topology_nodes,
                processes if processes is not None else len(topology_nodes),
            )
        if list(config.nodes) != sorted(topology_nodes):
            raise ConfigurationError(
                f"cluster config hosts nodes {list(config.nodes)} but the "
                f"scenario topology has {sorted(topology_nodes)}"
            )
        self.config = config
        self.sanitize = sanitize
        self.trace = trace
        self.connect_timeout = connect_timeout
        self.settle_timeout = settle_timeout
        self.publish_times = [
            START_DELAY + i * scenario.publish_interval
            for i in range(scenario.publishes)
        ]
        self._server: Optional[socket.socket] = None
        self._procs: List[subprocess.Popen] = []
        self._peers: List[Optional[_ControlPeer]] = []
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._epoch: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the fleet, collect hellos, and broadcast the start epoch."""
        config = self.config
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        tmp = Path(self._tmpdir.name)
        scenario_path = tmp / "scenario.json"
        scenario_path.write_text(
            json.dumps(scenario_to_dict(self.scenario)), encoding="utf-8"
        )
        peers_path = tmp / "peers.json"
        peers_path.write_text(
            json.dumps(
                {
                    str(node): list(address)
                    for node, address in config.addresses.items()
                }
            ),
            encoding="utf-8",
        )
        control_host, control_port = config.control
        server = socket.create_server((control_host, control_port))
        if control_port == 0:
            control_port = server.getsockname()[1]
        server.settimeout(self.connect_timeout)
        self._server = server
        repo_src = Path(__file__).resolve().parents[2]
        for group in config.groups:
            argv = [sys.executable, "-m", "repro.live.broker"]
            for node in group:
                argv += ["--node-id", str(node)]
            argv += [
                "--peers", str(peers_path),
                "--scenario", str(scenario_path),
                "--control", f"{control_host}:{control_port}",
                "--seed", str(self.seed),
                "--connect-timeout", str(self.connect_timeout),
                "--settle-timeout", str(self.settle_timeout),
            ]
            if not self.sanitize:
                argv.append("--no-sanitize")
            if self.trace:
                argv.append("--trace")
            self._procs.append(
                subprocess.Popen(
                    argv,
                    env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                )
            )
        # Hellos arrive in arbitrary order; map them back to their groups.
        peers_by_group: Dict[int, _ControlPeer] = {}
        group_index = {group: i for i, group in enumerate(config.groups)}
        deadline = time.monotonic() + self.connect_timeout
        while len(peers_by_group) < len(config.groups):
            self._check_processes()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = [
                    sorted(group)
                    for i, group in enumerate(config.groups)
                    if i not in peers_by_group
                ]
                raise ClusterError(
                    f"broker process(es) hosting nodes {missing} never "
                    f"connected to the control server"
                )
            server.settimeout(min(remaining, POLL_INTERVAL * 4))
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            conn.settimeout(self.connect_timeout)
            peer_file = conn.makefile("rwb")
            hello = json.loads(peer_file.readline())
            peer_file.close()
            if hello.get("type") != "hello":
                conn.close()
                raise ClusterError(f"expected hello, got {hello!r}")
            nodes = tuple(hello["nodes"])
            if nodes not in group_index:
                conn.close()
                raise ClusterError(f"hello from unplanned node group {nodes}")
            peers_by_group[group_index[nodes]] = _ControlPeer(conn, nodes)
        self._peers = [peers_by_group[i] for i in range(len(config.groups))]
        self._epoch = time.time()
        start = {
            "type": "start",
            "epoch": self._epoch,
            "publish_times": self.publish_times,
        }
        for peer in self._peers:
            reply = peer.request(start, self.connect_timeout)
            if reply.get("type") != "ok":
                raise ClusterError(
                    f"nodes {sorted(peer.nodes)} rejected start: {reply!r}"
                )

    # ------------------------------------------------------------------
    def _check_processes(self) -> None:
        for proc, group in zip(self._procs, self.config.groups):
            code = proc.poll()
            if code is not None:
                stderr = b""
                if proc.stderr is not None:
                    stderr = proc.stderr.read() or b""
                raise ClusterError(
                    f"broker process hosting nodes {sorted(group)} exited "
                    f"with code {code}: {stderr.decode('utf-8', 'replace').strip()}"
                )

    def _statuses(self) -> List[Dict[str, Any]]:
        statuses = []
        for peer in self._peers:
            assert peer is not None
            try:
                reply = peer.request({"type": "status"}, self.connect_timeout)
            except (OSError, ClusterError) as exc:
                # Distinguish a crashed process (named node ids, exit
                # code) from a transient socket issue. A killed child's
                # connection resets a beat before the process is
                # reapable, so give poll() a short grace window.
                grace = time.monotonic() + 1.0
                while time.monotonic() < grace:
                    self._check_processes()
                    time.sleep(0.02)
                raise ClusterError(
                    f"nodes {sorted(peer.nodes)} stopped answering the "
                    f"control channel: {exc}"
                )
            if reply.get("type") != "status":
                raise ClusterError(
                    f"nodes {sorted(peer.nodes)} sent {reply!r} to a status poll"
                )
            statuses.append(reply)
        return statuses

    def wait_settled(self) -> None:
        """Block until the fleet is quiescent; raise on crash or straggle."""
        assert self._epoch is not None, "start() must run first"
        publish_window = self.publish_times[-1] if self.publish_times else 0.0
        deadline = self._epoch + publish_window + self.settle_timeout
        last_activity = -1
        stable = 0
        while time.time() < deadline:
            self._check_processes()
            statuses = self._statuses()
            done = all(status["done_publishing"] for status in statuses)
            in_flight = sum(
                status["in_flight"] + status.get("held", 0)
                for status in statuses
            )
            activity = sum(status["activity"] for status in statuses)
            if done and in_flight == 0 and activity == last_activity:
                stable += 1
                if stable >= STABLE_SWEEPS:
                    return
            else:
                stable = 0
            last_activity = activity
            time.sleep(POLL_INTERVAL)
        statuses = self._statuses()
        stragglers = sorted(
            node
            for status in statuses
            if status["in_flight"] > 0 or not status["done_publishing"]
            for node in status["nodes"]
        )
        raise ClusterError(
            f"cluster failed to settle within {self.settle_timeout}s past "
            f"the publish window (straggling nodes: {stragglers or 'none'}, "
            f"fleet still active)"
        )

    # ------------------------------------------------------------------
    def harvest(self) -> Dict[str, Any]:
        """Collect and merge the per-partition reports (harvest-shaped)."""
        reports = []
        for peer in self._peers:
            assert peer is not None
            reply = peer.request(
                {"type": "report", "trace": self.trace}, self.connect_timeout
            )
            if reply.get("type") == "error":
                raise ClusterError(
                    f"nodes {sorted(peer.nodes)} failed their end-of-run "
                    f"checks:\n{reply.get('error')}"
                )
            if reply.get("type") != "report":
                raise ClusterError(
                    f"nodes {sorted(peer.nodes)} sent {reply!r} to a report "
                    f"request"
                )
            reports.append(reply)
        return merge_reports(self.scenario, reports, sanitize=self.sanitize)

    # ------------------------------------------------------------------
    def kill_node(self, node: int) -> None:
        """Kill the broker process hosting *node* (crash-tolerance tests)."""
        group = self.config.group_of(node)
        self._procs[group].kill()

    def shutdown(self) -> None:
        """Tear down the fleet: polite shutdowns, then hard kills."""
        for peer in self._peers:
            if peer is None:
                continue
            try:
                peer.request({"type": "shutdown"}, 2.0)
            except Exception:
                pass
            peer.close()
        self._peers = []
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
            for stream in (proc.stdout, proc.stderr):
                if stream is not None:
                    stream.close()
        self._procs = []
        if self._server is not None:
            self._server.close()
            self._server = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


def merge_reports(
    scenario: Scenario,
    reports: Sequence[Dict[str, Any]],
    sanitize: bool = True,
) -> Dict[str, Any]:
    """Fuse per-partition reports into the single-substrate harvest shape.

    Pair sets merge by union (each pair settles in exactly one
    partition — its subscriber's), counters by sum. When sanitizing, the
    fleet-wide frame-conservation argument is re-proved here from the
    exported per-partition ledgers; a pair that vanished across the
    process boundary raises :class:`repro.sanity.InvariantViolation`
    exactly as it would in-process.
    """
    delivered = frozenset(
        (msg, sub) for report in reports for msg, sub in report["delivered"]
    )
    gave_up = (
        frozenset((msg, sub) for report in reports for msg, sub in report["gave_up"])
        - delivered
    )
    deliveries = tuple(
        sorted((msg, node) for report in reports for msg, node in report["deliveries"])
    )
    delays = tuple(
        sorted(
            (msg, sub, delay)
            for report in reports
            for msg, sub, delay in report["delays"]
        )
    )
    subscribers = [node for node, _ in scenario.subscribers]
    expected_pairs = {
        (msg, sub)
        for msg in range(1, scenario.publishes + 1)
        for sub in subscribers
    }
    result: Dict[str, Any] = {
        "scenario": scenario.name,
        "published": sum(report["published"] for report in reports),
        "expected": len(expected_pairs),
        "delivered": delivered,
        "gave_up": gave_up,
        "duplicates": sum(report["duplicates"] for report in reports),
        "max_accepts_per_transfer": max(
            report["accepts_max"] for report in reports
        ),
        "deliveries": deliveries,
        "delays": delays,
        "retransmissions": sum(report["retransmissions"] for report in reports),
        "abandoned": sum(report["abandoned"] for report in reports),
        "in_flight": sum(report["in_flight"] for report in reports),
        "nodes": sorted(node for report in reports for node in report["nodes"]),
        # Per-node arrival order survives the merge untouched: each node's
        # deliveries all happen in its own partition, so concatenation
        # (then per-node filtering by the consumer) is order-preserving.
        "delivery_order": tuple(
            (msg, node)
            for report in reports
            for msg, node in report.get("delivery_order", ())
        ),
    }
    if sanitize:
        result["timers_started"] = sum(r["timers_started"] for r in reports)
        result["timers_settled"] = sum(r["timers_settled"] for r in reports)
        result["violations"] = sum(r["violations"] for r in reports)
        result["conservation"] = _sanity.check_merged_conservation(
            [report["sanitizer"] for report in reports],
            expected_pairs,
            delivered,
            gave_up,
        )
        if scenario.ordering is not None:
            # Fleet-wide total-order agreement: partitions only see their
            # own subscribers' ready-release prefixes, so the pairwise
            # identical-prefix invariant is re-proved over the merge.
            _sanity.check_merged_order_prefixes(
                [report["sanitizer"] for report in reports]
            )
    if any("trace" in report for report in reports):
        result["trace"] = sorted(
            (tuple(row) for report in reports for row in report.get("trace", ())),
        )
    return result


def run_cluster_scenario(
    scenario: Scenario,
    seed: int = 0,
    sanitize: bool = True,
    processes: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
    trace: bool = False,
    settle_timeout: float = 10.0,
) -> Dict[str, Any]:
    """Execute *scenario* on the multi-process substrate, end to end."""
    cluster = LiveCluster(
        scenario,
        seed=seed,
        config=config,
        processes=processes,
        sanitize=sanitize,
        trace=trace,
        settle_timeout=settle_timeout,
    )
    try:
        cluster.start()
        cluster.wait_settled()
        return cluster.harvest()
    finally:
        cluster.shutdown()

"""Length-prefixed wire codec for the live transport.

One wire message is a 4-byte big-endian length prefix followed by a JSON
envelope: ``{"s": <sender>, "k": "d"|"a", ...frame fields}``. JSON keeps
the frames inspectable on the wire (``tcpdump``-friendly) and the encoder
is canonical — sorted keys, no whitespace, sorted destination sets — so a
frame encodes to the same bytes on every run, which the golden live trace
and the shim's byte-transparency test rely on.

The decoder is strict: frames above the configured size bound, truncated
streams, or envelopes that do not round-trip into a
:class:`~repro.pubsub.messages.PacketFrame`/:class:`AckFrame` raise
:class:`CodecError` instead of silently desynchronising the stream.
``float('inf')`` priorities survive the trip via JSON's Python-dialect
``Infinity`` literal.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Tuple

from repro.ordering.tags import OrderTag
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.util.errors import SimulationError
from repro.util.validation import require_positive

#: struct layout of the frame length prefix (4-byte big-endian unsigned).
LENGTH_PREFIX = struct.Struct(">I")


class CodecError(SimulationError):
    """A wire message could not be encoded or decoded."""


class FrameCodec:
    """Encode/decode broker frames to length-prefixed JSON messages."""

    def __init__(self, max_frame_bytes: int = 1 << 20) -> None:
        require_positive(max_frame_bytes, "max_frame_bytes")
        self.max_frame_bytes = max_frame_bytes

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_payload(self, sender: int, frame: Any) -> bytes:
        """The JSON envelope of *frame* as sent by *sender* (no prefix)."""
        if frame.__class__ is AckFrame or isinstance(frame, AckFrame):
            envelope = {
                "s": sender,
                "k": "a",
                "m": frame.msg_id,
                "n": frame.acker,
                "t": frame.transfer_id,
            }
        elif frame.__class__ is PacketFrame or isinstance(frame, PacketFrame):
            envelope = {
                "s": sender,
                "k": "d",
                "m": frame.msg_id,
                "t": frame.transfer_id,
                "tp": frame.topic,
                "o": frame.origin,
                "pt": frame.publish_time,
                "d": sorted(frame.destinations),
                "rp": list(frame.routing_path),
                "sr": list(frame.source_route),
                "fi": frame.fragment_index,
                "fn": frame.fragments_needed,
                "sz": frame.size,
                "pr": frame.priority,
            }
            # Omitted entirely when absent, so ordering-off runs stay
            # byte-identical to the pinned golden wire traces.
            tag = frame.order_tag
            if tag is not None:
                envelope["ot"] = tag.to_wire()
        else:
            raise CodecError(f"cannot encode frame of type {type(frame).__name__}")
        payload = json.dumps(
            envelope, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        if len(payload) > self.max_frame_bytes:
            raise CodecError(
                f"encoded frame is {len(payload)} bytes, exceeds the "
                f"{self.max_frame_bytes}-byte limit"
            )
        return payload

    def frame_message(self, payload: bytes) -> bytes:
        """Prepend the length prefix to an encoded *payload*."""
        return LENGTH_PREFIX.pack(len(payload)) + payload

    def encode(self, sender: int, frame: Any) -> bytes:
        """One complete wire message (prefix + envelope) for *frame*."""
        return self.frame_message(self.encode_payload(sender, frame))

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_payload(self, payload: bytes) -> Tuple[int, Any]:
        """Parse one envelope back into ``(sender, frame)``."""
        if len(payload) > self.max_frame_bytes:
            raise CodecError(
                f"received frame is {len(payload)} bytes, exceeds the "
                f"{self.max_frame_bytes}-byte limit"
            )
        try:
            envelope = json.loads(payload.decode("utf-8"))
            sender = envelope["s"]
            kind = envelope["k"]
            if kind == "a":
                frame: Any = AckFrame(envelope["m"], envelope["n"], envelope["t"])
            elif kind == "d":
                frame = PacketFrame(
                    msg_id=envelope["m"],
                    transfer_id=envelope["t"],
                    topic=envelope["tp"],
                    origin=envelope["o"],
                    publish_time=envelope["pt"],
                    destinations=frozenset(envelope["d"]),
                    routing_path=tuple(envelope["rp"]),
                    source_route=tuple(envelope["sr"]),
                    fragment_index=envelope["fi"],
                    fragments_needed=envelope["fn"],
                    size=envelope["sz"],
                    priority=envelope["pr"],
                    order_tag=(
                        OrderTag.from_wire(envelope["ot"])
                        if "ot" in envelope
                        else None
                    ),
                )
            else:
                raise CodecError(f"unknown frame kind {kind!r}")
            if not isinstance(sender, int):
                raise CodecError(f"sender must be an int, got {sender!r}")
        except CodecError:
            raise
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            raise CodecError(f"malformed wire frame: {exc}") from exc
        return sender, frame

    def split_prefix(self, header: bytes) -> int:
        """Parse a length prefix, enforcing the frame size bound."""
        (length,) = LENGTH_PREFIX.unpack(header)
        if length > self.max_frame_bytes:
            raise CodecError(
                f"length prefix announces {length} bytes, exceeds the "
                f"{self.max_frame_bytes}-byte limit"
            )
        return length

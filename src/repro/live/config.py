"""Validated configuration for the live (asyncio TCP) runtime.

Construction-time validation follows the repo-wide convention
(:mod:`repro.util.validation`): reject nonsensical values with a
:class:`~repro.util.errors.ConfigurationError` naming the offending field,
instead of failing obscurely mid-run — a negative socket timeout, a
zero-length frame limit, or two brokers bound to the same address are
configuration bugs, not runtime conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.util.errors import ConfigurationError
from repro.util.validation import (
    require,
    require_in_range,
    require_positive,
    require_type,
)


@dataclass(frozen=True)
class LiveConfig:
    """Knobs of one live deployment.

    Attributes
    ----------
    host:
        Interface the per-broker servers bind to (loopback by default;
        the conformance suite and CI smoke run entirely on it).
    peers:
        Optional explicit listen addresses, ``node -> (host, port)``.
        Empty (the default) lets every broker bind an ephemeral port —
        the right choice for single-process loopback runs. Explicit
        addresses must be pairwise distinct.
    connect_timeout:
        Seconds a dialing broker waits for a peer's server socket.
    settle_timeout:
        Seconds the runtime waits, after the scripted scenario ends, for
        the ARQ layer to drain (every copy ACKed or failed) before
        declaring the run wedged.
    settle_poll:
        Polling interval of the drain wait.
    max_frame_bytes:
        Upper bound on one encoded frame; oversized frames are rejected
        at both ends (a malformed length prefix must never cause an
        unbounded read).
    impose_link_delays:
        When true (default), each frame's write is delayed by the
        topology's propagation delay for its link — the live runtime's
        latency-emulation knob, which keeps live timings comparable to
        the simulated world. False sends every frame immediately
        (loopback latency only).
    """

    host: str = "127.0.0.1"
    peers: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    connect_timeout: float = 5.0
    settle_timeout: float = 5.0
    settle_poll: float = 0.02
    max_frame_bytes: int = 1 << 20
    impose_link_delays: bool = True

    def __post_init__(self) -> None:
        require_type(self.host, str, "host")
        require(bool(self.host), "host must be a non-empty string")
        require_positive(self.connect_timeout, "connect_timeout")
        require_positive(self.settle_timeout, "settle_timeout")
        require_positive(self.settle_poll, "settle_poll")
        require_type(self.max_frame_bytes, int, "max_frame_bytes")
        require_positive(self.max_frame_bytes, "max_frame_bytes")
        seen: Dict[Tuple[str, int], int] = {}
        for node, address in self.peers.items():
            require_type(node, int, "peers key")
            require(
                isinstance(address, tuple) and len(address) == 2,
                f"peers[{node}] must be a (host, port) pair, got {address!r}",
            )
            peer_host, peer_port = address
            require_type(peer_host, str, f"peers[{node}] host")
            require(bool(peer_host), f"peers[{node}] host must be non-empty")
            require_type(peer_port, int, f"peers[{node}] port")
            require_in_range(peer_port, 1, 65535, f"peers[{node}] port")
            if address in seen:
                raise ConfigurationError(
                    f"duplicate peer address {peer_host}:{peer_port} "
                    f"(nodes {seen[address]} and {node})"
                )
            seen[address] = node

    def address_of(self, node: int) -> Optional[Tuple[str, int]]:
        """The explicit listen address of *node*, if one was configured."""
        return self.peers.get(node)

"""Seeded deterministic fault injection at the transport seam.

The shim sits between the protocol stack and the socket writes: every
outbound wire payload is turned into a *plan* — a sequence of
``(extra_delay, payload)`` actions. A frame can pass through untouched,
be dropped, duplicated, delayed, or held back and released after the next
frame on its direction (adjacent reorder). Two rule layers compose:

* **Scripted rules** (:class:`DropRule`) — deterministic per-direction
  per-kind drops with no randomness at all: ``drop all DATA on 1->3``,
  ``drop the first 2 ACKs on 2->0``. These are the rules the differential
  conformance suite uses, because their effect on the delivered-pair set
  is timing-independent — and :func:`link_filter` adapts the same rules
  onto :meth:`~repro.overlay.links.OverlayNetwork.install_fault_filter`,
  so sim and live runs face byte-for-byte the same adversary.
* **Seeded randomness** — drop/duplicate/reorder/delay probabilities
  drawn from a private ``random.Random(seed)``. Draws are consumed in a
  fixed per-frame order regardless of outcomes, so the whole fault
  schedule is a pure function of the seed and the frame sequence.

A shim constructed with no rules and all probabilities zero is
byte-transparent: the plan is ``[(0.0, payload)]`` with the *identical*
payload object, and the RNG is never touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.util.validation import (
    require,
    require_non_negative,
    require_probability,
)

#: Frame-kind labels the shim matches on (`None` in a rule = both).
DATA = "data"
ACK = "ack"


@dataclass
class DropRule:
    """Drop frames matching a direction/kind pattern, deterministically.

    ``src``/``dst``/``kind`` are match patterns (``None`` = wildcard);
    ``count`` bounds how many matching frames are dropped (``None`` =
    all). Rules are stateful — construct a fresh instance per run.
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    kind: Optional[str] = None
    count: Optional[int] = None
    dropped: int = 0

    def __post_init__(self) -> None:
        require(
            self.kind in (None, DATA, ACK),
            f"DropRule kind must be None, {DATA!r} or {ACK!r}, got {self.kind!r}",
        )
        if self.count is not None:
            require(self.count >= 1, f"DropRule count must be >= 1, got {self.count}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe spec of this rule (the drop budget state is excluded).

        Serialization exists so a scripted scenario's adversary can travel
        with its config — every broker process of a multi-process cluster
        rebuilds the identical rules from the same serialized form, and
        the sim side adapts the same dicts through :func:`link_filter`.
        """
        return {"src": self.src, "dst": self.dst, "kind": self.kind, "count": self.count}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DropRule":
        """Rebuild a fresh (zero-state) rule from :meth:`to_dict` output."""
        unknown = set(data) - {"src", "dst", "kind", "count"}
        require(not unknown, f"unknown DropRule field(s): {sorted(unknown)}")
        return cls(
            src=data.get("src"),
            dst=data.get("dst"),
            kind=data.get("kind"),
            count=data.get("count"),
        )

    def matches(self, src: int, dst: int, kind: str) -> bool:
        """Whether this rule wants to drop a (src, dst, kind) frame now."""
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.kind is not None and kind != self.kind:
            return False
        return self.count is None or self.dropped < self.count

    def consume(self) -> None:
        """Record one drop against the rule's budget."""
        self.dropped += 1


def dead_link_rules(u: int, v: int) -> Tuple[DropRule, DropRule]:
    """Rules dropping every frame (both kinds, both directions) on ``u—v``."""
    return (DropRule(src=u, dst=v), DropRule(src=v, dst=u))


def ack_loss_rules(src: int, dst: int) -> Tuple[DropRule]:
    """Rules dropping every ACK sent on the ``src -> dst`` direction."""
    return (DropRule(src=src, dst=dst, kind=ACK),)


#: One planned emission: (extra delay in seconds, wire payload).
Action = Tuple[float, Any]


class FaultInjector:
    """Plan per-frame transport faults, deterministically per seed."""

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay: float = 0.0,
        delay_jitter: float = 0.0,
        rules: Sequence[DropRule] = (),
    ) -> None:
        require_probability(drop, "drop")
        require_probability(duplicate, "duplicate")
        require_probability(reorder, "reorder")
        require_non_negative(delay, "delay")
        require_non_negative(delay_jitter, "delay_jitter")
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.delay = delay
        self.delay_jitter = delay_jitter
        self.rules: Tuple[DropRule, ...] = tuple(rules)
        self._rng = random.Random(seed)
        self._random = drop > 0.0 or duplicate > 0.0 or reorder > 0.0 or delay > 0.0
        # Per-direction held-back payload for the adjacent-reorder action.
        self._held: Dict[Tuple[int, int], Any] = {}
        self.frames_seen = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.delayed = 0

    @property
    def transparent(self) -> bool:
        """Whether the shim can never alter a frame."""
        return not self._random and not self.rules

    def plan(self, src: int, dst: int, kind: str, payload: Any) -> List[Action]:
        """The emission plan for one outbound frame.

        Returns a list of ``(extra_delay, payload)`` actions, possibly
        empty (dropped or held for reorder). The transparent shim returns
        the identical payload with zero delay and consumes no randomness.
        """
        self.frames_seen += 1
        for rule in self.rules:
            if rule.matches(src, dst, kind):
                rule.consume()
                self.dropped += 1
                return []
        if not self._random:
            return [(0.0, payload)]
        # Fixed draw order per frame — the fault schedule depends only on
        # the seed and the frame sequence, never on prior outcomes.
        rng = self._rng
        drop_draw = rng.random() if self.drop > 0.0 else 1.0
        dup_draw = rng.random() if self.duplicate > 0.0 else 1.0
        reorder_draw = rng.random() if self.reorder > 0.0 else 1.0
        extra = 0.0
        if self.delay > 0.0:
            extra = self.delay + (
                self.delay_jitter * rng.random() if self.delay_jitter > 0.0 else 0.0
            )
        if drop_draw < self.drop:
            self.dropped += 1
            return []
        if extra > 0.0:
            self.delayed += 1
        actions: List[Action] = [(extra, payload)]
        if dup_draw < self.duplicate:
            self.duplicated += 1
            actions.append((extra, payload))
        direction = (src, dst)
        held = self._held.pop(direction, None)
        if held is not None:
            # Release the held frame *after* this one: adjacent swap.
            self.reordered += 1
            actions.append((extra, held))
            return actions
        if reorder_draw < self.reorder and len(actions) == 1:
            self._held[direction] = payload
            return []
        return actions

    def flush(self, direction: Optional[Tuple[int, int]] = None) -> List[Action]:
        """Release held-back frames (end of run / connection close)."""
        if direction is not None:
            held = self._held.pop(direction, None)
            return [(0.0, held)] if held is not None else []
        actions = [(0.0, payload) for payload in self._held.values()]
        self._held.clear()
        return actions


def kind_label(kind: Any) -> str:
    """Map an :class:`~repro.overlay.links.FrameKind` to the shim's label."""
    name = getattr(kind, "value", kind)
    return ACK if name == "ack" else DATA


def link_filter(
    rules: Sequence[DropRule],
) -> Callable[[int, int, Any, Any], bool]:
    """Adapt scripted *rules* onto ``OverlayNetwork.install_fault_filter``.

    The returned callable implements the sim side of a differential
    scenario: same rule objects' semantics, same drop decisions, applied
    at the simulated transport seam instead of the socket seam.
    """
    rule_list = tuple(rules)

    def fault_filter(src: int, dst: int, kind: Any, frame: Any) -> bool:
        label = kind_label(kind)
        for rule in rule_list:
            if rule.matches(src, dst, label):
                rule.consume()
                return True
        return False

    return fault_filter

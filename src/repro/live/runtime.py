"""The live composition root: one scenario over asyncio TCP.

:func:`run_live_scenario` is the wall-clock twin of
:func:`repro.live.scenarios.run_sim_scenario`. It assembles the identical
protocol stack — :class:`DcrdStrategy` + :class:`ArqSender` +
:class:`BrokerRuntime` + analytic :class:`LinkMonitor` — over
:class:`~repro.live.clock.WallClock` and
:class:`~repro.live.transport.LiveTransport` instead of the
discrete-event kernel and :class:`OverlayNetwork`, publishes the same
scripted workload, waits for the ARQ layer to drain, and reduces the run
with the same :func:`~repro.live.scenarios.harvest`. The sanitizer and
the accept ledger observe through the probe bus exactly as in the sim
run, install order included.

A run that does not drain within the configured settle timeout raises
:class:`~repro.util.errors.SimulationError` — a live run with copies
still in flight is wedged, not slow.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro import probes as _probes
from repro import sanity as _sanity
from repro import trace as _trace
from repro.core.forwarding import DcrdStrategy
from repro.live.clock import WallClock
from repro.live.config import LiveConfig
from repro.live.faults import FaultInjector
from repro.live.scenarios import AcceptLedger, Scenario, harvest
from repro.live.transport import LiveTransport
from repro.metrics.collector import MetricsCollector
from repro.ordering.plan import OrderingPlan, plan_from_scenario
from repro.overlay.monitor import LinkMonitor
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.messages import next_message_id, reset_message_ids
from repro.routing.base import RuntimeContext
from repro.sim.random import RandomStreams
from repro.util.errors import SimulationError

#: Consecutive idle polls required before the run counts as settled (the
#: ARQ in-flight count passes through zero between an arrival and the
#: handler's next dispatch only within one callback, but a stability
#: window keeps the check robust against future asynchrony).
_SETTLE_STABLE_POLLS = 3


async def _run(
    scenario: Scenario,
    seed: int,
    sanitize: bool,
    config: LiveConfig,
    tracer: Optional[_trace.FrameTracer] = None,
) -> Dict[str, Any]:
    reset_message_ids()
    loop = asyncio.get_running_loop()
    clock = WallClock(loop)
    topology = scenario.topology()
    rules = scenario.rules()
    fault = FaultInjector(seed=seed, rules=rules) if rules else None
    transport = LiveTransport(topology, clock, config, fault)
    await transport.start()
    streams = RandomStreams(seed)
    monitor = LinkMonitor(topology, transport, streams, mode="analytic")
    plan = plan_from_scenario(scenario.ordering)
    ctx = RuntimeContext(
        sim=clock,
        topology=topology,
        network=transport,
        monitor=monitor,
        workload=scenario.workload(),
        metrics=MetricsCollector(),
        streams=streams,
        params=scenario.params(),
        ordering=plan,
    )
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    brokers = [BrokerRuntime(node, ctx, strategy) for node in topology.nodes]
    assert brokers  # attach side effects; the list itself is not used
    sanitizer = _sanity.Sanitizer() if sanitize else None
    ledger = AcceptLedger()
    spec = ctx.workload.topic(scenario.topic)
    deadlines = {sub.node: sub.deadline for sub in spec.subscriptions}
    # Same install order as the sim runner (sanitizer before tracer):
    # shared probe sites observe in a fixed callback order on both
    # substrates.
    _sanity.install(sanitizer)
    _trace.install(tracer)
    _probes.attach(ledger)
    try:
        try:
            try:
                if plan is not None:
                    plan.activate()
                for _ in range(scenario.publishes):
                    msg_id = next_message_id()
                    ctx.metrics.expect(msg_id, scenario.topic, clock.now, deadlines)
                    strategy.publish(spec, msg_id)
                    await asyncio.sleep(scenario.publish_interval)
                await _settle(strategy, clock, config, plan)
                # Release any frames still held back (end-of-run "flush")
                # while the sanitizer is attached, mirroring the sim run.
                if plan is not None:
                    plan.flush()
            finally:
                if plan is not None:
                    plan.deactivate()
                _sanity.uninstall()
            if sanitizer is not None:
                sanitizer.finish(ctx.metrics, clock.now)
        finally:
            _trace.uninstall()
            _probes.detach(ledger)
    finally:
        await transport.close()
    return harvest(scenario, ctx, strategy, ledger, sanitizer)


async def _settle(
    strategy: DcrdStrategy,
    clock: WallClock,
    config: LiveConfig,
    plan: Optional[OrderingPlan] = None,
) -> None:
    """Wait until every ARQ copy is settled (ACKed or abandoned).

    With an ordering plan attached, quiescence also requires the
    hold-back pipelines to be empty — a frame parked behind a gap still
    has a stall timer pending, so the run has not finished delivering.
    """
    deadline = clock.now + config.settle_timeout
    stable = 0
    while clock.now < deadline:
        held = plan.held_count() if plan is not None else 0
        if strategy.arq.in_flight == 0 and held == 0:
            stable += 1
            if stable >= _SETTLE_STABLE_POLLS:
                return
        else:
            stable = 0
        await asyncio.sleep(config.settle_poll)
    held = plan.held_count() if plan is not None else 0
    raise SimulationError(
        f"live run failed to settle within {config.settle_timeout}s "
        f"({strategy.arq.in_flight} ARQ copies still in flight, "
        f"{held} frames held back)"
    )


def run_live_scenario(
    scenario: Scenario,
    seed: int = 0,
    sanitize: bool = True,
    config: Optional[LiveConfig] = None,
    tracer: Optional[_trace.FrameTracer] = None,
) -> Dict[str, Any]:
    """Execute *scenario* on the asyncio TCP substrate (blocking wrapper)."""
    if config is None:
        config = LiveConfig()
    return asyncio.run(_run(scenario, seed, sanitize, config, tracer))

"""Scripted differential scenarios, shared by the sim and live substrates.

A :class:`Scenario` is a complete adversarial world — topology, workload,
protocol parameters, and a *fault script* — defined once and executed on
both substrates: :func:`run_sim_scenario` builds the discrete-event stack
(faults via ``OverlayNetwork.install_fault_filter``) and
:func:`repro.live.runtime.run_live_scenario` builds the asyncio TCP stack
(the same rules inside a :class:`~repro.live.faults.FaultInjector`). The
conformance suite asserts the two executions agree.

Scenario fault scripts are deliberately restricted to *whole-run,
per-direction, per-kind drop-all rules* (dead links, dead ACK
directions). Those make the delivered-pair set a timing-independent
function of the world: which copies die never depends on when a frame
crosses the seam, so wall-clock jitter cannot change what the live run
delivers. Probabilistic shim modes (drop/duplicate/reorder/delay) are
exercised by the shim's own test matrix instead.

Timing margins: scenarios run with ``ack_timeout_factor=3.0`` and a
250 ms slack so a loopback RTT (imposed link delays ≈ 2·alpha plus
scheduler noise) can never spuriously overrun an ACK timer — spurious
retransmits would not change the delivered set, but they would make
counter comparisons noisy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import probes as _probes
from repro import sanity as _sanity
from repro.core.forwarding import DcrdStrategy
from repro.live.faults import DropRule, ack_loss_rules, dead_link_rules, link_filter
from repro.metrics.collector import MetricsCollector
from repro.ordering.plan import plan_from_scenario
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.overlay.topology import Topology, canonical_edge
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.messages import next_message_id, reset_message_ids
from repro.pubsub.topics import Subscription, TopicSpec, Workload
from repro.routing.base import ProtocolParams, RuntimeContext
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError

import networkx as nx

#: Scenario kinds the conformance suite iterates over.
SCENARIO_KINDS = ("clean", "link_loss", "ack_loss", "failover_bounce")


@dataclass
class Scenario:
    """One scripted differential world (see module docstring)."""

    name: str
    edges: Sequence[Tuple[int, int, float]]
    publisher: int
    subscribers: Sequence[Tuple[int, float]]
    rules: Callable[[], Tuple[DropRule, ...]] = lambda: ()
    topic: int = 0
    publishes: int = 3
    publish_interval: float = 0.06
    m: int = 2
    ack_timeout_factor: float = 3.0
    ack_timeout_slack: float = 0.25
    end_time: float = 20.0
    # Opt-in delivery-ordering guarantee ("LEVEL[:topic,...]"), threaded
    # identically through both substrates via plan_from_scenario (which
    # widens the stall/hold windows past worst-case retransmit recovery
    # so timing jitter cannot change what a hold-back releases).
    ordering: Optional[str] = None

    def topology(self) -> Topology:
        graph = nx.Graph()
        delays = {}
        for u, v, delay in self.edges:
            graph.add_edge(u, v)
            delays[canonical_edge(u, v)] = delay
        graph.add_nodes_from(range(max(graph.nodes) + 1))
        return Topology(graph, delays, name=self.name)

    def workload(self) -> Workload:
        spec = TopicSpec(
            topic=self.topic,
            publisher=self.publisher,
            subscriptions=tuple(
                Subscription(node=node, deadline=deadline)
                for node, deadline in self.subscribers
            ),
            publish_interval=self.publish_interval,
            phase=0.0,
        )
        return Workload(topics=[spec])

    def params(self) -> ProtocolParams:
        return ProtocolParams(
            m=self.m,
            ack_timeout_factor=self.ack_timeout_factor,
            ack_timeout_slack=self.ack_timeout_slack,
        )


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """JSON-safe form of *scenario*, fault rules included.

    The rules callable is evaluated once and serialized as
    :meth:`~repro.live.faults.DropRule.to_dict` specs, so the identical
    adversary travels with the config: every broker process of a cluster
    (and the sim runner, through :func:`~repro.live.faults.link_filter`)
    rebuilds the same fresh rules from the same dicts.
    """
    return {
        "name": scenario.name,
        "edges": [[u, v, delay] for u, v, delay in scenario.edges],
        "publisher": scenario.publisher,
        "subscribers": [[node, deadline] for node, deadline in scenario.subscribers],
        "rules": [rule.to_dict() for rule in scenario.rules()],
        "topic": scenario.topic,
        "publishes": scenario.publishes,
        "publish_interval": scenario.publish_interval,
        "m": scenario.m,
        "ack_timeout_factor": scenario.ack_timeout_factor,
        "ack_timeout_slack": scenario.ack_timeout_slack,
        "end_time": scenario.end_time,
        "ordering": scenario.ordering,
    }


def scenario_from_dict(data: Dict[str, Any]) -> Scenario:
    """Rebuild a :class:`Scenario` from :func:`scenario_to_dict` output.

    The deserialized ``rules`` callable returns *fresh* (zero-state)
    :class:`DropRule` instances on every call, matching the construction
    convention of the scripted scenarios.
    """
    known = {
        "name",
        "edges",
        "publisher",
        "subscribers",
        "rules",
        "topic",
        "publishes",
        "publish_interval",
        "m",
        "ack_timeout_factor",
        "ack_timeout_slack",
        "end_time",
        "ordering",
    }
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(f"unknown scenario field(s): {sorted(unknown)}")
    rule_specs = tuple(dict(spec) for spec in data.get("rules", ()))
    for spec in rule_specs:
        DropRule.from_dict(spec)  # validate eagerly, not at first rules() call
    return Scenario(
        name=data["name"],
        edges=tuple((u, v, delay) for u, v, delay in data["edges"]),
        publisher=data["publisher"],
        subscribers=tuple((node, deadline) for node, deadline in data["subscribers"]),
        rules=lambda: tuple(DropRule.from_dict(spec) for spec in rule_specs),
        topic=data.get("topic", 0),
        publishes=data.get("publishes", 3),
        publish_interval=data.get("publish_interval", 0.06),
        m=data.get("m", 2),
        ack_timeout_factor=data.get("ack_timeout_factor", 3.0),
        ack_timeout_slack=data.get("ack_timeout_slack", 0.25),
        end_time=data.get("end_time", 20.0),
        ordering=data.get("ordering"),
    )


#: The 6-node ring + chords world of the clean/link-loss/ACK-loss kinds.
#: The (0, 3) chord is the shortest 0 -> 3 route, so killing it (or its
#: ACK direction) forces retransmission, failover and re-dispatch while
#: the ring keeps every pair reachable.
_RING_EDGES = (
    (0, 1, 0.02),
    (1, 2, 0.02),
    (2, 3, 0.02),
    (3, 4, 0.02),
    (4, 5, 0.02),
    (5, 0, 0.02),
    (0, 3, 0.025),
    (1, 4, 0.025),
)
_RING_SUBSCRIBERS = ((2, 5.0), (3, 5.0), (4, 5.0))

#: The PR-4 diamond: 0-1-3 is the fast path, 0-2-3 the failover path.
_DIAMOND_EDGES = ((0, 1, 0.02), (1, 3, 0.02), (0, 2, 0.04), (2, 3, 0.04))


def make_scenario(kind: str, seed: int = 0) -> Scenario:
    """The scripted world of *kind* (see :data:`SCENARIO_KINDS`)."""
    if kind == "clean":
        return Scenario(
            name="clean",
            edges=_RING_EDGES,
            publisher=0,
            subscribers=_RING_SUBSCRIBERS,
        )
    if kind == "link_loss":
        # The 0-3 chord silently eats every frame: DATA copies die on the
        # wire, the m-budget drains, and DCRD fails over onto the ring.
        return Scenario(
            name="link_loss",
            edges=_RING_EDGES,
            publisher=0,
            subscribers=_RING_SUBSCRIBERS,
            rules=lambda: dead_link_rules(0, 3),
        )
    if kind == "ack_loss":
        # Data crosses the chord fine; the 3 -> 0 ACKs never come back.
        # Every chord copy is delivered yet unacknowledged, so the sender
        # retransmits, abandons, and re-dispatches over the ring — the
        # receiver's dedup keeps delivery at-most-once throughout.
        return Scenario(
            name="ack_loss",
            edges=_RING_EDGES,
            publisher=0,
            subscribers=_RING_SUBSCRIBERS,
            rules=lambda: ack_loss_rules(3, 0),
        )
    if kind == "failover_bounce":
        # The golden diamond: the 1 -> 3 fast path is dead, broker 1 has
        # no sideways alternative, so the copy bounces upstream (§III-D)
        # and node 0 re-dispatches through 2.
        return Scenario(
            name="failover_bounce",
            edges=_DIAMOND_EDGES,
            publisher=0,
            subscribers=((3, 5.0),),
            rules=lambda: dead_link_rules(1, 3),
        )
    raise ConfigurationError(
        f"unknown scenario kind {kind!r}; expected one of {SCENARIO_KINDS}"
    )


# ---------------------------------------------------------------------------
# Shared accounting
# ---------------------------------------------------------------------------
class AcceptLedger:
    """Probe observer recording post-dedup accepts and local deliveries.

    ``accepts[(transfer_id, node)]`` must never exceed 1 — that is the
    at-most-once-post-dedup contract the conformance suite asserts on both
    substrates (the sanitizer checks it live; the ledger makes it an
    explicit, comparable artifact).
    """

    def __init__(self) -> None:
        self.accepts: Dict[Tuple[int, int], int] = {}
        self.deliveries: List[Tuple[int, int]] = []

    def probe_handlers(self) -> Dict[str, Callable[..., Any]]:
        return {"broker_accept": self._on_accept, "deliver": self._on_deliver}

    def _on_accept(self, node: int, sender: int, frame: Any) -> None:
        key = (frame.transfer_id, node)
        self.accepts[key] = self.accepts.get(key, 0) + 1

    def _on_deliver(self, t: float, node: int, frame: Any) -> None:
        self.deliveries.append((frame.msg_id, node))

    @property
    def max_accepts_per_transfer(self) -> int:
        return max(self.accepts.values(), default=0)


def harvest(
    scenario: Scenario,
    ctx: RuntimeContext,
    strategy: DcrdStrategy,
    ledger: AcceptLedger,
    sanitizer: Optional[_sanity.Sanitizer],
) -> Dict[str, Any]:
    """Reduce one finished run (either substrate) to its comparable facts."""
    metrics = ctx.metrics
    delivered: FrozenSet[Tuple[int, int]] = frozenset(
        (outcome.msg_id, outcome.subscriber)
        for outcome in metrics.outcomes()
        if outcome.delivered
    )
    gave_up = frozenset(
        (outcome.msg_id, outcome.subscriber)
        for outcome in metrics.outcomes()
        if outcome.gave_up
    )
    delays = tuple(
        sorted(
            (outcome.msg_id, outcome.subscriber, outcome.delay)
            for outcome in metrics.outcomes()
            if outcome.delay is not None
        )
    )
    result: Dict[str, Any] = {
        "scenario": scenario.name,
        "published": metrics.messages_published,
        "expected": metrics.expected_deliveries,
        "delivered": delivered,
        "gave_up": gave_up,
        "duplicates": metrics.duplicate_count(),
        "max_accepts_per_transfer": ledger.max_accepts_per_transfer,
        "deliveries": tuple(sorted(ledger.deliveries)),
        # Unsorted arrival order of (msg_id, node) pairs: per-node
        # subsequences are what the ordering conformance suite compares.
        "delivery_order": tuple(ledger.deliveries),
        "delays": delays,
        "retransmissions": strategy.arq.retransmissions,
        "abandoned": strategy.abandoned,
        "in_flight": strategy.arq.in_flight,
    }
    if sanitizer is not None:
        perf = sanitizer.perf_counters()
        result["timers_started"] = perf["sanity.timers_started"]
        result["timers_settled"] = perf["sanity.timers_settled"]
        result["violations"] = perf["sanity.violations"]
    return result


# ---------------------------------------------------------------------------
# The simulated execution of a scenario
# ---------------------------------------------------------------------------
def run_sim_scenario(
    scenario: Scenario, seed: int = 0, sanitize: bool = True
) -> Dict[str, Any]:
    """Execute *scenario* on the discrete-event substrate."""
    reset_message_ids()
    topology = scenario.topology()
    sim = Simulator()
    streams = RandomStreams(seed)
    network = OverlayNetwork(sim, topology, streams, loss_rate=0.0)
    rules = scenario.rules()
    if rules:
        network.install_fault_filter(link_filter(rules))
    monitor = LinkMonitor(topology, network, streams, mode="analytic")
    workload = scenario.workload()
    plan = plan_from_scenario(scenario.ordering)
    ctx = RuntimeContext(
        sim=sim,
        topology=topology,
        network=network,
        monitor=monitor,
        workload=workload,
        metrics=MetricsCollector(),
        streams=streams,
        params=scenario.params(),
        ordering=plan,
    )
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    brokers = [BrokerRuntime(node, ctx, strategy) for node in topology.nodes]
    assert brokers  # attach side effects; the list itself is not used
    sanitizer = _sanity.Sanitizer() if sanitize else None
    ledger = AcceptLedger()
    spec = workload.topic(scenario.topic)
    deadlines = {sub.node: sub.deadline for sub in spec.subscriptions}

    def publish_one() -> None:
        msg_id = next_message_id()
        ctx.metrics.expect(msg_id, scenario.topic, sim.now, deadlines)
        strategy.publish(spec, msg_id)

    for i in range(scenario.publishes):
        sim.schedule(i * scenario.publish_interval, publish_one)
    _sanity.install(sanitizer)
    _probes.attach(ledger)
    try:
        try:
            if plan is not None:
                plan.activate()
            sim.run(until=scenario.end_time)
            if plan is not None:
                plan.flush()
        finally:
            if plan is not None:
                plan.deactivate()
            _sanity.uninstall()
        if sanitizer is not None:
            sanitizer.finish(ctx.metrics, sim.now)
    finally:
        _probes.detach(ledger)
    return harvest(scenario, ctx, strategy, ledger, sanitizer)

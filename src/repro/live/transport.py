"""The socket :class:`~repro.substrate.Transport`: brokers over real TCP.

:class:`LiveTransport` is the wall-clock twin of
:class:`~repro.overlay.links.OverlayNetwork`. It exposes the same
data-plane surface — ``attach``/``attach_ack``/``detach``, ``transmit``,
the ``send_data``/``send_ack`` fast-path names, ``stats``,
``link_success_probability`` — so :class:`BrokerRuntime`,
:class:`ArqSender` and the DCRD forwarding logic run over it without a
single branch on the substrate.

Topology and wiring
-------------------
One asyncio TCP server per broker node, one persistent connection per
*directed* overlay edge (the ``u -> v`` writer is owned by ``u``; ``v``'s
server reads it). Frames are length-prefixed JSON messages
(:mod:`repro.live.codec`); each envelope carries its sender, so
connections need no handshake. When
:attr:`~repro.live.config.LiveConfig.impose_link_delays` is set (the
default) every write is postponed by the topology's propagation delay for
its link, keeping live timings comparable to the simulated world.

Partitioned (multi-process) deployment
--------------------------------------
With ``local_nodes`` set, the transport manages only that subset of the
overlay: it binds servers for the local nodes at their configured
``LiveConfig.peers`` addresses and dials one writer per *outgoing*
directed edge (``u -> v`` with ``u`` local), retrying refused connections
until ``connect_timeout`` so a fleet of broker processes can boot in any
order. Incoming edges arrive on the local servers exactly as in the
single-process case — the per-node server / per-directed-edge wiring
never assumed co-location, which is what makes this mode a pure
deployment change.

Observability
-------------
The transport fires the same probe families as the sim network —
``on_transmit`` (DATA only, with ``survived``/``cause``), ``on_arrive``,
``on_arrival_drop`` — so the sanitizer's conservation/settlement checks
and the tracer work unchanged in live mode. Faults injected by the
optional :class:`~repro.live.faults.FaultInjector` shim surface as
``cause="injected"`` losses, mirroring
``OverlayNetwork.install_fault_filter`` exactly.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro import probes as _probes
from repro.live.codec import CodecError, FrameCodec
from repro.live.config import LiveConfig
from repro.live.faults import ACK as ACK_LABEL
from repro.live.faults import DATA as DATA_LABEL
from repro.live.faults import FaultInjector
from repro.overlay.links import FrameKind, LinkStats
from repro.pubsub.messages import AckFrame
from repro.util.errors import SimulationError

FrameHandler = Callable[[int, Any], None]


class LiveTransport:
    """The broker stack's transport over per-peer asyncio TCP connections."""

    def __init__(
        self,
        topology: Any,
        clock: Any,
        config: Optional[LiveConfig] = None,
        fault: Optional[FaultInjector] = None,
        local_nodes: Optional[Iterable[int]] = None,
    ) -> None:
        self.topology = topology
        self.clock = clock
        self.config = config if config is not None else LiveConfig()
        #: Nodes this transport instance hosts (``None`` = all of them,
        #: the single-process deployment).
        self.local_nodes: Optional[FrozenSet[int]] = (
            None if local_nodes is None else frozenset(local_nodes)
        )
        if self.local_nodes is not None:
            for node in self.local_nodes:
                if node not in topology.nodes:
                    raise SimulationError(f"local node {node} is not in the topology")
        self.codec = FrameCodec(self.config.max_frame_bytes)
        self.fault = fault
        self.stats = LinkStats()
        self._handlers: Dict[int, FrameHandler] = {}
        self._ack_handlers: Dict[int, FrameHandler] = {}
        self._ack_loss_observers: List[Callable[[int], None]] = []
        # Directed-edge wiring, built by start(): u -> v writer and the
        # imposed per-direction propagation delay.
        self._writers: Dict[Tuple[int, int], asyncio.StreamWriter] = {}
        self._delays: Dict[Tuple[int, int], float] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._reader_tasks: List["asyncio.Task[None]"] = []
        self._ports: Dict[int, int] = {}
        self.started = False
        #: Frames whose stream raised a codec error (observability only).
        self.codec_errors = 0

    # ------------------------------------------------------------------
    # Handler registry (identical contract to OverlayNetwork)
    # ------------------------------------------------------------------
    def attach(self, node: int, handler: FrameHandler) -> None:
        """Register *handler* as the frame sink of *node*."""
        if node not in self.topology.nodes:
            raise SimulationError(f"node {node} is not in the topology")
        self._handlers[node] = handler

    def attach_ack(self, node: int, handler: FrameHandler) -> None:
        """Register a dedicated ACK sink for *node* (pure fast path)."""
        if node not in self.topology.nodes:
            raise SimulationError(f"node {node} is not in the topology")
        self._ack_handlers[node] = handler

    def detach(self, node: int) -> None:
        """Remove *node*'s handlers; frames to it are silently dropped."""
        self._handlers.pop(node, None)
        self._ack_handlers.pop(node, None)

    def register_ack_loss_observer(self, observer: Callable[[int], None]) -> None:
        """Notify *observer(transfer_id)* when an ACK is dropped at the seam."""
        self._ack_loss_observers.append(observer)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the hosted brokers' servers, then dial one writer per
        outgoing direction.

        In the single-process deployment (``local_nodes is None``) that
        means every node's server and both directions of every edge; in a
        partition it means the local nodes' servers and the directions
        whose sender is local — the peer process dials the reverse
        direction against this partition's servers.
        """
        if self.started:
            raise SimulationError("transport already started")
        host = self.config.host
        local = self.local_nodes
        bind_nodes = self.topology.nodes if local is None else sorted(local)
        for node in bind_nodes:

            def make_reader(dst: int) -> Callable[..., Any]:
                async def on_connect(
                    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
                ) -> None:
                    task = asyncio.ensure_future(self._read_loop(dst, reader))
                    self._reader_tasks.append(task)

                return on_connect

            address = self.config.address_of(node)
            if address is None and local is not None:
                raise SimulationError(
                    f"partitioned transport needs an explicit peer address "
                    f"for local node {node}"
                )
            bind_host, bind_port = address if address is not None else (host, 0)
            server = await asyncio.start_server(make_reader(node), bind_host, bind_port)
            self._servers.append(server)
            self._ports[node] = server.sockets[0].getsockname()[1]
        impose = self.config.impose_link_delays
        for u, v in self.topology.edges():
            for src, dst in ((u, v), (v, u)):
                if local is not None and src not in local:
                    continue
                address = self.config.address_of(dst)
                if address is None:
                    if local is not None:
                        raise SimulationError(
                            f"partitioned transport has no peer address for "
                            f"node {dst} (needed by the {src} -> {dst} edge)"
                        )
                    address = (host, self._ports[dst])
                _, writer = await self._dial(*address)
                self._writers[(src, dst)] = writer
                self._delays[(src, dst)] = (
                    self.topology.delay(src, dst) if impose else 0.0
                )
        self.started = True

    async def _dial(
        self, host: str, port: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Open one peer connection, retrying refusals until the timeout.

        A fleet of broker processes boots in arbitrary order, so the peer
        a partition dials may not have bound its server yet; connection
        refusals are retried on a short backoff until ``connect_timeout``
        is exhausted.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.connect_timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise SimulationError(
                    f"could not connect to peer {host}:{port} within "
                    f"{self.config.connect_timeout}s"
                )
            try:
                return await asyncio.wait_for(
                    asyncio.open_connection(host, port), remaining
                )
            except (ConnectionRefusedError, OSError, asyncio.TimeoutError):
                if deadline - loop.time() <= 0.05:
                    raise SimulationError(
                        f"could not connect to peer {host}:{port} within "
                        f"{self.config.connect_timeout}s"
                    )
                await asyncio.sleep(0.05)

    async def close(self) -> None:
        """Tear down connections, servers, and reader tasks."""
        if self.fault is not None:
            # Frames still held by the reorder shim die with the run; they
            # were adversarially withheld, so they count as injected losses
            # (they never fired on_transmit — the sanitizer never saw them).
            for _ in self.fault.flush():
                self.stats._lost_injected[FrameKind.DATA.idx] += 1
        for writer in self._writers.values():
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for writer in self._writers.values():
            try:
                await writer.wait_closed()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for server in self._servers:
            server.close()
            await server.wait_closed()
        for task in self._reader_tasks:
            task.cancel()
        for task in self._reader_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        self._writers.clear()
        self._servers.clear()
        self._reader_tasks.clear()
        self.started = False

    def bound_port(self, node: int) -> int:
        """The TCP port *node*'s server actually bound (after start)."""
        return self._ports[node]

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def transmit(
        self, src: int, dst: int, frame: Any, kind: FrameKind, reliable: bool = False
    ) -> bool:
        """Send *frame* on the ``src -> dst`` connection.

        Mirrors ``OverlayNetwork.transmit``: counts the send, consults the
        fault shim, fires the DATA-only ``on_transmit`` probe per emitted
        copy, and returns whether at least one copy went onto the wire
        (tests/tracing only — senders learn outcomes via ACKs).
        """
        if not self.topology.has_edge(src, dst):
            raise SimulationError(f"no overlay link {src} -> {dst}")
        kidx = kind.idx
        stats = self.stats
        stats._volume[kidx] += getattr(frame, "size", 1.0)
        payload = self.codec.encode_payload(src, frame)
        if self.fault is not None:
            label = ACK_LABEL if kind is FrameKind.ACK else DATA_LABEL
            actions = self.fault.plan(src, dst, label, (frame, payload))
        else:
            actions = [(0.0, (frame, payload))]
        if not actions:
            # Dropped (or held back for reorder) at the seam. Either way
            # nothing reaches the wire now; a held frame re-emerges inside
            # a later frame's plan carrying its own (frame, payload) pair.
            stats._sent[kidx] += 1
            stats._lost_injected[kidx] += 1
            if kind is FrameKind.DATA:
                probe = _probes.on_transmit
                if probe is not None:
                    probe(
                        self.clock.now,
                        src,
                        dst,
                        frame,
                        False,
                        "injected",
                        self._delays.get((src, dst), 0.0),
                        None,
                    )
            elif kind is FrameKind.ACK:
                self._notify_ack_loss(frame)
            return False
        prop = self._delays.get((src, dst), 0.0)
        probe_tx = _probes.on_transmit if kind is FrameKind.DATA else None
        for extra, (copy_frame, copy_payload) in actions:
            stats._sent[kidx] += 1
            if probe_tx is not None:
                probe_tx(self.clock.now, src, dst, copy_frame, True, None, prop, None)
            message = self.codec.frame_message(copy_payload)
            total = prop + extra
            if total > 0.0:
                self.clock.schedule_fire(total, self._write, src, dst, message)
            else:
                self._write(src, dst, message)
        return True

    def send_data(self, src: int, dst: int, frame: Any) -> Optional[bool]:
        """DATA fast-path name; the live outcome is never knowable here."""
        self.transmit(src, dst, frame, FrameKind.DATA)
        return None

    def send_ack(self, src: int, dst: int, frame: Any) -> Optional[bool]:
        """ACK fast-path name; the live outcome is never knowable here."""
        self.transmit(src, dst, frame, FrameKind.ACK)
        return None

    def _write(self, src: int, dst: int, message: bytes) -> None:
        writer = self._writers.get((src, dst))
        if writer is None or writer.is_closing():  # pragma: no cover - teardown race
            return
        writer.write(message)

    def _notify_ack_loss(self, frame: Any) -> None:
        transfer_id = getattr(frame, "transfer_id", None)
        if transfer_id is None:
            return
        for observer in self._ack_loss_observers:
            observer(transfer_id)

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    async def _read_loop(self, dst: int, reader: asyncio.StreamReader) -> None:
        codec = self.codec
        try:
            while True:
                header = await reader.readexactly(4)
                payload = await reader.readexactly(codec.split_prefix(header))
                try:
                    sender, frame = codec.decode_payload(payload)
                except CodecError:
                    self.codec_errors += 1
                    continue
                self._dispatch(sender, dst, frame)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return  # peer closed the connection: normal teardown
        except asyncio.CancelledError:
            raise

    def _dispatch(self, src: int, dst: int, frame: Any) -> None:
        """Hand one received frame to *dst*'s sink (sim-identical dispatch)."""
        is_ack = frame.__class__ is AckFrame or isinstance(frame, AckFrame)
        kind = FrameKind.ACK if is_ack else FrameKind.DATA
        handler: Optional[FrameHandler] = None
        if is_ack:
            handler = self._ack_handlers.get(dst)
        if handler is None:
            handler = self._handlers.get(dst)
        if handler is None:
            if kind is FrameKind.DATA:
                probe = _probes.on_arrival_drop
                if probe is not None:
                    probe(self.clock.now, src, dst, frame, "no_handler")
            return
        self.stats._delivered[kind.idx] += 1
        if kind is FrameKind.DATA:
            probe = _probes.on_arrive
            if probe is not None:
                probe(self.clock.now, src, dst, frame)
        handler(src, frame)

    # ------------------------------------------------------------------
    # Convenience queries used by routing layers
    # ------------------------------------------------------------------
    def link_success_probability(self, u: int, v: int) -> float:
        """TCP is reliable; injected faults are adversarial, not stochastic."""
        return 1.0

    def link_up(self, u: int, v: int) -> bool:
        """Live links have no scripted failure epochs."""
        return True

    def queueing_backlog(self, src: int, dst: int) -> float:
        """Loopback links are effectively infinite-capacity."""
        return 0.0

"""Metrics: per-delivery records, summaries, and CDF helpers."""

from repro.metrics.cdf import empirical_cdf, interpolate_cdf, percentile
from repro.metrics.collector import DeliveryOutcome, MetricsCollector
from repro.metrics.summary import MetricsSummary, mean_summaries, summarize

__all__ = [
    "DeliveryOutcome",
    "MetricsCollector",
    "MetricsSummary",
    "empirical_cdf",
    "interpolate_cdf",
    "mean_summaries",
    "percentile",
    "summarize",
]

"""Empirical CDF utilities (Figure 7 reports a late-delivery CDF)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.util.validation import require, require_in_range


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Return ``(xs, F(xs))`` of the empirical CDF of *values*.

    ``xs`` is sorted ascending and ``F(x)`` is the fraction of samples
    ``<= x`` (right-continuous step heights). Empty input yields two empty
    lists.
    """
    if len(values) == 0:
        return [], []
    xs = np.sort(np.asarray(values, dtype=float))
    fs = np.arange(1, len(xs) + 1) / len(xs)
    return xs.tolist(), fs.tolist()


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-quantile (q in [0, 1]) of *values* (linear interpolation)."""
    require(len(values) > 0, "percentile of empty sample")
    require_in_range(q, 0.0, 1.0, "q")
    return float(np.quantile(np.asarray(values, dtype=float), q))


def interpolate_cdf(values: Sequence[float], at: Sequence[float]) -> List[float]:
    """Evaluate the empirical CDF of *values* at each point in *at*.

    Returns ``P[value <= a]`` for every ``a`` in *at*. An empty sample
    evaluates to 0 everywhere (nothing has been observed below any level).
    """
    if len(values) == 0:
        return [0.0 for _ in at]
    xs = np.sort(np.asarray(values, dtype=float))
    return [float(np.searchsorted(xs, a, side="right")) / len(xs) for a in at]

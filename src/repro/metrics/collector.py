"""Per-delivery bookkeeping.

For every published message the collector registers one *expected delivery*
per subscriber, then records the first copy that arrives (later copies count
as duplicates). The paper's three metrics (§IV-C) derive from this table
plus the network's DATA-transmission counter:

* **delivery ratio** — delivered pairs / expected pairs (late or not);
* **QoS delivery ratio** — pairs delivered within their deadline / expected;
* **packets sent / subscriber** — DATA link transmissions / expected pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.util.errors import SimulationError


@dataclass
class DeliveryOutcome:
    """Mutable state of one expected (message, subscriber) delivery."""

    msg_id: int
    topic: int
    subscriber: int
    publish_time: float
    deadline: float
    delivery_time: Optional[float] = None
    duplicates: int = 0
    gave_up: bool = False
    hops: Optional[int] = None

    @property
    def delivered(self) -> bool:
        """Whether at least one copy arrived."""
        return self.delivery_time is not None

    @property
    def delay(self) -> Optional[float]:
        """End-to-end delay of the first copy, or ``None``."""
        if self.delivery_time is None:
            return None
        return self.delivery_time - self.publish_time

    @property
    def on_time(self) -> bool:
        """Whether the first copy met the delay requirement."""
        delay = self.delay
        return delay is not None and delay <= self.deadline


class MetricsCollector:
    """Accumulates :class:`DeliveryOutcome` rows during a simulation run.

    Observers registered via :meth:`add_observer` are invoked on every
    *first* delivery of a (message, subscriber) pair — the hook the
    embedding API uses to run user callbacks.
    """

    def __init__(self) -> None:
        self._outcomes: Dict[Tuple[int, int], DeliveryOutcome] = {}
        self._messages = 0
        self._observers: List = []

    def add_observer(self, observer) -> None:
        """Register ``observer(msg_id, subscriber, time)`` for first copies."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def expect(
        self,
        msg_id: int,
        topic: int,
        publish_time: float,
        deadlines: Mapping[int, float],
    ) -> None:
        """Register a published message and its per-subscriber deadlines."""
        if not deadlines:
            raise SimulationError(f"message {msg_id} has no subscribers")
        self._messages += 1
        for subscriber, deadline in deadlines.items():
            key = (msg_id, subscriber)
            if key in self._outcomes:
                raise SimulationError(f"duplicate expectation for {key}")
            self._outcomes[key] = DeliveryOutcome(
                msg_id=msg_id,
                topic=topic,
                subscriber=subscriber,
                publish_time=publish_time,
                deadline=deadline,
            )

    def record_delivery(
        self,
        msg_id: int,
        subscriber: int,
        time: float,
        hops: Optional[int] = None,
    ) -> bool:
        """Record an arriving copy. Returns True if it was the first copy.

        ``hops`` is the number of overlay transmissions the copy took
        (the length of its routing path); it feeds the route-stretch
        analysis. Copies for unknown pairs (e.g. frames still draining
        after the measurement window closed) are ignored.
        """
        outcome = self._outcomes.get((msg_id, subscriber))
        if outcome is None:
            return False
        if outcome.delivery_time is None:
            outcome.delivery_time = time
            outcome.hops = hops
            for observer in self._observers:
                observer(msg_id, subscriber, time)
            return True
        outcome.duplicates += 1
        return False

    def record_give_up(self, msg_id: int, subscriber: int) -> None:
        """Record that the routing strategy abandoned this delivery."""
        outcome = self._outcomes.get((msg_id, subscriber))
        if outcome is not None and not outcome.delivered:
            outcome.gave_up = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def messages_published(self) -> int:
        """Number of messages registered via :meth:`expect`."""
        return self._messages

    @property
    def expected_deliveries(self) -> int:
        """Total (message, subscriber) pairs registered."""
        return len(self._outcomes)

    def outcomes(self) -> List[DeliveryOutcome]:
        """All outcome rows (insertion order)."""
        return list(self._outcomes.values())

    def outcome(self, msg_id: int, subscriber: int) -> DeliveryOutcome:
        """The outcome row of one specific pair."""
        return self._outcomes[(msg_id, subscriber)]

    def delivered_count(self) -> int:
        """Pairs with at least one delivered copy."""
        return sum(1 for o in self._outcomes.values() if o.delivered)

    def on_time_count(self) -> int:
        """Pairs delivered within their deadline."""
        return sum(1 for o in self._outcomes.values() if o.on_time)

    def duplicate_count(self) -> int:
        """Total redundant copies received across all pairs."""
        return sum(o.duplicates for o in self._outcomes.values())

    def late_normalized_delays(self) -> List[float]:
        """``delay / deadline`` of pairs delivered *after* their deadline.

        This is exactly the population Figure 7 plots (values start at 1).
        """
        result = []
        for outcome in self._outcomes.values():
            delay = outcome.delay
            if delay is not None and delay > outcome.deadline > 0:
                result.append(delay / outcome.deadline)
        return result

    def delays(self) -> List[float]:
        """End-to-end delays of all delivered pairs."""
        return [o.delay for o in self._outcomes.values() if o.delay is not None]

    def hop_counts(self) -> List[int]:
        """Overlay hop counts of delivered pairs (where recorded)."""
        return [o.hops for o in self._outcomes.values() if o.hops is not None]

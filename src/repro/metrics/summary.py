"""Run summaries: the paper's three headline metrics plus diagnostics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregated results of one simulation run.

    ``delivery_ratio``, ``qos_delivery_ratio`` and ``packets_per_subscriber``
    are the paper's §IV-C metrics; the rest support the delay CDF of
    Figure 7 and general diagnostics.
    """

    strategy: str
    messages_published: int
    expected_deliveries: int
    delivered: int
    on_time: int
    duplicates: int
    data_transmissions: int
    delivery_ratio: float
    qos_delivery_ratio: float
    packets_per_subscriber: float
    mean_delay: Optional[float]
    p95_delay: Optional[float]
    #: Size-weighted traffic per subscriber; differs from
    #: ``packets_per_subscriber`` only for FEC fragments (size 1/k).
    traffic_per_subscriber: float = 0.0
    late_normalized_delays: List[float] = field(default_factory=list)
    #: Performance instrumentation snapshot (control-plane solve time,
    #: tables reused vs re-solved, warm-start rounds, event counts; see
    #: :mod:`repro.perf`). Wall-clock values are non-deterministic, so the
    #: field is excluded from equality and from :meth:`as_dict` — the
    #: reproducibility tests compare both.
    perf: Dict[str, float] = field(default_factory=dict, compare=False)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (reports, JSON dumps). Excludes :attr:`perf`."""
        return {
            "strategy": self.strategy,
            "messages_published": self.messages_published,
            "expected_deliveries": self.expected_deliveries,
            "delivered": self.delivered,
            "on_time": self.on_time,
            "duplicates": self.duplicates,
            "data_transmissions": self.data_transmissions,
            "delivery_ratio": self.delivery_ratio,
            "qos_delivery_ratio": self.qos_delivery_ratio,
            "packets_per_subscriber": self.packets_per_subscriber,
            "traffic_per_subscriber": self.traffic_per_subscriber,
            "mean_delay": self.mean_delay,
            "p95_delay": self.p95_delay,
        }


def summarize(
    collector: MetricsCollector,
    data_transmissions: int,
    strategy: str = "unknown",
    data_volume: Optional[float] = None,
    perf: Optional[Dict[str, float]] = None,
) -> MetricsSummary:
    """Reduce a collector plus the DATA-frame counters to a summary.

    ``data_volume`` defaults to the transmission count (frames of size 1).
    ``perf`` is an optional :meth:`repro.perf.PerfStats.snapshot` to carry
    along for diagnostics.
    """
    expected = collector.expected_deliveries
    delivered = collector.delivered_count()
    on_time = collector.on_time_count()
    delays = collector.delays()
    mean_delay = float(np.mean(delays)) if delays else None
    p95_delay = float(np.quantile(delays, 0.95)) if delays else None
    if data_volume is None:
        data_volume = float(data_transmissions)
    return MetricsSummary(
        strategy=strategy,
        messages_published=collector.messages_published,
        expected_deliveries=expected,
        delivered=delivered,
        on_time=on_time,
        duplicates=collector.duplicate_count(),
        data_transmissions=data_transmissions,
        delivery_ratio=delivered / expected if expected else 0.0,
        qos_delivery_ratio=on_time / expected if expected else 0.0,
        packets_per_subscriber=data_transmissions / expected if expected else 0.0,
        mean_delay=mean_delay,
        p95_delay=p95_delay,
        traffic_per_subscriber=data_volume / expected if expected else 0.0,
        late_normalized_delays=collector.late_normalized_delays(),
        perf=dict(perf) if perf else {},
    )


def mean_summaries(summaries: Sequence[MetricsSummary]) -> MetricsSummary:
    """Average several repetition summaries of the *same* strategy.

    Ratios are averaged with equal weight per repetition (the paper averages
    over 10 topologies); counters are summed; delay statistics are averaged
    over the repetitions that produced one.
    """
    if not summaries:
        raise ValueError("mean_summaries of empty sequence")
    strategies = {s.strategy for s in summaries}
    if len(strategies) != 1:
        raise ValueError(f"mixing strategies in one mean: {sorted(strategies)}")
    late: List[float] = []
    for summary in summaries:
        late.extend(summary.late_normalized_delays)
    merged_perf: Dict[str, float] = {}
    for summary in summaries:
        for name, value in summary.perf.items():
            merged_perf[name] = merged_perf.get(name, 0.0) + value
    mean_delays = [s.mean_delay for s in summaries if s.mean_delay is not None]
    p95_delays = [s.p95_delay for s in summaries if s.p95_delay is not None]
    return MetricsSummary(
        strategy=summaries[0].strategy,
        messages_published=sum(s.messages_published for s in summaries),
        expected_deliveries=sum(s.expected_deliveries for s in summaries),
        delivered=sum(s.delivered for s in summaries),
        on_time=sum(s.on_time for s in summaries),
        duplicates=sum(s.duplicates for s in summaries),
        data_transmissions=sum(s.data_transmissions for s in summaries),
        delivery_ratio=float(np.mean([s.delivery_ratio for s in summaries])),
        qos_delivery_ratio=float(np.mean([s.qos_delivery_ratio for s in summaries])),
        packets_per_subscriber=float(
            np.mean([s.packets_per_subscriber for s in summaries])
        ),
        mean_delay=float(np.mean(mean_delays)) if mean_delays else None,
        p95_delay=float(np.mean(p95_delays)) if p95_delays else None,
        traffic_per_subscriber=float(
            np.mean([s.traffic_per_subscriber for s in summaries])
        ),
        late_normalized_delays=late,
        perf=merged_perf,
    )

"""Delivery-semantics layer: opt-in per-topic ordering guarantees.

DCRD (the reproduced protocol) provides reliable, delay-cognizant,
at-most-once-after-dedup delivery with no ordering promise. This
package layers three opt-in guarantees on the broker's delivery
pipeline seam — ``fifo``, ``causal``, and ``total`` — selected with
``--ordering=LEVEL[:topic,...]`` and identical across the sim, live
single-process, and multi-process substrates. See docs/ORDERING.md.
"""

from repro.ordering.clocks import (
    vc_compare,
    vc_increment,
    vc_leq,
    vc_merge,
)
from repro.ordering.pipeline import (
    CausalPipeline,
    DeliveryPipeline,
    FifoPipeline,
    PassthroughPipeline,
    TotalOrderPipeline,
)
from repro.ordering.plan import OrderingPlan, plan_from_scenario
from repro.ordering.spec import LEVELS, OrderingSpec, parse_ordering
from repro.ordering.tags import OrderTag

__all__ = [
    "LEVELS",
    "OrderingSpec",
    "parse_ordering",
    "OrderTag",
    "OrderingPlan",
    "plan_from_scenario",
    "DeliveryPipeline",
    "PassthroughPipeline",
    "FifoPipeline",
    "CausalPipeline",
    "TotalOrderPipeline",
    "vc_merge",
    "vc_compare",
    "vc_increment",
    "vc_leq",
]

"""Pure vector-clock algebra for the causal guarantee.

Clocks are plain ``{stream: count}`` dicts keyed by ``(topic, origin)``
publication streams (see :mod:`repro.ordering.tags`). Keeping the
algebra here as free functions — no pipeline state, no side effects —
makes the merge/compare laws directly checkable by the Hypothesis
property suite (`tests/ordering/test_clocks.py`).

The clocks are *dynamic*: entries appear when a stream is first
observed and absent entries read as zero, which is what gives the
causal pipeline its join/leave semantics under churn (a late joiner is
simply a clock with missing entries; see docs/ORDERING.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.ordering.tags import Stream

#: Comparison outcomes for :func:`vc_compare`.
BEFORE = -1
EQUAL = 0
AFTER = 1
CONCURRENT = 2


def vc_get(clock: Dict[Stream, int], stream: Stream) -> int:
    """An entry's count, with absent entries reading as zero."""
    return clock.get(stream, 0)


def vc_increment(clock: Dict[Stream, int], stream: Stream) -> Dict[Stream, int]:
    """A new clock with *stream* advanced by one tick."""
    advanced = dict(clock)
    advanced[stream] = advanced.get(stream, 0) + 1
    return advanced


def vc_merge(*clocks: Dict[Stream, int]) -> Dict[Stream, int]:
    """The pointwise maximum (least upper bound) of the given clocks."""
    merged: Dict[Stream, int] = {}
    for clock in clocks:
        for stream, count in clock.items():
            if count > merged.get(stream, 0):
                merged[stream] = count
    return merged


def vc_leq(left: Dict[Stream, int], right: Dict[Stream, int]) -> bool:
    """Whether *left* happens-before-or-equals *right* pointwise."""
    return all(count <= right.get(stream, 0) for stream, count in left.items())


def vc_compare(left: Dict[Stream, int], right: Dict[Stream, int]) -> int:
    """Classify the causal relation between two clocks.

    Returns :data:`BEFORE`, :data:`AFTER`, :data:`EQUAL`, or
    :data:`CONCURRENT`.
    """
    left_leq = vc_leq(left, right)
    right_leq = vc_leq(right, left)
    if left_leq and right_leq:
        return EQUAL
    if left_leq:
        return BEFORE
    if right_leq:
        return AFTER
    return CONCURRENT


def vc_restrict(
    clock: Dict[Stream, int], streams: Optional[Iterable[Stream]]
) -> Dict[Stream, int]:
    """The clock projected onto *streams* (``None`` keeps everything)."""
    if streams is None:
        return dict(clock)
    keep = set(streams)
    return {stream: count for stream, count in clock.items() if stream in keep}

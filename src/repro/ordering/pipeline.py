"""Hold-back delivery pipelines: the stage between dedup and the app.

:class:`~repro.pubsub.broker.BrokerRuntime` owns at most one pipeline
per node. With ordering off the broker keeps its historical inlined
delivery block (one ``is None`` check — the zero-cost passthrough the
fingerprint matrix pins); with ordering on, every post-dedup locally
deliverable frame is *offered* here instead, and the pipeline decides
when the terminal stage (:meth:`BrokerRuntime.deliver_frame`) runs.

Three guarantees, all hold-back based:

* :class:`FifoPipeline` — per-``(topic, publisher)`` sequence hold-back.
* :class:`CausalPipeline` — dynamic vector clocks over publication
  streams; unknown streams are waived (join/leave semantics, see
  docs/ORDERING.md) so the guarantee composes with churn.
* :class:`TotalOrderPipeline` — EpTO-style agreement: frames sort by a
  ``(lamport_ts, origin, seq)`` key and release only after aging past a
  fixed hold window, by which point every smaller-keyed frame has
  arrived (late stragglers are stall-released out of band).

Every release is observable (probe families ``order_hold`` /
``order_release`` / ``order_stall``) and carries a *reason*:

* ``ready`` — the guarantee's deliverability rule held; only these
  releases are invariant-checked by the sanitizer.
* ``stall`` — the watchdog skipped a gap (or a straggler arrived after
  its slot); the sanitizer re-baselines instead of flagging.
* ``flush`` — end-of-run drain of whatever is still held.

The ``repro.sanity.MUTATE_MISSORT_ORDER_RELEASE`` /
``MUTATE_DROP_ORDER_RELEASE`` flags (PR 3 teeth-test pattern)
deliberately corrupt the release stream so the mutation smoke tests can
prove each ordering invariant actually fires; both resolve through
sanitizer-gated helpers, so unsanitized runs are bit-inert.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro import probes as _probes
from repro import sanity as _sanity
from repro.ordering.spec import OrderingSpec
from repro.ordering.tags import OrderTag, Stream
from repro.pubsub.messages import PacketFrame

#: Slack when comparing held durations against the stall timeout, so a
#: timer firing exactly on schedule counts its own frame as overdue.
_STALL_EPSILON = 1e-9


class DeliveryPipeline:
    """Base stage: passthrough plus the shared hold/release machinery.

    The base class itself is the zero-guarantee passthrough (every offer
    goes straight to the terminal stage); subclasses override
    :meth:`_offer_tagged` with a deliverability rule and use
    :meth:`_hold` / :meth:`_release` for the bookkeeping, probes, and
    duplicate handling.
    """

    level = "passthrough"

    def __init__(self, broker, plan) -> None:
        self._broker = broker
        self._plan = plan
        self._spec: OrderingSpec = plan.spec
        self._node: int = broker.node
        # The broker's hot-bound clock: ``_now`` reads on both substrates
        # (sim kernel attribute, WallClock property alias).
        self._clock = broker._sim
        self._stall_timeout: float = plan.stall_timeout
        # msg_id -> held-since time, for every frame currently buffered.
        self._holding: Dict[int, float] = {}
        # msg_ids whose primary copy already reached the terminal stage.
        self._released: Set[int] = set()
        # Duplicate copies (distinct transfer ids, e.g. multipath) that
        # arrived while the primary was held: delivered right after it,
        # preserving the substrate-conformant duplicate counts.
        self._dup_pending: Dict[int, List[PacketFrame]] = {}
        self._missort_stash: Optional[Tuple[PacketFrame, OrderTag]] = None
        self._mutate_streams: Set[Stream] = set()
        self._closed = False
        self.offers = 0
        self.releases = 0
        self.stall_releases = 0

    # ------------------------------------------------------------------
    def offer(self, frame: PacketFrame) -> None:
        """A post-dedup, locally deliverable frame enters the pipeline."""
        self.offers += 1
        tag = frame.order_tag
        if tag is None or not self._spec.covers(frame.topic):
            # Untagged (published before the plan activated) or an
            # uncovered topic: the guarantee does not apply.
            self._broker.deliver_frame(frame)
            return
        msg_id = frame.msg_id
        if msg_id in self._released:
            # A late duplicate copy of an already-released message: the
            # terminal stage counts it as the duplicate it is.
            self._broker.deliver_frame(frame)
            return
        if msg_id in self._holding:
            self._dup_pending.setdefault(msg_id, []).append(frame)
            return
        self._offer_tagged(frame, tag)

    def _offer_tagged(self, frame: PacketFrame, tag: OrderTag) -> None:
        self._release(frame, tag, "ready")

    # ------------------------------------------------------------------
    def _hold(self, frame: PacketFrame, tag: OrderTag) -> float:
        """Buffer *frame*; returns the hold timestamp."""
        now = self._clock._now
        self._holding[frame.msg_id] = now
        probe = _probes.on_order_hold
        if probe is not None:
            probe(now, self._node, frame, self.level)
        return now

    def _release(self, frame: PacketFrame, tag: OrderTag, reason: str) -> None:
        """Run the terminal stage for *frame* (mutations permitting)."""
        msg_id = frame.msg_id
        held_since = self._holding.pop(msg_id, None)
        self._released.add(msg_id)
        if reason == "ready":
            # PR 3-style teeth tests: both mutations resolve through
            # sanitizer-gated helpers, so unsanitized runs are bit-inert
            # no matter what flags a test leaves behind.
            if _sanity.MUTATE_DROP_ORDER_RELEASE:
                # Drop a *mid-stream* release: the first release of a
                # stream is an invisible drop (the order checks baseline-
                # adopt it), so wait for a stream to repeat at this node.
                stream = (frame.topic, tag.origin)
                if stream in self._mutate_streams:
                    if _sanity.consume_order_drop():
                        self._dup_pending.pop(msg_id, None)
                        return
                else:
                    self._mutate_streams.add(stream)
            if _sanity.missort_order_release_active():
                stash = self._missort_stash
                if stash is None:
                    self._missort_stash = (frame, tag)
                    return
                self._missort_stash = None
                self._emit(frame, tag, reason, held_since)
                self._emit(stash[0], stash[1], "ready", None)
                return
        self._emit(frame, tag, reason, held_since)

    def _emit(
        self,
        frame: PacketFrame,
        tag: OrderTag,
        reason: str,
        held_since: Optional[float],
    ) -> None:
        now = self._clock._now
        self.releases += 1
        if reason == "stall":
            self.stall_releases += 1
            stall_probe = _probes.on_order_stall
            if stall_probe is not None:
                stall_probe(
                    now, self._node, self.level, {"msg": frame.msg_id}
                )
        held_for = 0.0 if held_since is None else now - held_since
        probe = _probes.on_order_release
        if probe is not None:
            probe(now, self._node, frame, self.level, reason, held_for)
        self._plan.note_delivery(self._node, frame, tag)
        self._broker.deliver_frame(frame)
        dups = self._dup_pending.pop(frame.msg_id, None)
        if dups:
            for dup in dups:
                self._broker.deliver_frame(dup)

    # ------------------------------------------------------------------
    def held_count(self) -> int:
        """Frames currently buffered (the cluster quiescence signal)."""
        return len(self._holding)

    def flush(self) -> None:
        """End-of-run drain: release everything still held."""

    def close(self) -> None:
        """Disarm the pipeline; late timer callbacks become no-ops."""
        self._closed = True


PassthroughPipeline = DeliveryPipeline


class _FifoStream:
    """Per-``(topic, publisher)`` hold-back state for the FIFO level."""

    __slots__ = ("next", "heap", "timer_armed")

    def __init__(self) -> None:
        self.next: Optional[int] = None
        # Entries: (seq, msg_id, frame, tag, held_since).
        self.heap: List[Tuple[int, int, PacketFrame, OrderTag, float]] = []
        self.timer_armed = False


class FifoPipeline(DeliveryPipeline):
    """Per-publisher order: release in publisher sequence per stream.

    The first frame seen on a stream adopts its sequence as the baseline
    (a subscriber that joins mid-stream must not wait for history it
    will never get); after that, frame *n+1* releases only after frame
    *n*. Gaps are buffered until the stall watchdog skips past them.
    """

    level = "fifo"

    def __init__(self, broker, plan) -> None:
        super().__init__(broker, plan)
        self._streams: Dict[Stream, _FifoStream] = {}

    def _offer_tagged(self, frame: PacketFrame, tag: OrderTag) -> None:
        stream = (frame.topic, tag.origin)
        state = self._streams.get(stream)
        if state is None:
            state = _FifoStream()
            self._streams[stream] = state
        if state.next is None:
            # First frame of the stream at this node: baseline adoption.
            state.next = tag.seq + 1
            self._release(frame, tag, "ready")
            self._drain(state)
            return
        if tag.seq == state.next:
            state.next = tag.seq + 1
            self._release(frame, tag, "ready")
            self._drain(state)
            return
        if tag.seq < state.next:
            # Straggler from before a baseline/stall skip: out of order
            # by construction, so it releases outside the checked flow.
            self._release(frame, tag, "stall")
            return
        held_since = self._hold(frame, tag)
        heapq.heappush(
            state.heap, (tag.seq, frame.msg_id, frame, tag, held_since)
        )
        self._arm(stream, state)

    def _drain(self, state: _FifoStream) -> None:
        heap = state.heap
        while heap and heap[0][0] <= state.next:
            seq, _, frame, tag, _held = heapq.heappop(heap)
            if seq == state.next:
                state.next = seq + 1
                self._release(frame, tag, "ready")
            else:
                self._release(frame, tag, "stall")

    def _arm(self, stream: Stream, state: _FifoStream) -> None:
        if state.timer_armed or not state.heap:
            return
        now = self._clock._now
        delay = max(0.0, state.heap[0][4] + self._stall_timeout - now)
        state.timer_armed = True
        self._clock.schedule(delay, self._stall_fire, stream)

    def _stall_fire(self, stream: Stream) -> None:
        if self._closed:
            return
        state = self._streams.get(stream)
        if state is None:
            return
        state.timer_armed = False
        heap = state.heap
        now = self._clock._now
        timeout = self._stall_timeout
        while heap and now - heap[0][4] + _STALL_EPSILON >= timeout:
            seq, _, frame, tag, _held = heapq.heappop(heap)
            if state.next is not None and seq == state.next:
                state.next = seq + 1
                self._release(frame, tag, "ready")
            else:
                # Skip the gap: the missing frames are declared lost to
                # this node; the sanitizer re-baselines on the stall.
                state.next = seq + 1
                self._release(frame, tag, "stall")
            self._drain(state)
        self._arm(stream, state)

    def flush(self) -> None:
        for state in self._streams.values():
            heap = state.heap
            while heap:
                seq, _, frame, tag, _held = heapq.heappop(heap)
                state.next = seq + 1
                self._release(frame, tag, "flush")


class CausalPipeline(DeliveryPipeline):
    """Causal order via dynamic per-stream vector clocks.

    A frame is deliverable when (a) it is the next in sequence on its
    own publication stream — or the first frame of a stream this node
    has ever seen, which adopts the baseline — and (b) every dependency
    in its vector clock on a stream this node *knows* has already been
    delivered. Dependencies on unknown streams are waived: that is the
    dynamic-join semantics that keeps late joiners and churned topics
    from stalling forever (docs/ORDERING.md discusses the weakening).
    """

    level = "causal"

    def __init__(self, broker, plan) -> None:
        super().__init__(broker, plan)
        # Last delivered sequence per known stream at this node.
        self._delivered: Dict[Stream, int] = {}
        # Held entries: (held_since, msg_id, frame, tag).
        self._pending: List[Tuple[float, int, PacketFrame, OrderTag]] = []
        self._timer_armed = False

    def _classify(self, frame: PacketFrame, tag: OrderTag) -> str:
        own = (frame.topic, tag.origin)
        delivered = self._delivered
        have = delivered.get(own)
        if have is not None:
            if tag.seq <= have:
                return "late"
            if tag.seq != have + 1:
                return "hold"
        vc = tag.vc
        if vc:
            for stream, need in vc.items():
                if stream == own:
                    continue
                seen = delivered.get(stream)
                if seen is None:
                    continue
                if seen < need:
                    return "hold"
        return "ready"

    def _note_released(self, frame: PacketFrame, tag: OrderTag) -> None:
        own = (frame.topic, tag.origin)
        have = self._delivered.get(own)
        if have is None or tag.seq > have:
            self._delivered[own] = tag.seq

    def _offer_tagged(self, frame: PacketFrame, tag: OrderTag) -> None:
        verdict = self._classify(frame, tag)
        if verdict == "ready":
            self._note_released(frame, tag)
            self._release(frame, tag, "ready")
            self._cascade()
            return
        if verdict == "late":
            self._release(frame, tag, "stall")
            return
        held_since = self._hold(frame, tag)
        self._pending.append((held_since, frame.msg_id, frame, tag))
        self._arm()

    def _cascade(self) -> None:
        """Release newly deliverable held frames until a fixpoint."""
        progressed = True
        while progressed and self._pending:
            progressed = False
            for index, (_, _, frame, tag) in enumerate(self._pending):
                verdict = self._classify(frame, tag)
                if verdict == "ready":
                    del self._pending[index]
                    self._note_released(frame, tag)
                    self._release(frame, tag, "ready")
                    progressed = True
                    break
                if verdict == "late":
                    del self._pending[index]
                    self._release(frame, tag, "stall")
                    progressed = True
                    break

    def _arm(self) -> None:
        if self._timer_armed or not self._pending:
            return
        now = self._clock._now
        oldest = min(entry[0] for entry in self._pending)
        delay = max(0.0, oldest + self._stall_timeout - now)
        self._timer_armed = True
        self._clock.schedule(delay, self._stall_fire)

    def _stall_fire(self) -> None:
        if self._closed:
            return
        self._timer_armed = False
        now = self._clock._now
        timeout = self._stall_timeout
        while self._pending:
            overdue = [
                entry
                for entry in self._pending
                if now - entry[0] + _STALL_EPSILON >= timeout
            ]
            if not overdue:
                break
            # Force the oldest overdue frame through (deterministic tie
            # break on msg_id), then let the cascade pick up the rest.
            victim = min(overdue, key=lambda entry: (entry[0], entry[1]))
            self._pending.remove(victim)
            _, _, frame, tag = victim
            self._note_released(frame, tag)
            self._release(frame, tag, "stall")
            self._cascade()
        self._arm()

    def flush(self) -> None:
        for _, _, frame, tag in sorted(
            self._pending, key=lambda entry: (entry[0], entry[1])
        ):
            self._note_released(frame, tag)
            self._release(frame, tag, "flush")
        self._pending.clear()


class TotalOrderPipeline(DeliveryPipeline):
    """Total order: one agreed delivery sequence per topic set.

    EpTO's structure without the epidemic relay (DCRD's reliable overlay
    already disseminates every frame): each frame carries a globally
    comparable ``(lamport_ts, origin, seq)`` key, and a subscriber holds
    every frame for a fixed agreement window before releasing in key
    order. By window expiry any smaller-keyed frame has arrived, so all
    subscribers release the same prefix; a straggler that misses its
    window (released smaller key already passed) is stall-released out
    of the agreed sequence rather than re-ordering it.
    """

    level = "total"

    #: Key type: (lamport timestamp, origin node, per-stream sequence).
    Key = Tuple[int, int, int]

    def __init__(self, broker, plan) -> None:
        super().__init__(broker, plan)
        self._hold_window: float = plan.total_hold
        # Entries: (key, frame, tag, held_since).
        self._heap: List[Tuple["TotalOrderPipeline.Key", PacketFrame, OrderTag, float]] = []
        self._last_key: Optional["TotalOrderPipeline.Key"] = None
        self._timer_armed = False

    def _offer_tagged(self, frame: PacketFrame, tag: OrderTag) -> None:
        key = (tag.ts, tag.origin, tag.seq)
        if self._last_key is not None and key <= self._last_key:
            # Missed its agreement window: delivering it now in sequence
            # is impossible, so it leaves the agreed order explicitly.
            self._release(frame, tag, "stall")
            return
        held_since = self._hold(frame, tag)
        heapq.heappush(self._heap, (key, frame, tag, held_since))
        self._arm()

    def _arm(self) -> None:
        if self._timer_armed or not self._heap:
            return
        now = self._clock._now
        delay = max(0.0, self._heap[0][3] + self._hold_window - now)
        self._timer_armed = True
        self._clock.schedule(delay, self._round_fire)

    def _round_fire(self) -> None:
        if self._closed:
            return
        self._timer_armed = False
        heap = self._heap
        now = self._clock._now
        window = self._hold_window
        while heap and now - heap[0][3] + _STALL_EPSILON >= window:
            key, frame, tag, _held = heapq.heappop(heap)
            self._last_key = key
            self._release(frame, tag, "ready")
        self._arm()

    def flush(self) -> None:
        heap = self._heap
        while heap:
            key, frame, tag, _held = heapq.heappop(heap)
            self._last_key = key
            self._release(frame, tag, "flush")


#: Level name -> pipeline class, for :meth:`OrderingPlan.pipeline_for`.
PIPELINES = {
    FifoPipeline.level: FifoPipeline,
    CausalPipeline.level: CausalPipeline,
    TotalOrderPipeline.level: TotalOrderPipeline,
}

"""The per-run ordering plan: stamping state plus the pipeline registry.

One :class:`OrderingPlan` exists per run (or per partition process in
the multi-process deployment). It owns everything the guarantee needs
that is *not* per-node:

* the **stamper** — the :data:`repro.pubsub.messages.ORDER_STAMPER`
  callback that allocates an :class:`~repro.ordering.tags.OrderTag` for
  every freshly published frame (idempotent per ``msg_id``, so the
  persistency extension's custody *redelivery* — which re-freshens the
  same message — reuses the original tag);
* per-publication-stream sequence counters, per-node observed vector
  clocks (``causal``), and per-node Lamport clocks (``total``);
* the registry of per-broker pipelines it has handed out, which gives
  the run-level :meth:`flush` / :meth:`held_count` /
  :meth:`perf_counters` surface the runner, live runtime, and cluster
  coordinator consume.

Tags ride on the frames themselves (and on the wire in live mode), so
cross-process deployments need no shared stamping state: only the
partition hosting a publisher ever stamps its messages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ordering.pipeline import PIPELINES, DeliveryPipeline
from repro.ordering.spec import (
    DEFAULT_STALL_TIMEOUT,
    DEFAULT_TOTAL_HOLD,
    SCENARIO_STALL_TIMEOUT,
    SCENARIO_TOTAL_HOLD,
    OrderingSpec,
    parse_ordering,
)
from repro.ordering.tags import OrderTag, Stream
from repro.pubsub import messages as _messages
from repro.pubsub.messages import PacketFrame


class OrderingPlan:
    """Run-scoped ordering state for one parsed spec."""

    def __init__(
        self,
        spec: OrderingSpec,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
        total_hold: float = DEFAULT_TOTAL_HOLD,
    ) -> None:
        self.spec = spec
        self.level = spec.level
        self.stall_timeout = stall_timeout
        self.total_hold = total_hold
        # Next publish sequence per (topic, origin) publication stream.
        self._seqs: Dict[Stream, int] = {}
        # Idempotent stamp cache: msg_id -> tag (custody redelivery
        # re-freshens an already-stamped message).
        self._tags: Dict[int, OrderTag] = {}
        # Per-node observed vector clock (causal level).
        self._observed: Dict[int, Dict[Stream, int]] = {}
        # Per-node Lamport clock (total level).
        self._lamport: Dict[int, int] = {}
        self._pipelines: List[DeliveryPipeline] = []
        self._active = False

    @classmethod
    def from_text(cls, text: Optional[str], **kwargs) -> Optional["OrderingPlan"]:
        """Build a plan from config text; ``None``/empty means ordering off."""
        if not text:
            return None
        return cls(parse_ordering(text), **kwargs)

    # ------------------------------------------------------------------
    def pipeline_for(self, broker) -> DeliveryPipeline:
        """The per-broker pipeline stage for this plan's level."""
        pipeline = PIPELINES[self.level](broker, self)
        self._pipelines.append(pipeline)
        return pipeline

    # ------------------------------------------------------------------
    def stamp(self, frame: PacketFrame) -> Optional[OrderTag]:
        """The ``ORDER_STAMPER`` hook: allocate (or recall) a frame's tag."""
        cached = self._tags.get(frame.msg_id)
        if cached is not None:
            return cached
        if not self.spec.covers(frame.topic):
            return None
        origin = frame.origin
        stream = (frame.topic, origin)
        seq = self._seqs.get(stream, 0) + 1
        self._seqs[stream] = seq
        vc: Optional[Dict[Stream, int]] = None
        ts = 0
        if self.level == "causal":
            observed = self._observed.setdefault(origin, {})
            vc = dict(observed)
            vc[stream] = seq
            # The publisher observes its own publication.
            observed[stream] = seq
        elif self.level == "total":
            ts = self._lamport.get(origin, 0) + 1
            self._lamport[origin] = ts
        tag = OrderTag(origin=origin, seq=seq, vc=vc, ts=ts)
        self._tags[frame.msg_id] = tag
        return tag

    def note_delivery(self, node: int, frame: PacketFrame, tag: OrderTag) -> None:
        """Advance *node*'s clocks after a release (Lamport receive rule,
        vector-clock merge) so its future publishes carry the causality."""
        if self.level == "causal":
            observed = self._observed.setdefault(node, {})
            stream = (frame.topic, tag.origin)
            if tag.seq > observed.get(stream, 0):
                observed[stream] = tag.seq
            if tag.vc:
                for dep, count in tag.vc.items():
                    if count > observed.get(dep, 0):
                        observed[dep] = count
        elif self.level == "total":
            if tag.ts > self._lamport.get(node, 0):
                self._lamport[node] = tag.ts

    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Install this plan's stamper on the publish path."""
        _messages.set_order_stamper(self.stamp)
        self._active = True

    def deactivate(self) -> None:
        """Remove the stamper and disarm every pipeline."""
        if self._active:
            _messages.set_order_stamper(None)
            self._active = False
        for pipeline in self._pipelines:
            pipeline.close()

    def flush(self) -> None:
        """End-of-run drain of every pipeline's hold-back buffer."""
        for pipeline in self._pipelines:
            pipeline.flush()

    def held_count(self) -> int:
        """Frames currently held back across all pipelines."""
        return sum(pipeline.held_count() for pipeline in self._pipelines)

    def perf_counters(self) -> Dict[str, float]:
        """``ordering.*`` entries for ``MetricsSummary.perf``."""
        return {
            "ordering.offers": float(
                sum(p.offers for p in self._pipelines)
            ),
            "ordering.releases": float(
                sum(p.releases for p in self._pipelines)
            ),
            "ordering.stall_releases": float(
                sum(p.stall_releases for p in self._pipelines)
            ),
            "ordering.held_at_end": float(self.held_count()),
        }


def plan_from_scenario(text: Optional[str]) -> Optional[OrderingPlan]:
    """The shared scripted-scenario plan builder.

    Every substrate of the three-way conformance matrix — sim, live
    single-process, multi-process partitions — builds its plan through
    this one helper, so all three run identical (conservative) hold-back
    timings: scenario worlds retransmit through multi-second ACK
    timeouts, and the total-order agreement window must outlast the
    worst-case recovery or the substrates' agreed prefixes would
    legitimately diverge.
    """
    if not text:
        return None
    return OrderingPlan(
        parse_ordering(text),
        stall_timeout=SCENARIO_STALL_TIMEOUT,
        total_hold=SCENARIO_TOTAL_HOLD,
    )

"""Ordering-level specifications: what guarantee, on which topics.

The delivery-semantics layer is opt-in and per-topic: an ordering spec
names one *level* (:data:`LEVELS`) and, optionally, the topics it covers
(``LEVEL[:topic,...]`` — no topic list means every topic). The spec is
the only user-facing syntax; it travels as a plain string through
:class:`~repro.experiments.config.ExperimentConfig`, the CLI
(``--ordering``), and :class:`~repro.live.scenarios.Scenario` JSON, and
is parsed exactly once into an :class:`OrderingSpec`.

Validation is eager (the ``util/validation`` convention): an unknown
level raises :class:`~repro.util.errors.ConfigurationError` *listing the
valid levels* at config-build time, not hours into a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.util.errors import ConfigurationError

#: The delivery guarantees the ordering layer implements, weakest first.
#:
#: ``fifo``   — per-publisher order: two messages published on one topic by
#:             one publisher deliver in publish order at every subscriber.
#: ``causal`` — causal order via dynamic vector clocks: a message never
#:             delivers before a message it causally depends on (per-stream
#:             entries, join/leave baseline adoption under churn).
#: ``total``  — total order: every subscriber of a topic delivers the same
#:             message prefix, agreed through Lamport-timestamped keys and
#:             an EpTO-style hold-back round (see docs/ORDERING.md).
LEVELS: Tuple[str, ...] = ("fifo", "causal", "total")

#: Hold-back watchdog: a frame stuck behind a gap for longer than this is
#: stall-released (probe family ``order_stall``) so churned-away
#: publishers can never wedge a subscriber.
DEFAULT_STALL_TIMEOUT = 2.0

#: The ``total`` level's agreement window (the EpTO "round" analogue):
#: a frame is released once it has aged past this hold, by which time any
#: smaller-keyed frame must have arrived.
DEFAULT_TOTAL_HOLD = 0.25

#: Conservative scripted-scenario timings, shared verbatim by the sim,
#: single-process live, and multi-process substrates so the three-way
#: conformance suite runs the identical ordering configuration. The
#: scenario worlds retransmit through multi-second ACK timeouts, so the
#: total-order hold must comfortably exceed the worst recovery latency.
SCENARIO_STALL_TIMEOUT = 4.0
SCENARIO_TOTAL_HOLD = 1.0


@dataclass(frozen=True)
class OrderingSpec:
    """One parsed ordering directive: a level and its topic scope."""

    level: str
    #: Topics the guarantee covers; ``None`` covers every topic.
    topics: Optional[FrozenSet[int]] = None

    def covers(self, topic: int) -> bool:
        """Whether *topic* is under this spec's guarantee."""
        return self.topics is None or topic in self.topics

    def describe(self) -> str:
        """The canonical ``LEVEL[:topic,...]`` string form."""
        if self.topics is None:
            return self.level
        return f"{self.level}:{','.join(str(t) for t in sorted(self.topics))}"


def parse_ordering(text: str) -> OrderingSpec:
    """Parse ``LEVEL[:topic,...]`` into an :class:`OrderingSpec`.

    Raises :class:`ConfigurationError` — naming the valid levels — on an
    unknown level, and on empty or non-integer topic lists.
    """
    if not isinstance(text, str) or not text.strip():
        raise ConfigurationError(
            f"ordering spec must be 'LEVEL[:topic,...]' with LEVEL one of "
            f"{', '.join(LEVELS)}; got {text!r}"
        )
    level, sep, topic_part = text.strip().partition(":")
    level = level.strip()
    if level not in LEVELS:
        raise ConfigurationError(
            f"unknown ordering level {level!r}; valid levels: "
            f"{', '.join(LEVELS)}"
        )
    if not sep:
        return OrderingSpec(level=level)
    entries = [entry.strip() for entry in topic_part.split(",")]
    if not any(entries) or any(not entry for entry in entries):
        raise ConfigurationError(
            f"ordering spec {text!r} has an empty topic list; use "
            f"'{level}' alone to cover every topic"
        )
    topics = []
    for entry in entries:
        try:
            topics.append(int(entry))
        except ValueError:
            raise ConfigurationError(
                f"ordering topic {entry!r} in {text!r} is not an integer"
            ) from None
    return OrderingSpec(level=level, topics=frozenset(topics))

"""Ordering tags: the metadata a guarantee stamps onto each frame.

A tag is allocated once, at the publish origin, by the active
:class:`~repro.ordering.plan.OrderingPlan` stamper and rides on
``PacketFrame.order_tag`` through every copy, retransmission, and (in
live mode) the wire codec. Hold-back pipelines at subscriber nodes read
it; nothing in the data plane ever mutates it.

Fields are a superset across levels — ``fifo`` uses ``(origin, seq)``,
``causal`` adds the vector-clock snapshot ``vc``, ``total`` adds the
Lamport timestamp ``ts``. Unused fields stay at their neutral defaults
so one wire shape serves all three guarantees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: A vector-clock entry key: one per-(topic, origin) publication stream.
Stream = Tuple[int, int]


class OrderTag:
    """Immutable-by-convention ordering metadata for one message."""

    __slots__ = ("origin", "seq", "vc", "ts")

    def __init__(
        self,
        origin: int,
        seq: int,
        vc: Optional[Dict[Stream, int]] = None,
        ts: int = 0,
    ) -> None:
        self.origin = origin
        self.seq = seq
        self.vc = vc
        self.ts = ts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OrderTag(origin={self.origin}, seq={self.seq}, "
            f"vc={self.vc}, ts={self.ts})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderTag):
            return NotImplemented
        return (
            self.origin == other.origin
            and self.seq == other.seq
            and self.vc == other.vc
            and self.ts == other.ts
        )

    def __hash__(self) -> int:
        vc_key = None if self.vc is None else tuple(sorted(self.vc.items()))
        return hash((self.origin, self.seq, vc_key, self.ts))

    def to_wire(self) -> List:
        """A JSON-safe encoding for the live frame codec.

        The vector clock's ``(topic, origin)`` keys flatten into sorted
        ``[topic, origin, seq]`` triples so the encoding is canonical —
        two equal tags always serialize to identical bytes.
        """
        if self.vc is None:
            flat_vc = None
        else:
            flat_vc = [
                [stream[0], stream[1], seq]
                for stream, seq in sorted(self.vc.items())
            ]
        return [self.origin, self.seq, flat_vc, self.ts]

    @classmethod
    def from_wire(cls, wire: List) -> "OrderTag":
        origin, seq, flat_vc, ts = wire
        vc: Optional[Dict[Stream, int]]
        if flat_vc is None:
            vc = None
        else:
            vc = {(topic, node): count for topic, node, count in flat_vc}
        return cls(origin=origin, seq=seq, vc=vc, ts=ts)

"""Overlay-network substrate: topologies, links, failures, monitoring."""

from repro.overlay.failures import FailureSchedule, NodeFailureSchedule
from repro.overlay.links import FrameKind, LinkStats, OverlayNetwork, Transmission
from repro.overlay.monitor import LinkEstimate, LinkMonitor
from repro.overlay.topology import (
    Topology,
    clustered,
    erdos_renyi,
    full_mesh,
    line,
    random_regular,
    ring,
    star,
    waxman,
)

__all__ = [
    "FailureSchedule",
    "FrameKind",
    "LinkEstimate",
    "LinkMonitor",
    "LinkStats",
    "NodeFailureSchedule",
    "OverlayNetwork",
    "Topology",
    "Transmission",
    "clustered",
    "erdos_renyi",
    "full_mesh",
    "line",
    "random_regular",
    "ring",
    "star",
    "waxman",
]

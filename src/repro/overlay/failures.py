"""Transient link-failure schedule.

The paper's dynamic-network model (§IV-A): once every second of simulated
time, each overlay link independently fails for that entire second with
probability ``Pf``, losing every frame that crosses it in that window. The
routing layer only refreshes its link estimates every five minutes, so
individual failures are invisible to the control plane by construction.

The schedule here is *lazy and deterministic*: the failed-link set of epoch
``k`` is derived from ``(seed, k)`` alone, so (a) the injector and the
ORACLE baseline see the exact same failures, (b) the ORACLE can query the
*future* without the simulation having reached it, and (c) memory stays
bounded by the number of distinct epochs actually touched.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.overlay.topology import Edge, Topology, canonical_edge
from repro.util.validation import require_positive, require_probability


class FailureSchedule:
    """Per-epoch transient link failures, queryable at any virtual time.

    Parameters
    ----------
    topology:
        The overlay whose links fail.
    failure_probability:
        ``Pf``: independent per-link, per-epoch failure probability.
    seed:
        Root seed; epoch ``k`` uses the child stream ``(seed, k)``.
    epoch:
        Epoch length in seconds (paper: 1 s).
    """

    def __init__(
        self,
        topology: Topology,
        failure_probability: float,
        seed: int,
        epoch: float = 1.0,
    ) -> None:
        require_probability(failure_probability, "failure_probability")
        require_positive(epoch, "epoch")
        self._topology = topology
        self._pf = failure_probability
        self._seed = int(seed)
        self._epoch = epoch
        # Sorted canonical edge list: the i-th uniform draw of an epoch
        # always belongs to the same link.
        self._edges: Tuple[Edge, ...] = tuple(sorted(topology.edges()))
        self._cache: Dict[int, FrozenSet[Edge]] = {}
        self._max_cache = 4096

    @property
    def failure_probability(self) -> float:
        """Pf, the per-link per-epoch failure probability."""
        return self._pf

    @property
    def epoch(self) -> float:
        """Epoch length in seconds."""
        return self._epoch

    def epoch_index(self, time: float) -> int:
        """The epoch that contains virtual time *time*."""
        return int(time // self._epoch)

    def failed_edges(self, epoch_index: int) -> FrozenSet[Edge]:
        """The set of links failed throughout epoch *epoch_index*."""
        cached = self._cache.get(epoch_index)
        if cached is not None:
            return cached
        if self._pf == 0.0 or not self._edges:
            failed: FrozenSet[Edge] = frozenset()
        else:
            sequence = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(0xFA11, epoch_index)
            )
            rng = np.random.default_rng(sequence)
            draws = rng.random(len(self._edges))
            failed = frozenset(
                edge for edge, draw in zip(self._edges, draws) if draw < self._pf
            )
        if len(self._cache) >= self._max_cache:
            self._cache.clear()
        self._cache[epoch_index] = failed
        return failed

    def is_failed(self, u: int, v: int, time: float) -> bool:
        """Whether link (u, v) is failed at virtual time *time*."""
        return canonical_edge(u, v) in self.failed_edges(self.epoch_index(time))

    def long_run_failure_fraction(self) -> float:
        """Expected fraction of time a link is failed (= Pf)."""
        return self._pf


class NodeFailureSchedule:
    """Optional node-crash model (paper §V future work, built as extension).

    A node failed during an epoch loses every frame it would send *or*
    receive — equivalently, all its links behave as failed. Disabled by
    default (``failure_probability=0``) in the paper-faithful experiments.
    """

    def __init__(
        self,
        topology: Topology,
        failure_probability: float,
        seed: int,
        epoch: float = 1.0,
        protected_nodes: Optional[FrozenSet[int]] = None,
    ) -> None:
        require_probability(failure_probability, "failure_probability")
        require_positive(epoch, "epoch")
        self._topology = topology
        self._pf = failure_probability
        self._seed = int(seed)
        self._epoch = epoch
        self._protected = protected_nodes or frozenset()
        self._cache: Dict[int, FrozenSet[int]] = {}
        self._max_cache = 4096

    @property
    def failure_probability(self) -> float:
        """Per-node per-epoch crash probability."""
        return self._pf

    def epoch_index(self, time: float) -> int:
        """The epoch that contains virtual time *time*."""
        return int(time // self._epoch)

    def failed_nodes(self, epoch_index: int) -> FrozenSet[int]:
        """Nodes down throughout epoch *epoch_index*."""
        cached = self._cache.get(epoch_index)
        if cached is not None:
            return cached
        if self._pf == 0.0:
            failed: FrozenSet[int] = frozenset()
        else:
            sequence = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(0x0DE5, epoch_index)
            )
            rng = np.random.default_rng(sequence)
            draws = rng.random(self._topology.num_nodes)
            failed = frozenset(
                node
                for node, draw in zip(self._topology.nodes, draws)
                if draw < self._pf and node not in self._protected
            )
        if len(self._cache) >= self._max_cache:
            self._cache.clear()
        self._cache[epoch_index] = failed
        return failed

    def is_failed(self, node: int, time: float) -> bool:
        """Whether *node* is down at virtual time *time*."""
        return node in self.failed_nodes(self.epoch_index(time))

"""The overlay data plane: frame transmission over lossy, failing links.

:class:`OverlayNetwork` binds together the event kernel, a
:class:`~repro.overlay.topology.Topology`, a per-transmission random-loss
model (``Pl``), the per-second :class:`~repro.overlay.failures.FailureSchedule`
(``Pf``), and optionally a node-crash schedule. Broker runtimes attach a
frame handler per node and call :meth:`OverlayNetwork.transmit`; the network
decides whether the frame survives and, if so, delivers it one link delay
later.

Loss semantics (documented in DESIGN.md §5.3):

* a frame is lost if its link is inside a failed epoch at *departure* time;
* otherwise it is lost with independent probability ``Pl``;
* node failures (extension) drop frames whose sender or receiver is down;
* DATA and ACK frames are subject to the same hazards.

``transmit`` is the single hottest call of the data plane (every DATA frame,
ACK, and retransmission goes through it), so per-direction immutable state —
propagation delay, effective loss rate, receiver handler — is resolved once
into :attr:`OverlayNetwork._dir_cache` and reused; the cache is invalidated
whenever a handler attaches/detaches or ``link_loss_rates`` is mutated.

:class:`OverlayNetwork` is the simulated implementation of the substrate
:class:`~repro.substrate.Transport` contract; the live runtime substitutes
:class:`~repro.live.transport.LiveTransport` (asyncio TCP) behind the same
attach/transmit surface. :meth:`OverlayNetwork.install_fault_filter` is
the sim-side twin of the live transport's fault-injection shim, so the
differential conformance suite can script identical adversarial worlds on
both substrates.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro import probes as _probes
from repro.overlay.failures import FailureSchedule, NodeFailureSchedule
from repro.overlay.topology import Topology, canonical_edge
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import SimulationError
from repro.util.validation import require_probability

FrameHandler = Callable[[int, Any], None]
"""Signature of a node's receive hook: ``handler(sender, frame)``."""

_INF = float("inf")
_heappush = heapq.heappush


class FrameKind(enum.Enum):
    """Classes of frames the accounting distinguishes."""

    DATA = "data"
    ACK = "ack"
    PROBE = "probe"

    # Enum's default __hash__ is a Python-level method; members are
    # singletons, so the C-level identity hash is equivalent for dict keys
    # and much cheaper. Determinism is unaffected: dicts iterate in
    # insertion order, and no code orders FrameKind members by hash.
    __hash__ = object.__hash__


#: Dense index of each kind into the flat per-kind counter rows
#: (:class:`LinkStats`); assigned as a member attribute so hot paths can
#: translate a kind into a list slot with one attribute load.
FrameKind.DATA.idx = 0
FrameKind.ACK.idx = 1
FrameKind.PROBE.idx = 2

_DATA_IDX, _ACK_IDX = 0, 1


class _KindCounters:
    """Dict-like facade over one flat per-kind counter row.

    The hot path owns the underlying list and increments
    ``row[kind.idx]`` directly; this view preserves the historical mapping
    API (``stats.sent[FrameKind.DATA]``, ``.values()``, ``.items()``) for
    tests, metrics, and external consumers. Writes through the view reach
    the same flat row.
    """

    __slots__ = ("_row",)

    def __init__(self, row: list) -> None:
        self._row = row

    def __getitem__(self, kind: FrameKind):
        return self._row[kind.idx]

    def __setitem__(self, kind: FrameKind, value) -> None:
        self._row[kind.idx] = value

    def get(self, kind, default=None):
        try:
            return self._row[kind.idx]
        except AttributeError:
            return default

    def __contains__(self, kind) -> bool:
        return isinstance(kind, FrameKind)

    def __len__(self) -> int:
        return len(self._row)

    def __iter__(self):
        return iter(FrameKind)

    def keys(self):
        return tuple(FrameKind)

    def values(self):
        return tuple(self._row)

    def items(self):
        return tuple(zip(FrameKind, self._row))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _KindCounters):
            return self._row == other._row
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self.items()))


class LinkStats:
    """Aggregate transmission counters, per frame kind — flat storage.

    Counters live in preallocated parallel lists indexed by
    ``FrameKind.idx`` (DATA=0, ACK=1, PROBE=2), so the per-frame hot path
    performs one C-level list index instead of a dict probe per counter.
    The historical per-kind mappings (``sent``, ``volume``, ``delivered``,
    ...) remain available as :class:`_KindCounters` views over the same
    rows.

    ``sent`` counts frames (the paper's packets metric); ``volume`` sums
    frame *sizes* (in units of one full message), which differs from the
    count only for FEC fragments.
    """

    __slots__ = (
        "_sent",
        "_volume",
        "_delivered",
        "_lost_failure",
        "_lost_random",
        "_lost_node_down",
        "_lost_injected",
        "_dropped_expired",
    )

    def __init__(self) -> None:
        self._sent = [0, 0, 0]
        self._volume = [0.0, 0.0, 0.0]
        self._delivered = [0, 0, 0]
        self._lost_failure = [0, 0, 0]
        self._lost_random = [0, 0, 0]
        self._lost_node_down = [0, 0, 0]
        self._lost_injected = [0, 0, 0]
        self._dropped_expired = [0, 0, 0]

    @property
    def sent(self) -> _KindCounters:
        return _KindCounters(self._sent)

    @property
    def volume(self) -> _KindCounters:
        return _KindCounters(self._volume)

    @property
    def delivered(self) -> _KindCounters:
        return _KindCounters(self._delivered)

    @property
    def lost_failure(self) -> _KindCounters:
        return _KindCounters(self._lost_failure)

    @property
    def lost_random(self) -> _KindCounters:
        return _KindCounters(self._lost_random)

    @property
    def lost_node_down(self) -> _KindCounters:
        return _KindCounters(self._lost_node_down)

    @property
    def lost_injected(self) -> _KindCounters:
        """Frames dropped by an installed deterministic fault filter."""
        return _KindCounters(self._lost_injected)

    @property
    def dropped_expired(self) -> _KindCounters:
        return _KindCounters(self._dropped_expired)

    def data_sent(self) -> int:
        """Number of DATA-frame link transmissions (the paper's traffic metric)."""
        return self._sent[_DATA_IDX]

    def data_volume(self) -> float:
        """Size-weighted DATA traffic (equals :meth:`data_sent` without FEC)."""
        return self._volume[_DATA_IDX]

    def loss_fraction(self, kind: FrameKind) -> float:
        """Fraction of *kind* frames that did not arrive."""
        sent = self._sent[kind.idx]
        if sent == 0:
            return 0.0
        return 1.0 - self._delivered[kind.idx] / sent


@dataclass(frozen=True)
class Transmission:
    """A record of one frame handed to the network (used by tests/tracing).

    ``survived`` reflects the *link hazards at departure time* (failed
    epoch, random loss, node down). A frame accepted onto a busy EDF
    direction is recorded ``survived=True`` at enqueue; if the
    ``edf_drop_expired`` overload policy later discards it, a **follow-up
    record** with ``expired=True`` (and ``survived=False``) is appended at
    drop time, so the trace reconciles exactly with
    ``stats.dropped_expired``.
    """

    time: float
    src: int
    dst: int
    kind: FrameKind
    survived: bool
    expired: bool = False


class _LossRateMap(dict):
    """``link_loss_rates`` view that invalidates the direction cache.

    Tests (and future dynamic-loss extensions) mutate
    ``network.link_loss_rates`` in place after construction; the effective
    loss per direction is baked into ``_dir_cache``, so every mutation must
    drop the cached entries.
    """

    __slots__ = ("_owner",)

    def __init__(self, data: Dict[tuple, float], owner: "OverlayNetwork") -> None:
        super().__init__(data)
        self._owner = owner

    def _invalidate(self) -> None:
        self._owner._dir_cache.clear()

    def __setitem__(self, key: tuple, value: float) -> None:
        super().__setitem__(key, value)
        self._invalidate()

    def __delitem__(self, key: tuple) -> None:
        super().__delitem__(key)
        self._invalidate()

    def update(self, *args: Any, **kwargs: Any) -> None:
        super().update(*args, **kwargs)
        self._invalidate()

    def pop(self, *args: Any) -> Any:
        value = super().pop(*args)
        self._invalidate()
        return value

    def clear(self) -> None:
        super().clear()
        self._invalidate()

    def setdefault(self, *args: Any) -> Any:
        value = super().setdefault(*args)
        self._invalidate()
        return value


class OverlayNetwork:
    """Unreliable frame delivery between adjacent brokers.

    Parameters
    ----------
    sim:
        The discrete-event kernel.
    topology:
        The overlay graph with link delays.
    streams:
        Named RNG streams; random loss draws come from ``streams.get("loss")``.
    loss_rate:
        ``Pl``, independent per-transmission loss probability (uniform).
    link_loss_rates:
        Optional per-link overrides (canonical edge -> Pl). Links absent
        from the mapping fall back to the uniform ``loss_rate``.
        Heterogeneous loss is what makes Theorem 1's d/r ordering differ
        from plain delay ordering.
    failures:
        Optional transient link-failure schedule (``None`` = no failures).
    node_failures:
        Optional node-crash schedule (extension; ``None`` = no crashes).
    service_time:
        Optional per-frame serialisation time in seconds (finite link
        capacity). When set, each link *direction* is a single server: a
        frame occupies the link for ``service_time * size`` before its
        propagation delay starts, and frames queue behind each other.
        ``None`` (the paper's model) means infinite capacity — frames
        never queue. ACKs are assumed negligibly small and skip the queue.
    queue_discipline:
        How a busy link direction orders waiting DATA frames: ``"fifo"``
        (default, arrival order) or ``"edf"`` (earliest deadline first,
        by ``frame.priority``; ties arrival order). EDF implements the
        classical "priority-based queueing" alternative the paper's
        introduction contrasts DCRD against.
    trace:
        When true, every transmission is appended to :attr:`transmissions`
        (memory-hungry; intended for tests and debugging).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        streams: RandomStreams,
        loss_rate: float = 0.0,
        failures: Optional[FailureSchedule] = None,
        node_failures: Optional[NodeFailureSchedule] = None,
        service_time: Optional[float] = None,
        link_loss_rates: Optional[Dict[tuple, float]] = None,
        queue_discipline: str = "fifo",
        edf_drop_expired: bool = False,
        trace: bool = False,
    ) -> None:
        require_probability(loss_rate, "loss_rate")
        if link_loss_rates:
            for edge, rate in link_loss_rates.items():
                require_probability(rate, f"link_loss_rates[{edge}]")
        if queue_discipline not in ("fifo", "edf"):
            raise SimulationError(
                f"unknown queue_discipline {queue_discipline!r}"
            )
        self.edf_drop_expired = edf_drop_expired
        if service_time is not None and not service_time > 0:
            raise SimulationError(f"service_time must be > 0, got {service_time}")
        self.sim = sim
        self.topology = topology
        self.loss_rate = loss_rate
        self.failures = failures
        self.node_failures = node_failures
        self.service_time = service_time
        self.queue_discipline = queue_discipline
        self.stats = LinkStats()
        # Flat per-kind counter rows, bound once: the hot path increments
        # ``row[idx]`` (one C-level list index) instead of probing the
        # facade mapping per frame.
        stats = self.stats
        self._sent = stats._sent
        self._volume = stats._volume
        self._delivered = stats._delivered
        self._lost_failure = stats._lost_failure
        self._lost_random = stats._lost_random
        self._lost_node_down = stats._lost_node_down
        self._lost_injected = stats._lost_injected
        # Optional deterministic fault seam (install_fault_filter): the
        # sim-side twin of the live transport's fault-injection shim. None
        # (the default) keeps every hot path on its historical branch.
        self._fault_filter: Optional[Callable[[int, int, FrameKind, Any], bool]] = None
        self.transmissions: list = []
        self._trace = trace
        self._loss_rng = streams.get("loss")
        self._loss_draw = self._loss_rng.random
        # Direct calendar-queue access for the per-frame delivery push in
        # transmit (the hottest call of a run). Equivalent to
        # sim.schedule_fire minus the call overhead; both aliases stay valid
        # because the kernel mutates its heap strictly in place.
        self._sim_heap = sim._heap
        self._sim_seq = sim._seq
        self._handlers: Dict[int, FrameHandler] = {}
        # Dedicated ACK sinks (attach_ack): deliveries of ACK frames go
        # straight to the sink, skipping the generic handler's per-frame
        # class dispatch. Optional — nodes without one fall back to their
        # generic handler, preserving the historical delivery contract.
        self._ack_handlers: Dict[int, FrameHandler] = {}
        # Fast-path ACK-loss subscribers (see register_ack_loss_observer).
        self._ack_loss_observers: list = []
        # Hot-loop per-direction constants, keyed by the packed direction id
        # (src << 21 | dst): (propagation delay, effective loss, handler at
        # dst, canonical edge, compiled DATA delivery closure or None,
        # compiled ACK delivery closure or None). Resolved lazily on first
        # use; cleared whenever handlers or loss rates change.
        self._dir_cache: Dict[int, tuple] = {}
        #: Direction resolutions performed outside the interned table —
        #: the facade-fallback count the flat-path perf layer reports.
        #: :meth:`prewarm_directions` zeroes it after interning everything.
        self.dir_fallbacks = 0
        # Current-epoch failed-edge set, refreshed when the clock crosses an
        # epoch boundary (equivalent to failures.is_failed per frame). Only
        # valid for the real epoch-granular FailureSchedule — duck-typed
        # doubles (e.g. scripted sub-epoch windows) take the generic path.
        self._epoch_failures = failures is not None and type(failures) is FailureSchedule
        self._failure_epoch_len = failures.epoch if failures is not None else 1.0
        # End of the epoch window _failed_edges_now is valid for; a float
        # compare against now replaces an int division per frame.
        self._failure_window_end = -_INF
        self._failed_edges_now: frozenset = frozenset()
        self.link_loss_rates = _LossRateMap(dict(link_loss_rates or {}), self)
        self._queueing = service_time is not None
        self._edf = queue_discipline == "edf"
        # Per-direction FIFO occupancy: (src, dst) -> time the link frees up.
        self._busy_until: Dict[tuple, float] = {}
        # EDF discipline state: per-direction waiting heaps + busy flags +
        # aggregate queued size (keeps queueing_backlog O(1)).
        self._edf_queue: Dict[tuple, list] = {}
        self._edf_busy: Dict[tuple, bool] = {}
        self._edf_queued_size: Dict[tuple, float] = {}
        self._edf_seq = 0
        # The dedicated send_data/send_ack fast paths only cover the
        # infinite-capacity, no-crash, no-trace configuration (the paper's
        # model and the benchmark scenario); everything else falls back to
        # the generic transmit.
        self._fast_sends = (
            node_failures is None and service_time is None and not trace
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, node: int, handler: FrameHandler) -> None:
        """Register *handler* as the frame sink of *node*."""
        if node not in self.topology.nodes:
            raise SimulationError(f"node {node} is not in the topology")
        self._handlers[node] = handler
        self._dir_cache.clear()

    def attach_ack(self, node: int, handler: FrameHandler) -> None:
        """Register a dedicated ACK sink for *node*.

        ACK frames delivered to *node* are handed to ``handler(sender,
        ack)`` directly, skipping the generic handler's per-frame class
        dispatch. A node without an ACK sink keeps receiving ACKs through
        its generic handler, so attaching one is a pure fast path.
        """
        if node not in self.topology.nodes:
            raise SimulationError(f"node {node} is not in the topology")
        self._ack_handlers[node] = handler
        self._dir_cache.clear()

    def install_fault_filter(
        self, fault_filter: Optional[Callable[[int, int, FrameKind, Any], bool]]
    ) -> None:
        """Install a deterministic transport-seam fault filter (or remove it).

        ``fault_filter(src, dst, kind, frame) -> bool`` is consulted once
        per transmission, after the send is counted but before any link
        hazard; returning ``True`` drops the frame at the seam (counted in
        ``stats.lost_injected``, cause ``"injected"``). This is the
        simulated twin of the live transport's fault-injection shim (see
        :mod:`repro.live.faults`), letting the differential conformance
        suite script identical adversarial worlds on both substrates —
        e.g. per-direction per-kind drop-all rules the epoch-granular
        :class:`~repro.overlay.failures.FailureSchedule` cannot express.
        Injected ACK drops notify the registered ACK-loss observers, so
        latent ARQ timers still materialise correctly. With no filter
        installed (the default) every path is behaviour-identical to the
        historical network — the fingerprint matrix pins this.
        """
        self._fault_filter = fault_filter

    def register_ack_loss_observer(self, observer: Callable[[int], None]) -> None:
        """Subscribe to synchronous ACK-send losses on the fast path.

        *observer(transfer_id)* is invoked from :meth:`send_ack` at the
        instant an ACK reply is lost to a link failure or the random-loss
        draw. The ARQ layer uses this to materialise latent retransmission
        timers only for copies whose ACK can no longer arrive, instead of
        scheduling (and almost always cancelling) a timer per copy.
        """
        self._ack_loss_observers.append(observer)

    def ack_round_trip(self, src: int, dst: int) -> Optional[tuple]:
        """``(d_fwd, d_rev)`` when a DATA copy ``src -> dst`` and its ACK
        reply both run on compiled fast-path deliveries, else ``None``.

        The pair lets the ARQ layer decide *exactly* whether an unlossed
        ACK's arrival event ``(now + d_fwd) + d_rev`` precedes a timeout
        deadline (same float arithmetic the scheduler performs). Valid
        while the attachment set is stable — the composition root attaches
        every handler before the run and never detaches mid-run.
        """
        if not self._fast_sends:
            return None
        key = (src << 21) | dst
        fwd = self._dir_cache.get(key)
        if fwd is None:
            fwd = self._resolve_direction(src, dst)
        rkey = (dst << 21) | src
        rev = self._dir_cache.get(rkey)
        if rev is None:
            rev = self._resolve_direction(dst, src)
        if fwd[4] is None or rev[5] is None:
            return None
        return (fwd[0], rev[0])

    def detach(self, node: int) -> None:
        """Remove *node*'s handlers; frames to it are silently dropped."""
        self._handlers.pop(node, None)
        self._ack_handlers.pop(node, None)
        self._dir_cache.clear()

    def _resolve_direction(self, src: int, dst: int) -> tuple:
        """Build and memoise the per-direction hot-loop constants.

        Besides the flat per-direction fields (delay, effective loss,
        handler, canonical edge) the entry carries two *compiled delivery
        closures* — one per data-plane frame kind — that capture the
        direction's endpoints, the receiver's sink, and the flat delivered
        row, so a scheduled delivery runs without re-resolving any of them.
        Closures are only compiled when delivery is unconditional (a
        handler exists and no node-crash schedule can interpose); other
        directions keep the generic :meth:`_deliver` path. Handler changes
        invalidate the whole table (attach/detach clear it), so compiled
        closures are never stale for frames transmitted afterwards.
        """
        if not self.topology.has_edge(src, dst):
            raise SimulationError(f"no overlay link {src} -> {dst}")
        cedge = canonical_edge(src, dst)
        handler = self._handlers.get(dst)
        deliver_data = deliver_ack = None
        if handler is not None and self.node_failures is None:
            sim = self.sim
            delivered = self._delivered

            def deliver_data(frame):
                delivered[0] += 1
                probe = _probes.on_arrive
                if probe is not None:
                    probe(sim._now, src, dst, frame)
                handler(src, frame)

            ack_sink = self._ack_handlers.get(dst)
            if ack_sink is not None:

                def deliver_ack(frame):
                    delivered[1] += 1
                    ack_sink(src, frame)

            else:

                def deliver_ack(frame):
                    delivered[1] += 1
                    handler(src, frame)

        entry = (
            self.topology.delay(src, dst),
            self.link_loss_rates.get(cedge, self.loss_rate),
            handler,
            cedge,
            deliver_data,
            deliver_ack,
        )
        self._dir_cache[(src << 21) | dst] = entry
        return entry

    def prewarm_directions(self) -> None:
        """Intern every link direction, then zero the fallback counter.

        Called by the composition root once all handlers are attached:
        every directed link gets its flat entry (and compiled delivery
        closures) built up front, so the run's timed region starts with a
        fully interned direction table and :attr:`dir_fallbacks` counts
        only true facade fallbacks during the run.
        """
        for u, v in self.topology.edges():
            self._resolve_direction(u, v)
            self._resolve_direction(v, u)
        self.dir_fallbacks = 0

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def transmit(
        self, src: int, dst: int, frame: Any, kind: FrameKind, reliable: bool = False
    ) -> bool:
        """Send *frame* from *src* to the adjacent node *dst*.

        ``reliable=True`` skips the random-loss draw (transient link
        failures and node crashes still apply); it exists solely for the
        ORACLE upper-bound baseline, which by definition is not hampered by
        recoverable randomness.

        Returns whether the frame survived the link hazards (the *caller
        must not use this for protocol decisions* — real senders learn the
        outcome only via ACKs; the return value exists for tests and the
        tracing layer).
        """
        entry = self._dir_cache.get((src << 21) | dst)
        if entry is None:
            self.dir_fallbacks += 1
            entry = self._resolve_direction(src, dst)
        delay: Optional[float] = entry[0]
        now = self.sim._now
        if kind is FrameKind.DATA:
            kidx = 0
            # PacketFrame always carries size; tests transmit bare objects.
            try:
                size = frame.size
            except AttributeError:
                size = 1.0
        else:
            kidx = kind.idx
            size = 1.0  # ACKs/probes are negligibly small (no size field)
        self._sent[kidx] += 1
        self._volume[kidx] += size
        fault = self._fault_filter
        if fault is not None and fault(src, dst, kind, frame):
            # Scripted seam drop: mirrors the live shim's accounting — the
            # send was counted, the loss is itemised as "injected".
            self._lost_injected[kidx] += 1
            if kind is FrameKind.DATA:
                probe_tx = _probes.on_transmit
                if probe_tx is not None:
                    probe_tx(now, src, dst, frame, False, "injected", entry[0], None)
            elif kind is FrameKind.ACK:
                self._notify_ack_loss(frame)
            if self._trace:
                self.transmissions.append(Transmission(now, src, dst, kind, False))
            return False
        survived = True
        node_failures = self.node_failures
        if node_failures is not None and (
            node_failures.is_failed(src, now) or node_failures.is_failed(dst, now)
        ):
            self._lost_node_down[kidx] += 1
            survived = False
            cause = "node_down"
        else:
            failures = self.failures
            link_down = False
            if failures is not None:
                if self._epoch_failures:
                    # Inlined _link_failed fast path: refresh the cached
                    # failed-edge set on epoch crossings only.
                    if now >= self._failure_window_end:
                        epoch = int(now // self._failure_epoch_len)
                        self._failure_window_end = (
                            epoch + 1
                        ) * self._failure_epoch_len
                        self._failed_edges_now = failures.failed_edges(epoch)
                    link_down = entry[3] in self._failed_edges_now
                else:
                    link_down = failures.is_failed(src, dst, now)
            if link_down:
                self._lost_failure[kidx] += 1
                survived = False
                cause = "link_failure"
            else:
                effective_loss = entry[1]
                if (
                    not reliable
                    and effective_loss > 0.0
                    and self._loss_draw() < effective_loss
                ):
                    self._lost_random[kidx] += 1
                    survived = False
                    cause = "random_loss"
        # Probe hook (observation-only, DATA frames only; ACK arrivals are
        # traced at the ARQ layer where they are matched to their copy).
        probe_tx = _probes.on_transmit if kind is FrameKind.DATA else None
        if survived:
            if self._queueing and kind is FrameKind.DATA:
                if self._edf:
                    if probe_tx is not None:
                        # The EDF server decides the wait later (queue=None).
                        probe_tx(now, src, dst, frame, True, None, entry[0], None)
                    # Delivery is scheduled by the per-direction EDF server.
                    self._edf_enqueue(src, dst, frame, kind, size)
                    delay = None
                else:
                    # FIFO serialisation: wait for the direction to free
                    # up, hold it for a size-scaled service time, propagate.
                    key = (src, dst)
                    start = self._busy_until.get(key, 0.0)
                    if start < now:
                        start = now
                    finish = start + self.service_time * size
                    self._busy_until[key] = finish
                    if probe_tx is not None:
                        probe_tx(
                            now, src, dst, frame, True, None, entry[0],
                            start - now,
                        )
                    if start > now:
                        probe_enq = _probes.on_enqueue
                        if probe_enq is not None:
                            probe_enq(now, src, dst, frame, start - now)
                    delay = (finish - now) + delay
            elif probe_tx is not None:
                probe_tx(now, src, dst, frame, True, None, entry[0], 0.0)
            if delay is not None:
                # Deliveries are never cancelled: inlined sim.schedule_fire
                # (link delays are positive by construction, so the
                # negative-delay guard is statically satisfied). Directions
                # with a compiled closure schedule it with a 1-tuple
                # payload; the rest take the generic _deliver.
                if kind is FrameKind.DATA:
                    deliver = entry[4]
                elif kind is FrameKind.ACK:
                    deliver = entry[5]
                else:
                    deliver = None
                if deliver is not None:
                    _heappush(
                        self._sim_heap,
                        (now + delay, next(self._sim_seq), deliver, (frame,)),
                    )
                else:
                    _heappush(
                        self._sim_heap,
                        (
                            now + delay,
                            next(self._sim_seq),
                            self._deliver,
                            (src, dst, frame, kind),
                        ),
                    )
                self.sim._live += 1
        elif probe_tx is not None:
            probe_tx(now, src, dst, frame, False, cause, entry[0], None)
        if self._trace:
            self.transmissions.append(Transmission(now, src, dst, kind, survived))
        return survived

    def send_data(self, src: int, dst: int, frame: Any) -> Optional[bool]:
        """DATA-frame fast path for the ARQ layer (PacketFrames only).

        Behaviour-identical to ``transmit(src, dst, frame,
        FrameKind.DATA)`` restricted to the configuration it is specialised
        for — infinite-capacity links, no node-crash schedule, no
        transmission trace (:attr:`_fast_sends`); anything else delegates
        to the generic path. Consumes the same loss draws in the same
        order and fires the same ``on_transmit`` probe.

        Returns ``True`` when a compiled delivery closure was scheduled
        (the copy *will* reach the receiver's handler), ``False`` when the
        copy was lost synchronously, and ``None`` when the outcome is not
        knowable here (generic fallback). The ARQ layer keys its latent
        timer elision off this tri-state.
        """
        if not self._fast_sends:
            self.transmit(src, dst, frame, FrameKind.DATA)
            return None
        entry = self._dir_cache.get((src << 21) | dst)
        if entry is None:
            self.dir_fallbacks += 1
            entry = self._resolve_direction(src, dst)
        now = self.sim._now
        self._sent[0] += 1
        self._volume[0] += frame.size
        fault = self._fault_filter
        if fault is not None and fault(src, dst, FrameKind.DATA, frame):
            self._lost_injected[0] += 1
            probe_tx = _probes.on_transmit
            if probe_tx is not None:
                probe_tx(now, src, dst, frame, False, "injected", entry[0], None)
            return False
        failures = self.failures
        if failures is not None:
            if self._epoch_failures:
                if now >= self._failure_window_end:
                    epoch = int(now // self._failure_epoch_len)
                    self._failure_window_end = (epoch + 1) * self._failure_epoch_len
                    self._failed_edges_now = failures.failed_edges(epoch)
                link_down = entry[3] in self._failed_edges_now
            else:
                link_down = failures.is_failed(src, dst, now)
            if link_down:
                self._lost_failure[0] += 1
                probe_tx = _probes.on_transmit
                if probe_tx is not None:
                    probe_tx(
                        now, src, dst, frame, False, "link_failure", entry[0], None
                    )
                return False
        effective_loss = entry[1]
        if effective_loss > 0.0 and self._loss_draw() < effective_loss:
            self._lost_random[0] += 1
            probe_tx = _probes.on_transmit
            if probe_tx is not None:
                probe_tx(now, src, dst, frame, False, "random_loss", entry[0], None)
            return False
        probe_tx = _probes.on_transmit
        if probe_tx is not None:
            probe_tx(now, src, dst, frame, True, None, entry[0], 0.0)
        deliver = entry[4]
        if deliver is not None:
            _heappush(
                self._sim_heap,
                (now + entry[0], next(self._sim_seq), deliver, (frame,)),
            )
            self.sim._live += 1
            return True
        self.dir_fallbacks += 1
        _heappush(
            self._sim_heap,
            (
                now + entry[0],
                next(self._sim_seq),
                self._deliver,
                (src, dst, frame, FrameKind.DATA),
            ),
        )
        self.sim._live += 1
        return None

    def send_ack(self, src: int, dst: int, frame: Any) -> Optional[bool]:
        """ACK-frame fast path for broker replies.

        Behaviour-identical to ``transmit(src, dst, frame,
        FrameKind.ACK)`` under :attr:`_fast_sends` (ACKs never queue and
        never fire the DATA-only transmit probe); the same loss draws are
        consumed in the same order. Synchronous losses additionally notify
        the registered ACK-loss observers (see
        :meth:`register_ack_loss_observer`) so the ARQ layer can
        materialise the copy's latent retransmission timer. The tri-state
        return mirrors :meth:`send_data`.
        """
        if not self._fast_sends:
            self.transmit(src, dst, frame, FrameKind.ACK)
            return None
        entry = self._dir_cache.get((src << 21) | dst)
        if entry is None:
            self.dir_fallbacks += 1
            entry = self._resolve_direction(src, dst)
        now = self.sim._now
        self._sent[1] += 1
        self._volume[1] += 1.0
        fault = self._fault_filter
        if fault is not None and fault(src, dst, FrameKind.ACK, frame):
            self._lost_injected[1] += 1
            self._notify_ack_loss(frame)
            return False
        failures = self.failures
        if failures is not None:
            if self._epoch_failures:
                if now >= self._failure_window_end:
                    epoch = int(now // self._failure_epoch_len)
                    self._failure_window_end = (epoch + 1) * self._failure_epoch_len
                    self._failed_edges_now = failures.failed_edges(epoch)
                link_down = entry[3] in self._failed_edges_now
            else:
                link_down = failures.is_failed(src, dst, now)
            if link_down:
                self._lost_failure[1] += 1
                self._notify_ack_loss(frame)
                return False
        effective_loss = entry[1]
        if effective_loss > 0.0 and self._loss_draw() < effective_loss:
            self._lost_random[1] += 1
            self._notify_ack_loss(frame)
            return False
        deliver = entry[5]
        if deliver is not None:
            _heappush(
                self._sim_heap,
                (now + entry[0], next(self._sim_seq), deliver, (frame,)),
            )
            self.sim._live += 1
            return True
        self.dir_fallbacks += 1
        _heappush(
            self._sim_heap,
            (
                now + entry[0],
                next(self._sim_seq),
                self._deliver,
                (src, dst, frame, FrameKind.ACK),
            ),
        )
        self.sim._live += 1
        return None

    def _notify_ack_loss(self, frame: Any) -> None:
        observers = self._ack_loss_observers
        if not observers:
            return
        transfer_id = getattr(frame, "transfer_id", None)
        if transfer_id is None:
            return
        for observer in observers:
            observer(transfer_id)

    def _deliver(self, src: int, dst: int, frame: Any, kind: FrameKind) -> None:
        # A node that crashed while the frame was in flight cannot receive it.
        node_failures = self.node_failures
        if node_failures is not None and node_failures.is_failed(dst, self.sim._now):
            self._lost_node_down[kind.idx] += 1
            if kind is FrameKind.DATA:
                probe = _probes.on_arrival_drop
                if probe is not None:
                    probe(self.sim._now, src, dst, frame, "node_down_arrival")
            return
        # The cached handler is current: attach/detach clear the cache.
        entry = self._dir_cache.get((src << 21) | dst)
        handler = entry[2] if entry is not None else self._handlers.get(dst)
        if handler is None:
            if kind is FrameKind.DATA:
                probe = _probes.on_arrival_drop
                if probe is not None:
                    probe(self.sim._now, src, dst, frame, "no_handler")
            return
        self._delivered[kind.idx] += 1
        if kind is FrameKind.DATA:
            probe = _probes.on_arrive
            if probe is not None:
                probe(self.sim._now, src, dst, frame)
        handler(src, frame)

    # ------------------------------------------------------------------
    # EDF link server (queue_discipline="edf")
    # ------------------------------------------------------------------
    def _edf_enqueue(
        self, src: int, dst: int, frame: Any, kind: FrameKind, size: float
    ) -> None:
        key = (src, dst)
        self._edf_seq += 1
        try:
            priority = frame.priority
        except AttributeError:
            priority = _INF
        heapq.heappush(
            self._edf_queue.setdefault(key, []),
            (priority, self._edf_seq, frame, kind, size),
        )
        self._edf_queued_size[key] = self._edf_queued_size.get(key, 0.0) + size
        if not self._edf_busy.get(key, False):
            self._edf_serve_next(key)

    def _edf_serve_next(self, key: tuple) -> None:
        queue = self._edf_queue.get(key)
        if self.edf_drop_expired and queue:
            # Expired frames can no longer meet their deadline even with
            # zero further delay; dropping them frees capacity for frames
            # that still can (the textbook overload policy).
            now = self.sim.now
            entry = self._dir_cache.get((key[0] << 21) | key[1])
            prop = entry[0] if entry is not None else self.topology.delay(*key)
            while queue and queue[0][0] < now + prop:
                _, _, dropped, kind, size = heapq.heappop(queue)
                self.stats._dropped_expired[kind.idx] += 1
                self._edf_queued_size[key] -= size
                probe = _probes.on_expire
                if probe is not None:
                    probe(now, key[0], key[1], dropped)
                if self._trace:
                    self.transmissions.append(
                        Transmission(now, key[0], key[1], kind, False, expired=True)
                    )
        if not queue:
            self._edf_busy[key] = False
            return
        self._edf_busy[key] = True
        _, _, frame, kind, size = heapq.heappop(queue)
        self._edf_queued_size[key] -= size
        assert self.service_time is not None
        self.sim.schedule_fire(
            self.service_time * size, self._edf_finish, key, frame, kind
        )

    def _edf_finish(self, key: tuple, frame: Any, kind: FrameKind) -> None:
        src, dst = key
        entry = self._dir_cache.get((src << 21) | dst)
        delay = entry[0] if entry is not None else self.topology.delay(src, dst)
        self.sim.schedule_fire(delay, self._deliver, src, dst, frame, kind)
        self._edf_serve_next(key)

    # ------------------------------------------------------------------
    # Convenience queries used by routing layers
    # ------------------------------------------------------------------
    def queueing_backlog(self, src: int, dst: int) -> float:
        """Seconds until the (src, dst) direction frees up (0 = idle).

        For the EDF discipline this is a lower bound: the aggregate
        service time still queued on the direction, read from a counter
        maintained at enqueue/dequeue time (O(1), not a heap scan).
        """
        if self.service_time is None:
            return 0.0
        if self._edf:
            key = (src, dst)
            backlog = self._edf_queued_size.get(key, 0.0) * self.service_time
            if self._edf_busy.get(key, False):
                backlog += self.service_time  # at most one service remains
            return backlog
        return max(0.0, self._busy_until.get((src, dst), 0.0) - self.sim.now)

    def link_up(self, u: int, v: int) -> bool:
        """Whether link (u, v) is outside any failed epoch right now."""
        if self.failures is None:
            return True
        return not self.failures.is_failed(u, v, self.sim.now)

    def expected_success_probability(self) -> float:
        """Long-run single-transmission success probability (uniform part)."""
        pf = self.failures.failure_probability if self.failures is not None else 0.0
        return (1.0 - pf) * (1.0 - self.loss_rate)

    def link_success_probability(self, u: int, v: int) -> float:
        """Long-run single-transmission success probability of link (u, v)."""
        pf = self.failures.failure_probability if self.failures is not None else 0.0
        loss = self.link_loss_rates.get(canonical_edge(u, v), self.loss_rate)
        return (1.0 - pf) * (1.0 - loss)

"""The overlay data plane: frame transmission over lossy, failing links.

:class:`OverlayNetwork` binds together the event kernel, a
:class:`~repro.overlay.topology.Topology`, a per-transmission random-loss
model (``Pl``), the per-second :class:`~repro.overlay.failures.FailureSchedule`
(``Pf``), and optionally a node-crash schedule. Broker runtimes attach a
frame handler per node and call :meth:`OverlayNetwork.transmit`; the network
decides whether the frame survives and, if so, delivers it one link delay
later.

Loss semantics (documented in DESIGN.md §5.3):

* a frame is lost if its link is inside a failed epoch at *departure* time;
* otherwise it is lost with independent probability ``Pl``;
* node failures (extension) drop frames whose sender or receiver is down;
* DATA and ACK frames are subject to the same hazards.

``transmit`` is the single hottest call of the data plane (every DATA frame,
ACK, and retransmission goes through it), so per-direction immutable state —
propagation delay, effective loss rate, receiver handler — is resolved once
into :attr:`OverlayNetwork._dir_cache` and reused; the cache is invalidated
whenever a handler attaches/detaches or ``link_loss_rates`` is mutated.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro import probes as _probes
from repro.overlay.failures import FailureSchedule, NodeFailureSchedule
from repro.overlay.topology import Topology, canonical_edge
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import SimulationError
from repro.util.validation import require_probability

FrameHandler = Callable[[int, Any], None]
"""Signature of a node's receive hook: ``handler(sender, frame)``."""

_INF = float("inf")
_heappush = heapq.heappush


class FrameKind(enum.Enum):
    """Classes of frames the accounting distinguishes."""

    DATA = "data"
    ACK = "ack"
    PROBE = "probe"

    # Enum's default __hash__ is a Python-level method; members are
    # singletons, so the C-level identity hash is equivalent for dict keys
    # (LinkStats is indexed per frame on the hot path) and much cheaper.
    # Determinism is unaffected: dicts iterate in insertion order, and no
    # code orders FrameKind members by hash.
    __hash__ = object.__hash__


@dataclass
class LinkStats:
    """Aggregate transmission counters, per frame kind.

    ``sent`` counts frames (the paper's packets metric); ``volume`` sums
    frame *sizes* (in units of one full message), which differs from the
    count only for FEC fragments.
    """

    sent: Dict[FrameKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FrameKind}
    )
    volume: Dict[FrameKind, float] = field(
        default_factory=lambda: {kind: 0.0 for kind in FrameKind}
    )
    delivered: Dict[FrameKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FrameKind}
    )
    lost_failure: Dict[FrameKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FrameKind}
    )
    lost_random: Dict[FrameKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FrameKind}
    )
    lost_node_down: Dict[FrameKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FrameKind}
    )
    dropped_expired: Dict[FrameKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FrameKind}
    )

    def data_sent(self) -> int:
        """Number of DATA-frame link transmissions (the paper's traffic metric)."""
        return self.sent[FrameKind.DATA]

    def data_volume(self) -> float:
        """Size-weighted DATA traffic (equals :meth:`data_sent` without FEC)."""
        return self.volume[FrameKind.DATA]

    def loss_fraction(self, kind: FrameKind) -> float:
        """Fraction of *kind* frames that did not arrive."""
        sent = self.sent[kind]
        if sent == 0:
            return 0.0
        return 1.0 - self.delivered[kind] / sent


@dataclass(frozen=True)
class Transmission:
    """A record of one frame handed to the network (used by tests/tracing).

    ``survived`` reflects the *link hazards at departure time* (failed
    epoch, random loss, node down). A frame accepted onto a busy EDF
    direction is recorded ``survived=True`` at enqueue; if the
    ``edf_drop_expired`` overload policy later discards it, a **follow-up
    record** with ``expired=True`` (and ``survived=False``) is appended at
    drop time, so the trace reconciles exactly with
    ``stats.dropped_expired``.
    """

    time: float
    src: int
    dst: int
    kind: FrameKind
    survived: bool
    expired: bool = False


class _LossRateMap(dict):
    """``link_loss_rates`` view that invalidates the direction cache.

    Tests (and future dynamic-loss extensions) mutate
    ``network.link_loss_rates`` in place after construction; the effective
    loss per direction is baked into ``_dir_cache``, so every mutation must
    drop the cached entries.
    """

    __slots__ = ("_owner",)

    def __init__(self, data: Dict[tuple, float], owner: "OverlayNetwork") -> None:
        super().__init__(data)
        self._owner = owner

    def _invalidate(self) -> None:
        self._owner._dir_cache.clear()

    def __setitem__(self, key: tuple, value: float) -> None:
        super().__setitem__(key, value)
        self._invalidate()

    def __delitem__(self, key: tuple) -> None:
        super().__delitem__(key)
        self._invalidate()

    def update(self, *args: Any, **kwargs: Any) -> None:
        super().update(*args, **kwargs)
        self._invalidate()

    def pop(self, *args: Any) -> Any:
        value = super().pop(*args)
        self._invalidate()
        return value

    def clear(self) -> None:
        super().clear()
        self._invalidate()

    def setdefault(self, *args: Any) -> Any:
        value = super().setdefault(*args)
        self._invalidate()
        return value


class OverlayNetwork:
    """Unreliable frame delivery between adjacent brokers.

    Parameters
    ----------
    sim:
        The discrete-event kernel.
    topology:
        The overlay graph with link delays.
    streams:
        Named RNG streams; random loss draws come from ``streams.get("loss")``.
    loss_rate:
        ``Pl``, independent per-transmission loss probability (uniform).
    link_loss_rates:
        Optional per-link overrides (canonical edge -> Pl). Links absent
        from the mapping fall back to the uniform ``loss_rate``.
        Heterogeneous loss is what makes Theorem 1's d/r ordering differ
        from plain delay ordering.
    failures:
        Optional transient link-failure schedule (``None`` = no failures).
    node_failures:
        Optional node-crash schedule (extension; ``None`` = no crashes).
    service_time:
        Optional per-frame serialisation time in seconds (finite link
        capacity). When set, each link *direction* is a single server: a
        frame occupies the link for ``service_time * size`` before its
        propagation delay starts, and frames queue behind each other.
        ``None`` (the paper's model) means infinite capacity — frames
        never queue. ACKs are assumed negligibly small and skip the queue.
    queue_discipline:
        How a busy link direction orders waiting DATA frames: ``"fifo"``
        (default, arrival order) or ``"edf"`` (earliest deadline first,
        by ``frame.priority``; ties arrival order). EDF implements the
        classical "priority-based queueing" alternative the paper's
        introduction contrasts DCRD against.
    trace:
        When true, every transmission is appended to :attr:`transmissions`
        (memory-hungry; intended for tests and debugging).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        streams: RandomStreams,
        loss_rate: float = 0.0,
        failures: Optional[FailureSchedule] = None,
        node_failures: Optional[NodeFailureSchedule] = None,
        service_time: Optional[float] = None,
        link_loss_rates: Optional[Dict[tuple, float]] = None,
        queue_discipline: str = "fifo",
        edf_drop_expired: bool = False,
        trace: bool = False,
    ) -> None:
        require_probability(loss_rate, "loss_rate")
        if link_loss_rates:
            for edge, rate in link_loss_rates.items():
                require_probability(rate, f"link_loss_rates[{edge}]")
        if queue_discipline not in ("fifo", "edf"):
            raise SimulationError(
                f"unknown queue_discipline {queue_discipline!r}"
            )
        self.edf_drop_expired = edf_drop_expired
        if service_time is not None and not service_time > 0:
            raise SimulationError(f"service_time must be > 0, got {service_time}")
        self.sim = sim
        self.topology = topology
        self.loss_rate = loss_rate
        self.failures = failures
        self.node_failures = node_failures
        self.service_time = service_time
        self.queue_discipline = queue_discipline
        self.stats = LinkStats()
        self.transmissions: list = []
        self._trace = trace
        self._loss_rng = streams.get("loss")
        self._loss_draw = self._loss_rng.random
        # Direct calendar-queue access for the per-frame delivery push in
        # transmit (the hottest call of a run). Equivalent to
        # sim.schedule_fire minus the call overhead; both aliases stay valid
        # because the kernel mutates its heap strictly in place.
        self._sim_heap = sim._heap
        self._sim_seq = sim._seq
        self._handlers: Dict[int, FrameHandler] = {}
        # Hot-loop per-direction constants, keyed by the packed direction id
        # (src << 21 | dst): (propagation delay, effective loss, handler at
        # dst, canonical edge). Resolved lazily on first use; cleared
        # whenever handlers or loss rates change.
        self._dir_cache: Dict[int, tuple] = {}
        # Current-epoch failed-edge set, refreshed when the clock crosses an
        # epoch boundary (equivalent to failures.is_failed per frame). Only
        # valid for the real epoch-granular FailureSchedule — duck-typed
        # doubles (e.g. scripted sub-epoch windows) take the generic path.
        self._epoch_failures = failures is not None and type(failures) is FailureSchedule
        self._failure_epoch_len = failures.epoch if failures is not None else 1.0
        # End of the epoch window _failed_edges_now is valid for; a float
        # compare against now replaces an int division per frame.
        self._failure_window_end = -_INF
        self._failed_edges_now: frozenset = frozenset()
        self.link_loss_rates = _LossRateMap(dict(link_loss_rates or {}), self)
        self._queueing = service_time is not None
        self._edf = queue_discipline == "edf"
        # Per-direction FIFO occupancy: (src, dst) -> time the link frees up.
        self._busy_until: Dict[tuple, float] = {}
        # EDF discipline state: per-direction waiting heaps + busy flags +
        # aggregate queued size (keeps queueing_backlog O(1)).
        self._edf_queue: Dict[tuple, list] = {}
        self._edf_busy: Dict[tuple, bool] = {}
        self._edf_queued_size: Dict[tuple, float] = {}
        self._edf_seq = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, node: int, handler: FrameHandler) -> None:
        """Register *handler* as the frame sink of *node*."""
        if node not in self.topology.nodes:
            raise SimulationError(f"node {node} is not in the topology")
        self._handlers[node] = handler
        self._dir_cache.clear()

    def detach(self, node: int) -> None:
        """Remove *node*'s handler; frames to it are silently dropped."""
        self._handlers.pop(node, None)
        self._dir_cache.clear()

    def _resolve_direction(self, src: int, dst: int) -> tuple:
        """Build and memoise the per-direction hot-loop constants."""
        if not self.topology.has_edge(src, dst):
            raise SimulationError(f"no overlay link {src} -> {dst}")
        cedge = canonical_edge(src, dst)
        entry = (
            self.topology.delay(src, dst),
            self.link_loss_rates.get(cedge, self.loss_rate),
            self._handlers.get(dst),
            cedge,
        )
        self._dir_cache[(src << 21) | dst] = entry
        return entry

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def transmit(
        self, src: int, dst: int, frame: Any, kind: FrameKind, reliable: bool = False
    ) -> bool:
        """Send *frame* from *src* to the adjacent node *dst*.

        ``reliable=True`` skips the random-loss draw (transient link
        failures and node crashes still apply); it exists solely for the
        ORACLE upper-bound baseline, which by definition is not hampered by
        recoverable randomness.

        Returns whether the frame survived the link hazards (the *caller
        must not use this for protocol decisions* — real senders learn the
        outcome only via ACKs; the return value exists for tests and the
        tracing layer).
        """
        entry = self._dir_cache.get((src << 21) | dst)
        if entry is None:
            entry = self._resolve_direction(src, dst)
        delay: Optional[float] = entry[0]
        now = self.sim._now
        if kind is FrameKind.DATA:
            # PacketFrame always carries size; tests transmit bare objects.
            try:
                size = frame.size
            except AttributeError:
                size = 1.0
        else:
            size = 1.0  # ACKs/probes are negligibly small (no size field)
        stats = self.stats
        stats.sent[kind] += 1
        stats.volume[kind] += size
        survived = True
        node_failures = self.node_failures
        if node_failures is not None and (
            node_failures.is_failed(src, now) or node_failures.is_failed(dst, now)
        ):
            stats.lost_node_down[kind] += 1
            survived = False
            cause = "node_down"
        else:
            failures = self.failures
            link_down = False
            if failures is not None:
                if self._epoch_failures:
                    # Inlined _link_failed fast path: refresh the cached
                    # failed-edge set on epoch crossings only.
                    if now >= self._failure_window_end:
                        epoch = int(now // self._failure_epoch_len)
                        self._failure_window_end = (
                            epoch + 1
                        ) * self._failure_epoch_len
                        self._failed_edges_now = failures.failed_edges(epoch)
                    link_down = entry[3] in self._failed_edges_now
                else:
                    link_down = failures.is_failed(src, dst, now)
            if link_down:
                stats.lost_failure[kind] += 1
                survived = False
                cause = "link_failure"
            else:
                effective_loss = entry[1]
                if (
                    not reliable
                    and effective_loss > 0.0
                    and self._loss_draw() < effective_loss
                ):
                    stats.lost_random[kind] += 1
                    survived = False
                    cause = "random_loss"
        # Probe hook (observation-only, DATA frames only; ACK arrivals are
        # traced at the ARQ layer where they are matched to their copy).
        probe_tx = _probes.on_transmit if kind is FrameKind.DATA else None
        if survived:
            if self._queueing and kind is FrameKind.DATA:
                if self._edf:
                    if probe_tx is not None:
                        # The EDF server decides the wait later (queue=None).
                        probe_tx(now, src, dst, frame, True, None, entry[0], None)
                    # Delivery is scheduled by the per-direction EDF server.
                    self._edf_enqueue(src, dst, frame, kind, size)
                    delay = None
                else:
                    # FIFO serialisation: wait for the direction to free
                    # up, hold it for a size-scaled service time, propagate.
                    key = (src, dst)
                    start = self._busy_until.get(key, 0.0)
                    if start < now:
                        start = now
                    finish = start + self.service_time * size
                    self._busy_until[key] = finish
                    if probe_tx is not None:
                        probe_tx(
                            now, src, dst, frame, True, None, entry[0],
                            start - now,
                        )
                    if start > now:
                        probe_enq = _probes.on_enqueue
                        if probe_enq is not None:
                            probe_enq(now, src, dst, frame, start - now)
                    delay = (finish - now) + delay
            elif probe_tx is not None:
                probe_tx(now, src, dst, frame, True, None, entry[0], 0.0)
            if delay is not None:
                # Deliveries are never cancelled: inlined sim.schedule_fire
                # (link delays are positive by construction, so the
                # negative-delay guard is statically satisfied).
                sim = self.sim
                _heappush(
                    self._sim_heap,
                    (
                        now + delay,
                        next(self._sim_seq),
                        self._deliver,
                        (src, dst, frame, kind),
                    ),
                )
                sim._live += 1
        elif probe_tx is not None:
            probe_tx(now, src, dst, frame, False, cause, entry[0], None)
        if self._trace:
            self.transmissions.append(Transmission(now, src, dst, kind, survived))
        return survived

    def _deliver(self, src: int, dst: int, frame: Any, kind: FrameKind) -> None:
        # A node that crashed while the frame was in flight cannot receive it.
        node_failures = self.node_failures
        if node_failures is not None and node_failures.is_failed(dst, self.sim._now):
            self.stats.lost_node_down[kind] += 1
            if kind is FrameKind.DATA:
                probe = _probes.on_arrival_drop
                if probe is not None:
                    probe(self.sim._now, src, dst, frame, "node_down_arrival")
            return
        # The cached handler is current: attach/detach clear the cache.
        entry = self._dir_cache.get((src << 21) | dst)
        handler = entry[2] if entry is not None else self._handlers.get(dst)
        if handler is None:
            if kind is FrameKind.DATA:
                probe = _probes.on_arrival_drop
                if probe is not None:
                    probe(self.sim._now, src, dst, frame, "no_handler")
            return
        self.stats.delivered[kind] += 1
        if kind is FrameKind.DATA:
            probe = _probes.on_arrive
            if probe is not None:
                probe(self.sim._now, src, dst, frame)
        handler(src, frame)

    # ------------------------------------------------------------------
    # EDF link server (queue_discipline="edf")
    # ------------------------------------------------------------------
    def _edf_enqueue(
        self, src: int, dst: int, frame: Any, kind: FrameKind, size: float
    ) -> None:
        key = (src, dst)
        self._edf_seq += 1
        try:
            priority = frame.priority
        except AttributeError:
            priority = _INF
        heapq.heappush(
            self._edf_queue.setdefault(key, []),
            (priority, self._edf_seq, frame, kind, size),
        )
        self._edf_queued_size[key] = self._edf_queued_size.get(key, 0.0) + size
        if not self._edf_busy.get(key, False):
            self._edf_serve_next(key)

    def _edf_serve_next(self, key: tuple) -> None:
        queue = self._edf_queue.get(key)
        if self.edf_drop_expired and queue:
            # Expired frames can no longer meet their deadline even with
            # zero further delay; dropping them frees capacity for frames
            # that still can (the textbook overload policy).
            now = self.sim.now
            entry = self._dir_cache.get((key[0] << 21) | key[1])
            prop = entry[0] if entry is not None else self.topology.delay(*key)
            while queue and queue[0][0] < now + prop:
                _, _, dropped, kind, size = heapq.heappop(queue)
                self.stats.dropped_expired[kind] += 1
                self._edf_queued_size[key] -= size
                probe = _probes.on_expire
                if probe is not None:
                    probe(now, key[0], key[1], dropped)
                if self._trace:
                    self.transmissions.append(
                        Transmission(now, key[0], key[1], kind, False, expired=True)
                    )
        if not queue:
            self._edf_busy[key] = False
            return
        self._edf_busy[key] = True
        _, _, frame, kind, size = heapq.heappop(queue)
        self._edf_queued_size[key] -= size
        assert self.service_time is not None
        self.sim.schedule_fire(
            self.service_time * size, self._edf_finish, key, frame, kind
        )

    def _edf_finish(self, key: tuple, frame: Any, kind: FrameKind) -> None:
        src, dst = key
        entry = self._dir_cache.get((src << 21) | dst)
        delay = entry[0] if entry is not None else self.topology.delay(src, dst)
        self.sim.schedule_fire(delay, self._deliver, src, dst, frame, kind)
        self._edf_serve_next(key)

    # ------------------------------------------------------------------
    # Convenience queries used by routing layers
    # ------------------------------------------------------------------
    def queueing_backlog(self, src: int, dst: int) -> float:
        """Seconds until the (src, dst) direction frees up (0 = idle).

        For the EDF discipline this is a lower bound: the aggregate
        service time still queued on the direction, read from a counter
        maintained at enqueue/dequeue time (O(1), not a heap scan).
        """
        if self.service_time is None:
            return 0.0
        if self._edf:
            key = (src, dst)
            backlog = self._edf_queued_size.get(key, 0.0) * self.service_time
            if self._edf_busy.get(key, False):
                backlog += self.service_time  # at most one service remains
            return backlog
        return max(0.0, self._busy_until.get((src, dst), 0.0) - self.sim.now)

    def link_up(self, u: int, v: int) -> bool:
        """Whether link (u, v) is outside any failed epoch right now."""
        if self.failures is None:
            return True
        return not self.failures.is_failed(u, v, self.sim.now)

    def expected_success_probability(self) -> float:
        """Long-run single-transmission success probability (uniform part)."""
        pf = self.failures.failure_probability if self.failures is not None else 0.0
        return (1.0 - pf) * (1.0 - self.loss_rate)

    def link_success_probability(self, u: int, v: int) -> float:
        """Long-run single-transmission success probability of link (u, v)."""
        pf = self.failures.failure_probability if self.failures is not None else 0.0
        loss = self.link_loss_rates.get(canonical_edge(u, v), self.loss_rate)
        return (1.0 - pf) * (1.0 - loss)

"""Link monitoring: the control plane's (stale) view of link quality.

The paper assumes each broker knows, per adjacent link, the single-
transmission latency ``alpha(1)`` and delivery ratio ``gamma(1)``, obtained
"through either link monitoring or online measurements" (§III-A), refreshed
every five minutes while the network state changes every second (§IV-A).

Two estimation modes are provided:

``analytic``
    The long-run truth: ``alpha`` is the configured link delay and ``gamma``
    is ``(1 - Pl) * (1 - Pf)``. This is the paper-faithful default — routing
    tables reflect average behaviour and are *blind to individual failure
    epochs*, which is exactly the staleness the paper engineers.

``sampled``
    An online-measurement emulation: every refresh sends a burst of virtual
    probes across each link, observes Bernoulli successes under the current
    hazard rates, and folds the observation into an EWMA. Used by the
    monitoring ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, FrozenSet, Mapping

from repro.overlay.links import OverlayNetwork
from repro.overlay.topology import Edge, Topology, canonical_edge
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError
from repro.util.validation import require, require_in_range

#: Paper setting (§IV-A): brokers re-monitor the network every 5 minutes.
DEFAULT_MONITOR_PERIOD = 300.0


@dataclass(frozen=True)
class LinkEstimate:
    """The control plane's belief about one link.

    Attributes
    ----------
    alpha:
        Estimated single-transmission latency in seconds (paper's alpha^(1)).
    gamma:
        Estimated single-transmission delivery ratio (paper's gamma^(1)).
    """

    alpha: float
    gamma: float


class LinkMonitor:
    """Produces and refreshes :class:`LinkEstimate` values per link.

    Estimates are symmetric (the overlay links are), keyed by canonical edge.
    """

    MODES = ("analytic", "sampled")

    def __init__(
        self,
        topology: Topology,
        network: OverlayNetwork,
        streams: RandomStreams,
        mode: str = "analytic",
        probes_per_cycle: int = 50,
        ewma_weight: float = 0.3,
        gamma_floor: float = 1e-6,
    ) -> None:
        if mode not in self.MODES:
            raise ConfigurationError(
                f"unknown monitor mode {mode!r}; expected one of {self.MODES}"
            )
        require(probes_per_cycle >= 1, "probes_per_cycle must be >= 1")
        require_in_range(ewma_weight, 0.0, 1.0, "ewma_weight")
        self._topology = topology
        self._network = network
        self._mode = mode
        self._probes = probes_per_cycle
        self._ewma_weight = ewma_weight
        self._gamma_floor = gamma_floor
        self._rng = streams.get("monitor")
        self._estimates: Dict[Edge, LinkEstimate] = {}
        self._view = MappingProxyType(self._estimates)
        self._refreshes = 0
        self._version = 0
        self._last_changed: FrozenSet[Edge] = frozenset()
        self._last_alpha_changed = False
        self.refresh()

    @property
    def mode(self) -> str:
        """The active estimation mode."""
        return self._mode

    @property
    def refreshes(self) -> int:
        """How many monitoring cycles have completed."""
        return self._refreshes

    @property
    def version(self) -> int:
        """Monotone estimate version: bumps only when a refresh changed
        at least one link's estimate.

        Consumers (the DCRD control plane) compare this counter instead of
        hashing/sorting all estimates, making the "nothing changed" check
        O(1) per monitoring cycle.
        """
        return self._version

    @property
    def last_changed(self) -> FrozenSet[Edge]:
        """Edges whose estimate changed in the refresh that produced
        :attr:`version` (all edges after the initial cycle)."""
        return self._last_changed

    @property
    def last_alpha_changed(self) -> bool:
        """Whether any *latency* (alpha) estimate changed in that refresh.

        Alpha feeds the delay-budget Dijkstra, so an alpha change
        invalidates every table; gamma-only changes invalidate selectively.
        """
        return self._last_alpha_changed

    def estimate(self, u: int, v: int) -> LinkEstimate:
        """Current belief about link (u, v)."""
        return self._estimates[canonical_edge(u, v)]

    def estimates(self) -> Mapping[Edge, LinkEstimate]:
        """A read-only live view of all link estimates (no copying).

        The view always reflects the latest refresh; callers needing an
        isolated copy should use :meth:`snapshot`.
        """
        return self._view

    def snapshot(self) -> Dict[Edge, LinkEstimate]:
        """An isolated snapshot copy of all link estimates."""
        return dict(self._estimates)

    def refresh(self) -> None:
        """Run one monitoring cycle, updating every link's estimate.

        Records which edges' estimates actually changed (``last_changed``)
        and bumps :attr:`version` only when at least one did.
        """
        if self._mode == "analytic":
            new = self._refresh_analytic()
        else:
            new = self._refresh_sampled()
        changed = [
            edge for edge, est in new.items() if self._estimates.get(edge) != est
        ]
        if changed:
            self._last_alpha_changed = any(
                edge not in self._estimates
                or self._estimates[edge].alpha != new[edge].alpha
                for edge in changed
            )
            self._last_changed = frozenset(changed)
            self._estimates.update(new)
            self._version += 1
        self._refreshes += 1

    # ------------------------------------------------------------------
    def _truth(self, edge: Edge) -> float:
        return self._network.link_success_probability(*edge)

    def _refresh_analytic(self) -> Dict[Edge, LinkEstimate]:
        new = {}
        for edge in self._topology.edges():
            gamma = max(self._truth(edge), self._gamma_floor)
            new[edge] = LinkEstimate(alpha=self._topology.delay(*edge), gamma=gamma)
        return new

    def _refresh_sampled(self) -> Dict[Edge, LinkEstimate]:
        new = {}
        for edge in self._topology.edges():
            truth = self._truth(edge)
            successes = int(self._rng.binomial(self._probes, truth))
            observed = successes / self._probes
            previous = self._estimates.get(edge)
            if previous is None:
                gamma = observed
            else:
                gamma = (
                    self._ewma_weight * observed
                    + (1.0 - self._ewma_weight) * previous.gamma
                )
            gamma = max(gamma, self._gamma_floor)
            new[edge] = LinkEstimate(alpha=self._topology.delay(*edge), gamma=gamma)
        return new

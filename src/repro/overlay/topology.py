"""Overlay topologies.

The paper evaluates 20-node broker overlays: a full mesh and random graphs
with a fixed link degree, with per-link delays drawn uniformly from
10–50 ms (a range taken from AT&T backbone measurements). This module wraps
:mod:`networkx` graphs in a :class:`Topology` that owns the delay assignment
and exposes the queries the routing layers need: neighbours, link delay,
all-pairs shortest delay/hops.

All delays are stored in **seconds**.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple  # noqa: F401

import networkx as nx
import numpy as np

from repro.util.errors import TopologyError
from repro.util.validation import require

Edge = Tuple[int, int]

#: Paper setting: link delays uniform in [10 ms, 50 ms].
DEFAULT_DELAY_RANGE = (0.010, 0.050)


def canonical_edge(u: int, v: int) -> Edge:
    """Return the undirected edge key for (u, v): smaller id first."""
    return (u, v) if u <= v else (v, u)


class Topology:
    """An undirected overlay graph with symmetric per-link delays.

    Parameters
    ----------
    graph:
        A connected :class:`networkx.Graph` whose nodes are ``0..n-1``.
    delays:
        Mapping from canonical edge to one-way propagation delay in seconds.
        Missing edges raise :class:`TopologyError`.
    name:
        Human-readable label used in reports.
    """

    def __init__(
        self,
        graph: nx.Graph,
        delays: Dict[Edge, float],
        name: str = "topology",
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("topology must have at least one node")
        expected_nodes = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected_nodes:
            raise TopologyError("nodes must be labelled 0..n-1")
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise TopologyError("topology must be connected")
        for u, v in graph.edges:
            key = canonical_edge(u, v)
            if key not in delays:
                raise TopologyError(f"missing delay for edge {key}")
            if not delays[key] > 0:
                raise TopologyError(
                    f"delay of edge {key} must be > 0, got {delays[key]!r}"
                )
        self.name = name
        self._graph = graph
        self._delays = {canonical_edge(*e): delays[canonical_edge(*e)] for e in graph.edges}
        self._neighbors: Dict[int, Tuple[int, ...]] = {
            node: tuple(sorted(graph.neighbors(node))) for node in graph.nodes
        }
        self._shortest_delay: Optional[Dict[int, Dict[int, float]]] = None
        self._shortest_hops: Optional[Dict[int, Dict[int, int]]] = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying (read-only by convention) networkx graph."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of broker nodes."""
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """Number of undirected overlay links."""
        return self._graph.number_of_edges()

    @property
    def nodes(self) -> range:
        """Node identifiers, always ``range(num_nodes)``."""
        return range(self.num_nodes)

    def edges(self) -> Iterable[Edge]:
        """Iterate canonical (u < v) edges."""
        return iter(self._delays)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """The sorted tuple of *node*'s neighbours."""
        return self._neighbors[node]

    def degree(self, node: int) -> int:
        """Number of overlay links attached to *node*."""
        return len(self._neighbors[node])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether link (u, v) exists."""
        return canonical_edge(u, v) in self._delays

    def delay(self, u: int, v: int) -> float:
        """One-way propagation delay of link (u, v) in seconds."""
        key = canonical_edge(u, v)
        try:
            return self._delays[key]
        except KeyError:
            raise TopologyError(f"no overlay link between {u} and {v}") from None

    # ------------------------------------------------------------------
    # Shortest paths (cached)
    # ------------------------------------------------------------------
    def _delay_graph(self) -> nx.Graph:
        weighted = nx.Graph()
        weighted.add_nodes_from(self._graph.nodes)
        for (u, v), delay in self._delays.items():
            weighted.add_edge(u, v, weight=delay)
        return weighted

    def shortest_delay(self, source: int, target: int) -> float:
        """All-pairs shortest *delay* between two nodes (seconds)."""
        if self._shortest_delay is None:
            weighted = self._delay_graph()
            self._shortest_delay = dict(
                nx.all_pairs_dijkstra_path_length(weighted, weight="weight")
            )
        return self._shortest_delay[source][target]

    def shortest_hops(self, source: int, target: int) -> int:
        """All-pairs shortest *hop count* between two nodes."""
        if self._shortest_hops is None:
            self._shortest_hops = dict(nx.all_pairs_shortest_path_length(self._graph))
        return self._shortest_hops[source][target]

    def shortest_delay_path(self, source: int, target: int) -> List[int]:
        """One minimum-delay path from *source* to *target* (list of nodes)."""
        return nx.dijkstra_path(self._delay_graph(), source, target, weight="weight")

    def shortest_hop_path(self, source: int, target: int) -> List[int]:
        """One minimum-hop path (ties broken by delay for determinism)."""
        # Use delay as a tiny tie-breaker on top of unit weights so that the
        # returned tree is deterministic given the topology.
        graph = nx.Graph()
        graph.add_nodes_from(self._graph.nodes)
        for (u, v), delay in self._delays.items():
            graph.add_edge(u, v, weight=1.0 + delay * 1e-3)
        return nx.dijkstra_path(graph, source, target, weight="weight")

    def edge_set(self) -> FrozenSet[Edge]:
        """All canonical edges as a frozenset (handy for schedule queries)."""
        return frozenset(self._delays)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


# ----------------------------------------------------------------------
# Delay assignment
# ----------------------------------------------------------------------
def _assign_delays(
    graph: nx.Graph,
    rng: np.random.Generator,
    delay_range: Tuple[float, float],
) -> Dict[Edge, float]:
    low, high = delay_range
    require(0 < low <= high, f"invalid delay range {delay_range}")
    delays: Dict[Edge, float] = {}
    for u, v in sorted(canonical_edge(u, v) for u, v in graph.edges):
        delays[(u, v)] = float(rng.uniform(low, high))
    return delays


def _build(
    graph: nx.Graph,
    rng: np.random.Generator,
    delay_range: Tuple[float, float],
    name: str,
) -> Topology:
    delays = _assign_delays(graph, rng, delay_range)
    return Topology(graph, delays, name=name)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def full_mesh(
    num_nodes: int,
    rng: np.random.Generator,
    delay_range: Tuple[float, float] = DEFAULT_DELAY_RANGE,
) -> Topology:
    """Every pair of brokers directly connected (paper §IV-D1)."""
    require(num_nodes >= 1, "full_mesh needs >= 1 node")
    return _build(
        nx.complete_graph(num_nodes), rng, delay_range, f"full-mesh-{num_nodes}"
    )


def random_regular(
    num_nodes: int,
    degree: int,
    rng: np.random.Generator,
    delay_range: Tuple[float, float] = DEFAULT_DELAY_RANGE,
    max_attempts: int = 100,
) -> Topology:
    """Connected random graph where every broker has exactly *degree* links.

    This realises the paper's "for a given link degree, we randomly choose
    the neighboring nodes" construction (§IV-A). Generation retries until the
    sampled regular graph is connected.
    """
    require(num_nodes >= 2, "random_regular needs >= 2 nodes")
    require(0 < degree < num_nodes, f"degree must be in (0, {num_nodes})")
    require(num_nodes * degree % 2 == 0, "num_nodes * degree must be even")
    for _ in range(max_attempts):
        seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(degree, num_nodes, seed=seed)
        if nx.is_connected(graph):
            return _build(
                graph, rng, delay_range, f"regular-{num_nodes}-deg{degree}"
            )
    raise TopologyError(
        f"could not sample a connected {degree}-regular graph on "
        f"{num_nodes} nodes in {max_attempts} attempts"
    )


def erdos_renyi(
    num_nodes: int,
    edge_probability: float,
    rng: np.random.Generator,
    delay_range: Tuple[float, float] = DEFAULT_DELAY_RANGE,
    max_attempts: int = 100,
) -> Topology:
    """Connected Erdős–Rényi G(n, p) overlay (used by extension studies)."""
    require(num_nodes >= 2, "erdos_renyi needs >= 2 nodes")
    for _ in range(max_attempts):
        seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.gnp_random_graph(num_nodes, edge_probability, seed=seed)
        if nx.is_connected(graph):
            return _build(graph, rng, delay_range, f"gnp-{num_nodes}-p{edge_probability}")
    raise TopologyError(
        f"could not sample a connected G({num_nodes}, {edge_probability}) "
        f"in {max_attempts} attempts"
    )


def waxman(
    num_nodes: int,
    rng: np.random.Generator,
    alpha: float = 0.6,
    beta: float = 0.4,
    delay_range: Tuple[float, float] = DEFAULT_DELAY_RANGE,
    max_attempts: int = 100,
) -> Topology:
    """Connected Waxman random geometric overlay (Internet-like)."""
    require(num_nodes >= 2, "waxman needs >= 2 nodes")
    for _ in range(max_attempts):
        seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.waxman_graph(num_nodes, beta=beta, alpha=alpha, seed=seed)
        graph = nx.convert_node_labels_to_integers(graph)
        if graph.number_of_nodes() == num_nodes and nx.is_connected(graph):
            return _build(graph, rng, delay_range, f"waxman-{num_nodes}")
    raise TopologyError(
        f"could not sample a connected Waxman graph on {num_nodes} nodes"
    )


def ring(
    num_nodes: int,
    rng: np.random.Generator,
    delay_range: Tuple[float, float] = DEFAULT_DELAY_RANGE,
) -> Topology:
    """Cycle topology (tests and worst-case path diversity studies)."""
    require(num_nodes >= 3, "ring needs >= 3 nodes")
    return _build(nx.cycle_graph(num_nodes), rng, delay_range, f"ring-{num_nodes}")


def line(
    num_nodes: int,
    rng: np.random.Generator,
    delay_range: Tuple[float, float] = DEFAULT_DELAY_RANGE,
) -> Topology:
    """Path topology: no redundancy at all (tests)."""
    require(num_nodes >= 2, "line needs >= 2 nodes")
    return _build(nx.path_graph(num_nodes), rng, delay_range, f"line-{num_nodes}")


def star(
    num_nodes: int,
    rng: np.random.Generator,
    delay_range: Tuple[float, float] = DEFAULT_DELAY_RANGE,
) -> Topology:
    """Hub-and-spoke topology with node 0 at the centre (tests)."""
    require(num_nodes >= 2, "star needs >= 2 nodes")
    return _build(nx.star_graph(num_nodes - 1), rng, delay_range, f"star-{num_nodes}")


def clustered(
    num_clusters: int,
    cluster_size: int,
    rng: np.random.Generator,
    intra_delay_range: Tuple[float, float] = (0.002, 0.010),
    inter_delay_range: Tuple[float, float] = (0.020, 0.080),
    intra_degree: Optional[int] = None,
    trunks_per_cluster: int = 2,
) -> Topology:
    """Two-tier WAN overlay: dense low-delay clusters, sparse trunks.

    Models the deployment shape a real broker network takes — brokers
    co-located per site/region (LAN-ish delays) joined by a ring of
    wide-area trunk links (WAN delays). Node ids are assigned cluster by
    cluster: cluster ``c`` owns ``[c * cluster_size, (c+1) * cluster_size)``.

    Parameters
    ----------
    num_clusters / cluster_size:
        Shape of the two tiers (>= 2 clusters of >= 2 brokers).
    intra_delay_range / inter_delay_range:
        Link delays within clusters vs across trunks (seconds).
    intra_degree:
        Links per broker inside a cluster; ``None`` = full mesh per cluster.
    trunks_per_cluster:
        Outgoing trunk links per cluster; the first connects a ring (so the
        overlay is connected), the rest attach to random other clusters —
        ``>= 2`` gives every cluster disjoint exit routes.
    """
    require(num_clusters >= 2, "clustered needs >= 2 clusters")
    require(cluster_size >= 2, "clustered needs cluster_size >= 2")
    require(trunks_per_cluster >= 1, "trunks_per_cluster must be >= 1")
    graph = nx.Graph()
    delays: Dict[Edge, float] = {}
    num_nodes = num_clusters * cluster_size
    graph.add_nodes_from(range(num_nodes))

    def members(cluster: int) -> range:
        return range(cluster * cluster_size, (cluster + 1) * cluster_size)

    def add_link(u: int, v: int, delay_range: Tuple[float, float]) -> None:
        key = canonical_edge(u, v)
        if key in delays:
            return
        graph.add_edge(u, v)
        delays[key] = float(rng.uniform(*delay_range))

    # Tier 1: intra-cluster links.
    for cluster in range(num_clusters):
        nodes = list(members(cluster))
        if intra_degree is None or intra_degree >= cluster_size - 1:
            for i, u in enumerate(nodes):
                for v in nodes[i + 1:]:
                    add_link(u, v, intra_delay_range)
        else:
            # Ring + random chords for the requested degree.
            for index, u in enumerate(nodes):
                add_link(u, nodes[(index + 1) % len(nodes)], intra_delay_range)
            for u in nodes:
                while graph.degree(u) < intra_degree:
                    v = int(rng.choice(nodes))
                    if v != u:
                        add_link(u, v, intra_delay_range)

    # Tier 2: trunk ring (guarantees connectivity) + extra random trunks.
    for cluster in range(num_clusters):
        neighbor = (cluster + 1) % num_clusters
        u = int(rng.choice(list(members(cluster))))
        v = int(rng.choice(list(members(neighbor))))
        add_link(u, v, inter_delay_range)
        for _ in range(trunks_per_cluster - 1):
            other = int(rng.integers(0, num_clusters))
            if other == cluster:
                continue
            u = int(rng.choice(list(members(cluster))))
            v = int(rng.choice(list(members(other))))
            add_link(u, v, inter_delay_range)

    return Topology(
        graph, delays, name=f"clustered-{num_clusters}x{cluster_size}"
    )

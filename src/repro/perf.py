"""Lightweight performance instrumentation (observation only).

:class:`PerfStats` is a named-counter registry with wall-clock timers,
used to answer "where did the run spend its time?" without perturbing the
simulation itself: counters and timers only *observe* — they never feed
back into scheduling, routing, or random-number consumption, so enabling
them cannot change a run's results.

Two kinds of entries share one flat namespace:

* **counters** — monotone event counts (``control_plane.tables_reused``,
  ``control_plane.jacobi_rounds``, …), bumped via :meth:`PerfStats.incr`;
* **timers** — accumulated wall-clock seconds (``*_time_s`` keys), fed by
  the :meth:`PerfStats.timer` context manager or :meth:`PerfStats.add_time`.

The sweep engine (:class:`repro.experiments.sweeps.SweepExecutor`) reports
its counters in the ``sweep.*`` namespace: ``sweep.cells_cached`` /
``sweep.cells_computed`` (grid cells served from the content-addressed
cell cache vs actually run), ``sweep.checkpoint_writes`` (cells journalled
to the resume log as they finished), and ``sweep.solver_warm_hits`` /
``sweep.topology_warm_hits`` (per-process warm-artifact reuses — shared
control-plane Dijkstra maps and rebuilt-once topologies).

Wall-clock values are inherently non-deterministic, which is why the
:class:`~repro.metrics.summary.MetricsSummary` field carrying a snapshot is
excluded from equality comparison and from ``as_dict()`` (the
reproducibility tests compare those).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional


class PerfStats:
    """A flat registry of named counters and accumulated wall-clock timers."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add *amount* (default 1) to counter *name*, creating it at 0."""
        self._values[name] = self._values.get(name, 0.0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* of wall-clock time under *name*."""
        self.incr(name, seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the ``with`` body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def merge(self, other: Mapping[str, float]) -> None:
        """Fold another snapshot's values into this registry (key-wise sum)."""
        for name, value in other.items():
            self.incr(name, value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, name: str, default: float = 0.0) -> float:
        """Current value of *name* (0 if never touched)."""
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of all current values."""
        return dict(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"PerfStats({body})"


def merge_snapshots(
    snapshots: "list[Mapping[str, float]]",
) -> Dict[str, float]:
    """Key-wise sum of several :meth:`PerfStats.snapshot` dicts."""
    merged = PerfStats()
    for snap in snapshots:
        merged.merge(snap)
    return merged.snapshot()


def format_perf(values: Mapping[str, float], indent: str = "  ") -> str:
    """Render a snapshot as aligned ``name  value`` lines (sorted by name)."""
    if not values:
        return f"{indent}(no perf counters recorded)"
    width = max(len(name) for name in values)
    lines = []
    for name in sorted(values):
        value = values[name]
        if name.endswith("_time_s"):
            rendered = f"{value * 1000.0:.3f} ms"
        elif float(value).is_integer():
            rendered = f"{int(value)}"
        else:
            rendered = f"{value:.4f}"
        lines.append(f"{indent}{name.ljust(width)}  {rendered}")
    return "\n".join(lines)


def time_call(fn, *args, repeats: int = 1, **kwargs):
    """Run ``fn(*args, **kwargs)`` *repeats* times; return (best_seconds, result).

    A tiny best-of-N harness for the control-plane microbenchmarks: the
    minimum over repeats is the standard low-noise wall-clock estimator.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best: Optional[float] = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result

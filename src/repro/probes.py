"""The instrumentation bus: one compiled probe slot per event family.

Every observation hook of the data plane — kernel event pops, link
transmissions and drops, queueing, arrivals, broker dedup/accept/deliver,
ARQ ACKs and timers, DCRD failovers/bounces/abandons, persistency custody,
and solved control tables — goes through exactly one module-level slot in
this module. A hook site does::

    probe = _probes.on_transmit
    if probe is not None:
        probe(now, src, dst, frame, survived, cause, prop, queue)

and nothing else. With no observers attached every slot is ``None``, so
the whole instrumentation layer costs one module-attribute load and one
``is None`` check per site — the exact footprint the fingerprint suite
pins as bit-identical to uninstrumented code. When observers attach, the
:class:`ProbeRegistry` *compiles* each family's callback chain into the
slot: the single handler itself for one observer, a fused closure for
several. A site never knows (or pays for) how many observers are live.

Observers
---------

An observer is any object exposing per-family handlers — either by
subclassing :class:`ProbeObserver` (handlers are discovered by their
``on_<family>`` method names) or by overriding ``probe_handlers()`` to
return an explicit ``{family: callable}`` mapping (what
:class:`repro.sanity.Sanitizer` does to adapt its historical method
signatures). The repository's built-in observers are:

* :class:`repro.sanity.Sanitizer` — live invariant checks;
* :class:`repro.trace.FrameTracer` — per-frame lifecycle recording;
* :class:`ProbeCounters` (below) — per-family event counting, the perf
  facet of the bus.

Observers must be **observation-only**: draw no randomness, schedule no
events, mutate no protocol state. The bus guarantees the *sites* are
inert when disabled; the observers guarantee enabled runs pop the same
event sequence as disabled ones. Two families are deliberate exceptions
with a constrained return-value protocol (see below): ``table_solved``
(a filter) and ``timer_cancelled`` (a veto) — both exist so the
sanitizer's test-only mutations can exercise its own checks, and both
behave as pure observations unless a handler opts into the protocol.

Event families
--------------

==================  =====================================================
family              payload
==================  =====================================================
event_pop           ``(time, now)`` — kernel pops an event dated *time*
publish             ``(frame)`` — root copy created at its origin
fork                ``(parent_transfer, child_transfer)`` — copy forked
transmit            ``(t, src, dst, frame, survived, cause, prop,
                    queue)`` — DATA frame handed to a link direction
enqueue             ``(t, src, dst, frame, wait)`` — FIFO wait > 0
                    (emitted only alongside its ``transmit`` event)
arrive              ``(t, src, dst, frame)`` — frame reached the receiver
arrival_drop        ``(t, src, dst, frame, cause)`` — dropped at arrival
expire              ``(t, src, dst, frame)`` — EDF overload drop
dedup_discard       ``(t, node, sender, frame)`` — duplicate suppressed
broker_accept       ``(node, sender, frame)`` — frame passed dedup
deliver             ``(t, node, frame)`` — first local delivery of a pair
ack                 ``(t, node, sender, frame)`` — ACK matched to a copy
ack_timeout         ``(t, src, dst, frame, attempts, will_retry)``
timer_started       ``(token, deadline, frame)`` — ACK timer scheduled
timer_cancelled     ``(token)`` — **veto family**: return ``False`` to
                    keep the timer alive (sanitizer test mutation)
timer_fired         ``(token)`` — ACK timer fired and was acted on
failover            ``(t, node, failed_hop, frame)``
bounce              ``(t, node, upstream, copy)`` — §III-D upstream send
abandon             ``(t, node, frame, subscriber)`` — destination dropped
custody             ``(t, node, frame, subscriber, action,
                    fresh_transfer)`` — persistency store/redeliver
order_hold          ``(t, node, frame, level)`` — delivery pipeline
                    buffered a frame behind an ordering gap
order_release       ``(t, node, frame, level, reason, held_for)`` — a
                    held (or immediately deliverable) frame reached the
                    terminal delivery stage; ``reason`` is ``ready`` /
                    ``stall`` / ``flush``
order_stall         ``(t, node, level, info)`` — the hold-back watchdog
                    skipped a gap or a straggler missed its slot
table_solved        ``(table) -> table`` — **filter family**: handlers
                    may substitute the table (``None`` = unchanged)
==================  =====================================================

The module imports only :mod:`repro.util.errors`, so every instrumented
layer — including the kernel — can import it without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.util.errors import ReproError

#: Every event family, in catalogue order. The slot of family ``f`` is the
#: module attribute ``on_<f>``.
FAMILIES: Tuple[str, ...] = (
    "event_pop",
    "publish",
    "fork",
    "transmit",
    "enqueue",
    "arrive",
    "arrival_drop",
    "expire",
    "dedup_discard",
    "broker_accept",
    "deliver",
    "ack",
    "ack_timeout",
    "timer_started",
    "timer_cancelled",
    "timer_fired",
    "failover",
    "bounce",
    "abandon",
    "custody",
    "order_hold",
    "order_release",
    "order_stall",
    "table_solved",
)

#: Families whose handlers may return a replacement value (``None`` keeps
#: the current one); the compiled slot threads the value through the chain
#: and always returns it.
FILTER_FAMILIES = frozenset({"table_solved"})

#: Families whose handlers may return ``False`` to veto the site's action;
#: the compiled slot returns ``False`` iff any handler vetoed.
VETO_FAMILIES = frozenset({"timer_cancelled"})

# ---------------------------------------------------------------------------
# The slots. Hook sites read these and nothing else; ProbeRegistry._compile
# is the only writer. All None (literal no-op) by default.
# ---------------------------------------------------------------------------
on_event_pop: Optional[Callable[..., Any]] = None
on_publish: Optional[Callable[..., Any]] = None
on_fork: Optional[Callable[..., Any]] = None
on_transmit: Optional[Callable[..., Any]] = None
on_enqueue: Optional[Callable[..., Any]] = None
on_arrive: Optional[Callable[..., Any]] = None
on_arrival_drop: Optional[Callable[..., Any]] = None
on_expire: Optional[Callable[..., Any]] = None
on_dedup_discard: Optional[Callable[..., Any]] = None
on_broker_accept: Optional[Callable[..., Any]] = None
on_deliver: Optional[Callable[..., Any]] = None
on_ack: Optional[Callable[..., Any]] = None
on_ack_timeout: Optional[Callable[..., Any]] = None
on_timer_started: Optional[Callable[..., Any]] = None
on_timer_cancelled: Optional[Callable[..., Any]] = None
on_timer_fired: Optional[Callable[..., Any]] = None
on_failover: Optional[Callable[..., Any]] = None
on_bounce: Optional[Callable[..., Any]] = None
on_abandon: Optional[Callable[..., Any]] = None
on_custody: Optional[Callable[..., Any]] = None
on_order_hold: Optional[Callable[..., Any]] = None
on_order_release: Optional[Callable[..., Any]] = None
on_order_stall: Optional[Callable[..., Any]] = None
on_table_solved: Optional[Callable[..., Any]] = None


class ProbeError(ReproError):
    """An observer could not be attached to (or detached from) the bus."""


class ProbeObserver:
    """Base class for bus observers: handlers discovered by method name.

    The default :meth:`probe_handlers` maps every family for which the
    instance defines an ``on_<family>`` method. Override it to adapt
    mismatched signatures (the sanitizer does) or to register closures.
    """

    def probe_handlers(self) -> Dict[str, Callable[..., Any]]:
        """The ``{family: callable}`` mapping this observer subscribes."""
        handlers: Dict[str, Callable[..., Any]] = {}
        for family in FAMILIES:
            method = getattr(self, "on_" + family, None)
            if callable(method):
                handlers[family] = method
        return handlers


def handlers_of(observer: Any) -> Dict[str, Callable[..., Any]]:
    """Resolve *observer*'s family handlers (duck-typed attach support)."""
    probe_handlers = getattr(observer, "probe_handlers", None)
    if callable(probe_handlers):
        handlers = probe_handlers()
    else:
        handlers = {
            family: method
            for family in FAMILIES
            for method in (getattr(observer, "on_" + family, None),)
            if callable(method)
        }
    unknown = set(handlers) - set(FAMILIES)
    if unknown:
        raise ProbeError(
            f"observer {observer!r} subscribes unknown probe families "
            f"{sorted(unknown)}"
        )
    for family, handler in handlers.items():
        if not callable(handler):
            raise ProbeError(
                f"observer {observer!r} handler for {family!r} is not callable"
            )
    return handlers


def _fuse(handlers: List[Callable[..., Any]]) -> Callable[..., Any]:
    """Fused chain for a plain observation family (2+ handlers)."""

    def fused(*args: Any) -> None:
        for handler in handlers:
            handler(*args)

    return fused


def _fuse_veto(handlers: List[Callable[..., Any]]) -> Callable[..., Any]:
    """Fused chain for a veto family: ``False`` iff any handler vetoed.

    Every handler is called even after a veto — a veto must not hide the
    event from the other observers.
    """
    if len(handlers) == 1:
        return handlers[0]

    def fused(*args: Any) -> Any:
        allow = True
        for handler in handlers:
            if handler(*args) is False:
                allow = False
        return allow

    return fused


def _fuse_filter(handlers: List[Callable[..., Any]]) -> Callable[..., Any]:
    """Fused chain for a filter family: thread the value, ``None`` keeps it.

    Wrapped even for a single handler so the slot always returns a value.
    """

    def fused(value: Any) -> Any:
        for handler in handlers:
            result = handler(value)
            if result is not None:
                value = result
        return value

    return fused


class ProbeRegistry:
    """Owns the observer list and compiles the per-family slots.

    ``attach`` order is call order within every fused chain (the runner
    attaches the sanitizer before the tracer, preserving the historical
    sanitizer-first ordering at shared sites). Attaching an already
    attached observer is a no-op; handlers are snapshotted at attach time.

    ``namespace`` is the mapping the compiled slots are written into —
    this module's globals for the default :data:`REGISTRY`, a plain dict
    in tests.
    """

    def __init__(self, namespace: Optional[Dict[str, Any]] = None) -> None:
        self._namespace: Dict[str, Any] = (
            globals() if namespace is None else namespace
        )
        self._attached: List[Tuple[Any, Dict[str, Callable[..., Any]]]] = []
        self._compile()

    # ------------------------------------------------------------------
    def attach(self, observer: Any) -> None:
        """Register *observer* and recompile every family it subscribes."""
        if any(attached is observer for attached, _ in self._attached):
            return
        self._attached.append((observer, handlers_of(observer)))
        self._compile()

    def detach(self, observer: Any) -> None:
        """Unregister *observer*; unknown observers are ignored."""
        remaining = [
            entry for entry in self._attached if entry[0] is not observer
        ]
        if len(remaining) != len(self._attached):
            self._attached = remaining
            self._compile()

    def observers(self) -> Tuple[Any, ...]:
        """The attached observers, in attach (= chain) order."""
        return tuple(observer for observer, _ in self._attached)

    # ------------------------------------------------------------------
    def _compile(self) -> None:
        """Rebuild every slot from the current observer list."""
        namespace = self._namespace
        for family in FAMILIES:
            handlers = [
                observer_handlers[family]
                for _, observer_handlers in self._attached
                if family in observer_handlers
            ]
            slot: Optional[Callable[..., Any]]
            if not handlers:
                slot = None
            elif family in FILTER_FAMILIES:
                slot = _fuse_filter(handlers)
            elif family in VETO_FAMILIES:
                slot = _fuse_veto(handlers)
            elif len(handlers) == 1:
                slot = handlers[0]
            else:
                slot = _fuse(handlers)
            namespace["on_" + family] = slot


#: The process-wide registry the hook sites are wired to. Library users
#: attach custom observers here (directly or via the module-level
#: :func:`attach`/:func:`detach` aliases); ``repro.sanity.install`` and
#: ``repro.trace.install`` do the same for the built-in observers.
REGISTRY = ProbeRegistry()

attach = REGISTRY.attach
detach = REGISTRY.detach
observers = REGISTRY.observers


class ProbeCounters(ProbeObserver):
    """The bus's perf facet: counts every event, per family.

    A ~20-line observer with no per-event payload inspection; its
    :meth:`perf_counters` snapshot merges into ``MetricsSummary.perf`` as
    ``probes.*`` entries when attached during a runner execution (the
    runner collects ``perf_counters()`` from every attached observer).
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def probe_handlers(self) -> Dict[str, Callable[..., Any]]:
        counts = self.counts

        def bump_handler(family: str) -> Callable[..., Any]:
            def bump(*_args: Any) -> None:
                counts[family] = counts.get(family, 0) + 1

            return bump

        return {family: bump_handler(family) for family in FAMILIES}

    def total(self) -> int:
        """Events observed across all families."""
        return sum(self.counts.values())

    def perf_counters(self) -> Dict[str, float]:
        """``probes.*`` entries for ``MetricsSummary.perf``."""
        return {
            f"probes.{family}": float(count)
            for family, count in sorted(self.counts.items())
        }

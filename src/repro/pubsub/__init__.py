"""Publish/subscribe layer: frames, topics, workload, brokers, publishers."""

from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.endpoints import PublisherProcess
from repro.pubsub.messages import AckFrame, PacketFrame, next_message_id, reset_message_ids
from repro.pubsub.topics import Subscription, TopicSpec, Workload, generate_workload

__all__ = [
    "AckFrame",
    "BrokerRuntime",
    "PacketFrame",
    "PublisherProcess",
    "Subscription",
    "TopicSpec",
    "Workload",
    "generate_workload",
    "next_message_id",
    "reset_message_ids",
]

"""Broker runtime: the per-node mechanics shared by every routing scheme.

Each broker node gets one :class:`BrokerRuntime`, which registers itself as
the node's frame handler on the overlay network and implements the pieces
that are identical across DCRD and the baselines:

* immediate hop-by-hop ACK of received DATA frames (Algorithm 2, line 2) —
  when the active strategy uses ACKs;
* duplicate suppression: a lost ACK makes the sender retransmit, so a broker
  can legitimately receive a byte-identical copy it already processed; the
  copy is re-ACKed (the sender is still waiting) but not re-forwarded;
* local delivery to subscribers hosted on this broker, including
  fragment reassembly for FEC-coded messages (a message with
  ``fragments_needed = k`` delivers when the k-th *distinct* fragment
  arrives);
* delegation of the forwarding decision to the
  :class:`~repro.routing.base.RoutingStrategy`.

The runtime is substrate-portable (see :mod:`repro.substrate`): it reads
time as ``ctx.sim._now`` and sends through ``ctx.network``'s
``attach``/``send_ack``/``transmit`` surface, both of which are satisfied
by the discrete-event kernel + :class:`OverlayNetwork` *and* by the live
:class:`~repro.live.clock.WallClock` +
:class:`~repro.live.transport.LiveTransport` pair — the same broker code
runs unchanged over asyncio TCP sockets, which is what the sim <-> live
conformance suite pins.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Deque, Dict, Set

from repro import probes as _probes
from repro.overlay.links import FrameKind
from repro.pubsub.messages import AckFrame, PacketFrame

# Bare allocation for the per-frame ACK reply (slots written in place).
_new_ack = object.__new__
from repro.routing.base import RoutingStrategy, RuntimeContext
from repro.util.errors import SimulationError

#: Bound on the per-broker duplicate-suppression window.
DEDUP_CAPACITY = 1 << 17


class BrokerRuntime:
    """The runtime of one broker node."""

    def __init__(self, node: int, ctx: RuntimeContext, strategy: RoutingStrategy) -> None:
        self.node = node
        self.ctx = ctx
        self.strategy = strategy
        # Hot-path bindings: one attribute hop per received frame instead of
        # two. ``uses_acks`` is a class-level constant on every strategy.
        self._network = ctx.network
        self._workload = ctx.workload
        self._metrics = ctx.metrics
        self._sim = ctx.sim
        self._uses_acks = strategy.uses_acks
        self._handle_ack = strategy.handle_ack
        self._handle_data = strategy.handle_data
        # ACK replies go through the network's dedicated ACK fast path when
        # it offers one (test doubles may not).
        send_ack = getattr(ctx.network, "send_ack", None)
        if send_ack is None:
            network_transmit = ctx.network.transmit

            def send_ack(src: int, dst: int, ack: AckFrame) -> None:
                network_transmit(src, dst, ack, FrameKind.ACK)

        self._send_ack = send_ack
        self._seen: Set[int] = set()
        self._seen_order: Deque[int] = deque()
        # FEC reassembly: msg_id -> set of distinct fragment indices seen.
        self._fragments: Dict[int, Set[int]] = {}
        self._fragment_order: Deque[int] = deque()
        # Shared subscription subgroups: one solve-time aggregation over
        # the workload replaces the per-broker local-topic set scan; the
        # local-delivery test is one indexed membership probe.
        self._subindex = ctx.workload.index()
        # Precomputed singleton for the destination-stripping difference.
        self._self_set = frozenset((node,))
        # Delivery pipeline seam: with an ordering plan on the context,
        # post-dedup locally deliverable frames are offered to a per-node
        # hold-back pipeline instead of the inlined terminal stage. The
        # ordering-off default is ``None`` — one slot load and an
        # ``is None`` check on the delivery path, the zero-cost
        # passthrough the fingerprint matrix pins.
        plan = getattr(ctx, "ordering", None)
        self._pipeline = plan.pipeline_for(self) if plan is not None else None
        self.frames_received = 0
        self.duplicates_suppressed = 0
        self.local_deliveries = 0
        ctx.network.attach(node, self.on_frame)
        attach_ack = getattr(ctx.network, "attach_ack", None)
        if attach_ack is not None:
            # partial(handle_ack, node) prepends this node in C — no
            # Python wrapper frame on the per-ACK path.
            attach_ack(node, partial(self._handle_ack, node))

    @property
    def local_topics(self) -> Set[int]:
        """Topics with a subscriber hosted on this broker."""
        index = self._subindex
        index.refresh()
        node = self.node
        return {
            topic for topic, members in index._members.items() if node in members
        }

    # ------------------------------------------------------------------
    def on_frame(self, sender: int, frame: object) -> None:
        """Network delivery hook for this node."""
        kind = frame.__class__
        if kind is AckFrame:
            self._handle_ack(self.node, sender, frame)
            return
        if kind is not PacketFrame and not isinstance(frame, PacketFrame):
            raise SimulationError(f"broker {self.node} got unknown frame {frame!r}")
        self.frames_received += 1
        node = self.node
        if self._uses_acks:
            # Slot-written AckFrame (no __init__ frame) — one reply per
            # received DATA copy makes this one of the hottest allocations.
            ack = _new_ack(AckFrame)
            ack.msg_id = frame.msg_id
            ack.acker = node
            ack.transfer_id = frame.transfer_id
            self._send_ack(node, sender, ack)
        # Duplicate suppression (inlined: one bounded seen-set probe on the
        # dedup key, which is the globally unique transfer id).
        key = frame.transfer_id
        seen = self._seen
        if key in seen:
            self.duplicates_suppressed += 1
            probe = _probes.on_dedup_discard
            if probe is not None:
                probe(self._sim._now, node, sender, frame)
            return
        seen.add(key)
        order = self._seen_order
        order.append(key)
        if len(order) > DEDUP_CAPACITY:
            seen.discard(order.popleft())
        probe = _probes.on_broker_accept
        if probe is not None:
            # Post-dedup: the same transfer must never pass twice, and the
            # carried routing path must be loop-free and in sync.
            probe(node, sender, frame)
        # Local delivery (inlined): deliver to a subscriber hosted here,
        # then forward whatever destinations remain.
        destinations = frame.destinations
        if node in destinations:
            # Subscription-subgroup lookup: one indexed membership probe
            # against the shared per-topic subscriber set, instead of a
            # per-broker local-topic scan kept fresh per broker.
            index = self._subindex
            if index.version != self._workload.version:
                index._rebuild()
            index.lookups += 1
            members = index._members.get(frame.topic)
            if (
                members is not None
                and node in members
                and (frame.fragments_needed <= 0 or self._decodable(frame))
            ):
                pipeline = self._pipeline
                if pipeline is not None:
                    pipeline.offer(frame)
                else:
                    first = self._metrics.record_delivery(
                        frame.msg_id,
                        node,
                        self._sim._now,
                        len(frame.routing_path),
                    )
                    if first:
                        self.local_deliveries += 1
                        probe = _probes.on_deliver
                        if probe is not None:
                            probe(self._sim._now, node, frame)
            destinations = destinations - self._self_set
            if not destinations:
                return
            frame = frame.with_destinations(destinations)
        elif not destinations:
            return
        self._handle_data(node, sender, frame)

    def deliver_frame(self, frame: PacketFrame) -> bool:
        """Terminal delivery stage: metrics + ``deliver`` probe.

        The ordering-off path keeps this logic inlined in
        :meth:`on_frame` (the historical hot block); delivery pipelines
        call it when a held or passthrough frame is finally released.
        Returns whether this was the first delivery of its
        (message, subscriber) pair.
        """
        first = self._metrics.record_delivery(
            frame.msg_id,
            self.node,
            self._sim._now,
            len(frame.routing_path),
        )
        if first:
            self.local_deliveries += 1
            probe = _probes.on_deliver
            if probe is not None:
                probe(self._sim._now, self.node, frame)
        return first

    def _decodable(self, frame: PacketFrame) -> bool:
        """Whether the message is complete once *frame* has arrived."""
        if frame.fragments_needed <= 0:
            return True
        seen = self._fragments.get(frame.msg_id)
        if seen is None:
            seen = set()
            self._fragments[frame.msg_id] = seen
            self._fragment_order.append(frame.msg_id)
            if len(self._fragment_order) > DEDUP_CAPACITY:
                self._fragments.pop(self._fragment_order.popleft(), None)
        seen.add(frame.fragment_index)
        return len(seen) >= frame.fragments_needed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BrokerRuntime(node={self.node}, topics={sorted(self.local_topics)})"

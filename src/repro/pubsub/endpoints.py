"""Publishers (and the thin subscriber abstraction).

Subscribers need no active process — delivery is recorded by the broker
runtime hosting them. Publishers are periodic processes: one packet every
``publish_interval`` seconds (paper: 1 packet/s, the ADS-B surveillance
rate), starting at the topic's random phase so topics do not burst in
lockstep.
"""

from __future__ import annotations

from typing import Optional

from repro.pubsub.messages import next_message_id
from repro.pubsub.topics import TopicSpec
from repro.routing.base import RoutingStrategy, RuntimeContext
from repro.sim.process import PeriodicProcess


class PublisherProcess:
    """Emits packets for one topic until ``stop_time`` (exclusive)."""

    def __init__(
        self,
        ctx: RuntimeContext,
        strategy: RoutingStrategy,
        spec: TopicSpec,
        stop_time: Optional[float] = None,
    ) -> None:
        self.ctx = ctx
        self.strategy = strategy
        self.spec = spec
        self.stop_time = stop_time
        self.published = 0
        self._process = PeriodicProcess(
            ctx.sim,
            period=spec.publish_interval,
            callback=self._publish_one,
            start_offset=spec.phase,
        )

    def start(self) -> None:
        """Begin publishing (first packet at the topic's phase offset)."""
        self._process.start()

    def stop(self) -> None:
        """Stop publishing immediately."""
        self._process.stop()

    def _publish_one(self) -> None:
        now = self.ctx.sim.now
        if self.stop_time is not None and now >= self.stop_time:
            self.stop()
            return
        # Re-read the topic spec each tick: subscriber churn replaces the
        # TopicSpec object inside the workload at runtime. The shared
        # SubscriptionIndex answers both the spec lookup and the deadline
        # map with one indexed access per tick (instead of a list scan
        # plus a rebuilt dict per publish), so publish cost stays
        # independent of subscriber count.
        topic = self.spec.topic
        index = self.ctx.workload.index()
        index.refresh()
        spec = index._specs.get(topic)
        if spec is not None:
            deadlines = index._deadlines[topic]
        else:
            spec = self.ctx.workload.topic(topic)  # unknown-topic KeyError
            deadlines = {sub.node: sub.deadline for sub in spec.subscriptions}
        self.spec = spec
        if not spec.subscriptions:
            return
        msg_id = next_message_id()
        self.ctx.metrics.expect(msg_id, topic, now, deadlines)
        self.strategy.publish(spec, msg_id)
        self.published += 1

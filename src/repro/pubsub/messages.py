"""Wire frames exchanged between brokers.

A published message is identified by a globally unique ``msg_id``. As it
moves through the overlay it is wrapped in :class:`PacketFrame` copies; each
copy carries the subset of subscribers it is responsible for
(``destinations``) and the ordered list of brokers that have sent it
(``routing_path``) — the in-band state DCRD uses for loop avoidance and
upstream rerouting (§III-D).

Every *distinct* copy additionally carries a globally unique ``transfer_id``
assigned when the copy is created. Retransmissions of a copy reuse the id,
so (a) the hop-by-hop :class:`AckFrame` can name exactly which transmission
it confirms even when several copies of one message are in flight between
the same pair of brokers, and (b) receivers can suppress byte-identical
duplicates caused by lost ACKs.

Frames are immutable; every hop builds new copies via
:meth:`PacketFrame.forwarded`. Frame construction sits on the data-plane
hot path (one copy per hop per message, plus retransmissions), so both
frame types are hand-written ``__slots__`` classes rather than frozen
dataclasses: a plain ``__init__`` skips the frozen-dataclass
``object.__setattr__`` indirection per field. Each frame also carries
``path_set``, a :class:`frozenset` view of ``routing_path`` maintained by
the constructors, so loop-avoidance membership tests (`candidate in
path_set`) are O(1) instead of scanning the tuple.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Optional, Tuple

from repro import probes as _probes

_message_counter = itertools.count(1)
_transfer_counter = itertools.count(1)

_INF = float("inf")
# Bare allocation for the copy fast paths (forwarded/with_destinations),
# which write every slot themselves instead of round-tripping __init__.
_new_frame = object.__new__


def next_message_id() -> int:
    """Allocate a fresh globally unique message id."""
    return next(_message_counter)


def next_transfer_id() -> int:
    """Allocate a fresh globally unique transfer (copy) id."""
    return next(_transfer_counter)


def reset_message_ids() -> None:
    """Reset both id counters (tests and independent experiment repetitions)."""
    global _message_counter, _transfer_counter
    _message_counter = itertools.count(1)
    _transfer_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# Ordering stamper hook. Mirrors the probe-slot discipline: ``None`` by
# default, so the ordering-off publish path pays one module-attribute load
# and one ``is None`` check — the same footprint class the fingerprint
# suite pins for probe sites. When an OrderingPlan activates, its stamper
# is installed here and every fresh frame gets an
# :class:`repro.ordering.tags.OrderTag` before the publish probe fires.
# ---------------------------------------------------------------------------
ORDER_STAMPER = None


def set_order_stamper(stamper) -> None:
    """Install (or with ``None`` remove) the publish-time order stamper."""
    global ORDER_STAMPER
    ORDER_STAMPER = stamper


class PacketFrame:
    """One copy of a published message in flight between two brokers.

    Attributes
    ----------
    msg_id:
        Globally unique id of the published message.
    transfer_id:
        Globally unique id of this copy; shared by its retransmissions.
    topic:
        Topic the message was published on.
    origin:
        Broker hosting the publisher.
    publish_time:
        Virtual time at which the publisher emitted the message.
    destinations:
        Subscriber broker ids this copy must still reach.
    routing_path:
        Ordered brokers that have *sent* this copy (each sender appends
        itself before transmitting — Algorithm 2, line 20).
    path_set:
        Frozenset view of ``routing_path`` for O(1) membership tests;
        derived, never passed by callers.
    source_route:
        Remaining explicit hops, used by the source-routed baselines
        (Multipath, FEC); their paths are fixed at publish time. Empty for
        DCRD/tree/oracle frames.
    fragment_index / fragments_needed:
        Forward-error-correction metadata (the FEC extension): this copy is
        fragment ``fragment_index`` of a message that is decodable once any
        ``fragments_needed`` *distinct* fragments arrive.
        ``fragments_needed == 0`` (the default) marks a self-contained
        packet that delivers on first arrival.
    size:
        Relative payload size in units of one full message (1.0 for normal
        packets; ``1/k`` for (n, k)-code fragments). Feeds the
        volume-based traffic metric and, on finite-capacity links, scales
        the serialisation time.
    priority:
        Urgency for priority-queueing link disciplines: the absolute
        virtual time of the copy's earliest destination deadline (lower =
        more urgent). ``inf`` (the default) means "no deadline known";
        FIFO links ignore this field entirely.
    order_tag:
        Delivery-ordering metadata stamped at publish time when an
        ordering plan is active (``None`` otherwise — the default for
        every ordering-off run). Shared by all copies of a message and
        excluded from ``_key()``: equality/dedup semantics are about the
        copy's wire identity, which the tag (a pure function of
        ``msg_id``) does not change.

    Instances are immutable by convention: every mutation-shaped operation
    (:meth:`forwarded`, :meth:`with_destinations`) returns a new frame.
    """

    __slots__ = (
        "msg_id",
        "transfer_id",
        "topic",
        "origin",
        "publish_time",
        "destinations",
        "routing_path",
        "path_set",
        "source_route",
        "fragment_index",
        "fragments_needed",
        "size",
        "priority",
        "order_tag",
    )

    def __init__(
        self,
        msg_id: int,
        transfer_id: int,
        topic: int,
        origin: int,
        publish_time: float,
        destinations: FrozenSet[int],
        routing_path: Tuple[int, ...],
        source_route: Tuple[int, ...] = (),
        fragment_index: int = -1,
        fragments_needed: int = 0,
        size: float = 1.0,
        priority: float = _INF,
        _path_set: Optional[FrozenSet[int]] = None,
        order_tag=None,
    ) -> None:
        self.msg_id = msg_id
        self.transfer_id = transfer_id
        self.topic = topic
        self.origin = origin
        self.publish_time = publish_time
        self.destinations = destinations
        self.routing_path = routing_path
        self.path_set = frozenset(routing_path) if _path_set is None else _path_set
        self.source_route = source_route
        self.fragment_index = fragment_index
        self.fragments_needed = fragments_needed
        self.size = size
        self.priority = priority
        self.order_tag = order_tag

    @staticmethod
    def fresh(
        msg_id: int,
        topic: int,
        origin: int,
        publish_time: float,
        destinations: FrozenSet[int],
        routing_path: Tuple[int, ...] = (),
        source_route: Tuple[int, ...] = (),
        fragment_index: int = -1,
        fragments_needed: int = 0,
        size: float = 1.0,
        priority: float = _INF,
    ) -> "PacketFrame":
        """Create a brand-new copy with its own transfer id."""
        frame = PacketFrame(
            msg_id,
            next_transfer_id(),
            topic,
            origin,
            publish_time,
            destinations,
            routing_path,
            source_route,
            fragment_index,
            fragments_needed,
            size,
            priority,
        )
        stamper = ORDER_STAMPER
        if stamper is not None:
            frame.order_tag = stamper(frame)
        probe = _probes.on_publish
        if probe is not None:
            probe(frame)
        return frame

    def forwarded(
        self,
        sender: int,
        destinations: FrozenSet[int],
        source_route: Tuple[int, ...] = (),
        priority: Optional[float] = None,
    ) -> "PacketFrame":
        """A new copy for the next hop, with *sender* appended to the path.

        ``priority`` overrides the inherited urgency (used when a copy's
        destination subset has a different earliest deadline than its
        parent frame). ``path_set`` is extended incrementally rather than
        rebuilt from the tuple. Slots are written directly (no ``__init__``
        marshalling) — this runs once per forwarded copy.
        """
        copy = _new_frame(PacketFrame)
        copy.msg_id = self.msg_id
        copy.transfer_id = next(_transfer_counter)
        copy.topic = self.topic
        copy.origin = self.origin
        copy.publish_time = self.publish_time
        copy.destinations = destinations
        copy.routing_path = self.routing_path + (sender,)
        copy.path_set = self.path_set.union((sender,))
        copy.source_route = source_route
        copy.fragment_index = self.fragment_index
        copy.fragments_needed = self.fragments_needed
        copy.size = self.size
        copy.priority = self.priority if priority is None else priority
        copy.order_tag = self.order_tag
        probe = _probes.on_fork
        if probe is not None:
            probe(self.transfer_id, copy.transfer_id)
        return copy

    def with_destinations(self, destinations: FrozenSet[int]) -> "PacketFrame":
        """The same copy (same ``transfer_id``) narrowed to *destinations*.

        Used by the broker when it strips itself from a received copy's
        destination set; everything else — including the transfer id, so
        ACK matching and dedup still work — is preserved.
        """
        copy = _new_frame(PacketFrame)
        copy.msg_id = self.msg_id
        copy.transfer_id = self.transfer_id
        copy.topic = self.topic
        copy.origin = self.origin
        copy.publish_time = self.publish_time
        copy.destinations = destinations
        copy.routing_path = self.routing_path
        copy.path_set = self.path_set
        copy.source_route = self.source_route
        copy.fragment_index = self.fragment_index
        copy.fragments_needed = self.fragments_needed
        copy.size = self.size
        copy.priority = self.priority
        copy.order_tag = self.order_tag
        return copy

    def visited(self, node: int) -> bool:
        """Whether *node* already appears on the routing path."""
        return node in self.path_set

    def upstream_of(self, node: int) -> int:
        """The broker *node* originally received this copy from.

        Per §III-D this is read from the routing path: the entry immediately
        before *node*'s first appearance; if *node* has not sent the copy
        yet, its upstream is the last sender on the path. Returns ``-1``
        when no upstream exists (*node* is the origin).
        """
        path = self.routing_path
        if node not in self.path_set:
            # Common case (the receiver is not on the path yet): O(1) probe
            # instead of a raised-and-caught ValueError from tuple.index.
            return path[-1] if path else -1
        index = path.index(node)
        return path[index - 1] if index > 0 else -1

    def dedup_key(self) -> int:
        """Key identifying byte-identical retransmitted copies."""
        return self.transfer_id

    def _key(self) -> tuple:
        return (
            self.msg_id,
            self.transfer_id,
            self.topic,
            self.origin,
            self.publish_time,
            self.destinations,
            self.routing_path,
            self.source_route,
            self.fragment_index,
            self.fragments_needed,
            self.size,
            self.priority,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not PacketFrame:
            return NotImplemented
        return self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketFrame(msg_id={self.msg_id}, transfer_id={self.transfer_id}, "
            f"topic={self.topic}, origin={self.origin}, "
            f"publish_time={self.publish_time}, destinations={set(self.destinations)}, "
            f"routing_path={self.routing_path}, source_route={self.source_route}, "
            f"fragment_index={self.fragment_index}, "
            f"fragments_needed={self.fragments_needed}, size={self.size}, "
            f"priority={self.priority})"
        )


class AckFrame:
    """Hop-by-hop acknowledgement of one :class:`PacketFrame` copy.

    ``acker`` is the broker confirming reception; ``transfer_id`` names the
    copy being confirmed (Algorithm 2 caches one packet per transmission and
    releases it on the matching ACK).
    """

    __slots__ = ("msg_id", "acker", "transfer_id")

    def __init__(self, msg_id: int, acker: int, transfer_id: int) -> None:
        self.msg_id = msg_id
        self.acker = acker
        self.transfer_id = transfer_id

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not AckFrame:
            return NotImplemented
        return (
            self.msg_id == other.msg_id
            and self.acker == other.acker
            and self.transfer_id == other.transfer_id
        )

    def __hash__(self) -> int:
        return hash((self.msg_id, self.acker, self.transfer_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AckFrame(msg_id={self.msg_id}, acker={self.acker}, "
            f"transfer_id={self.transfer_id})"
        )

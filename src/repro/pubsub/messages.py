"""Wire frames exchanged between brokers.

A published message is identified by a globally unique ``msg_id``. As it
moves through the overlay it is wrapped in :class:`PacketFrame` copies; each
copy carries the subset of subscribers it is responsible for
(``destinations``) and the ordered list of brokers that have sent it
(``routing_path``) — the in-band state DCRD uses for loop avoidance and
upstream rerouting (§III-D).

Every *distinct* copy additionally carries a globally unique ``transfer_id``
assigned when the copy is created. Retransmissions of a copy reuse the id,
so (a) the hop-by-hop :class:`AckFrame` can name exactly which transmission
it confirms even when several copies of one message are in flight between
the same pair of brokers, and (b) receivers can suppress byte-identical
duplicates caused by lost ACKs.

Frames are immutable; every hop builds new copies via :meth:`PacketFrame.forwarded`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

_message_counter = itertools.count(1)
_transfer_counter = itertools.count(1)


def next_message_id() -> int:
    """Allocate a fresh globally unique message id."""
    return next(_message_counter)


def next_transfer_id() -> int:
    """Allocate a fresh globally unique transfer (copy) id."""
    return next(_transfer_counter)


def reset_message_ids() -> None:
    """Reset both id counters (tests and independent experiment repetitions)."""
    global _message_counter, _transfer_counter
    _message_counter = itertools.count(1)
    _transfer_counter = itertools.count(1)


@dataclass(frozen=True)
class PacketFrame:
    """One copy of a published message in flight between two brokers.

    Attributes
    ----------
    msg_id:
        Globally unique id of the published message.
    transfer_id:
        Globally unique id of this copy; shared by its retransmissions.
    topic:
        Topic the message was published on.
    origin:
        Broker hosting the publisher.
    publish_time:
        Virtual time at which the publisher emitted the message.
    destinations:
        Subscriber broker ids this copy must still reach.
    routing_path:
        Ordered brokers that have *sent* this copy (each sender appends
        itself before transmitting — Algorithm 2, line 20).
    source_route:
        Remaining explicit hops, used by the source-routed baselines
        (Multipath, FEC); their paths are fixed at publish time. Empty for
        DCRD/tree/oracle frames.
    fragment_index / fragments_needed:
        Forward-error-correction metadata (the FEC extension): this copy is
        fragment ``fragment_index`` of a message that is decodable once any
        ``fragments_needed`` *distinct* fragments arrive.
        ``fragments_needed == 0`` (the default) marks a self-contained
        packet that delivers on first arrival.
    size:
        Relative payload size in units of one full message (1.0 for normal
        packets; ``1/k`` for (n, k)-code fragments). Feeds the
        volume-based traffic metric and, on finite-capacity links, scales
        the serialisation time.
    priority:
        Urgency for priority-queueing link disciplines: the absolute
        virtual time of the copy's earliest destination deadline (lower =
        more urgent). ``inf`` (the default) means "no deadline known";
        FIFO links ignore this field entirely.
    """

    msg_id: int
    transfer_id: int
    topic: int
    origin: int
    publish_time: float
    destinations: FrozenSet[int]
    routing_path: Tuple[int, ...]
    source_route: Tuple[int, ...] = ()
    fragment_index: int = -1
    fragments_needed: int = 0
    size: float = 1.0
    priority: float = float("inf")

    @staticmethod
    def fresh(
        msg_id: int,
        topic: int,
        origin: int,
        publish_time: float,
        destinations: FrozenSet[int],
        routing_path: Tuple[int, ...] = (),
        source_route: Tuple[int, ...] = (),
        fragment_index: int = -1,
        fragments_needed: int = 0,
        size: float = 1.0,
        priority: float = float("inf"),
    ) -> "PacketFrame":
        """Create a brand-new copy with its own transfer id."""
        return PacketFrame(
            msg_id=msg_id,
            transfer_id=next_transfer_id(),
            topic=topic,
            origin=origin,
            publish_time=publish_time,
            destinations=destinations,
            routing_path=routing_path,
            source_route=source_route,
            fragment_index=fragment_index,
            fragments_needed=fragments_needed,
            size=size,
            priority=priority,
        )

    def forwarded(
        self,
        sender: int,
        destinations: FrozenSet[int],
        source_route: Tuple[int, ...] = (),
        priority: Optional[float] = None,
    ) -> "PacketFrame":
        """A new copy for the next hop, with *sender* appended to the path.

        ``priority`` overrides the inherited urgency (used when a copy's
        destination subset has a different earliest deadline than its
        parent frame).
        """
        return PacketFrame.fresh(
            msg_id=self.msg_id,
            topic=self.topic,
            origin=self.origin,
            publish_time=self.publish_time,
            destinations=destinations,
            routing_path=self.routing_path + (sender,),
            source_route=source_route,
            fragment_index=self.fragment_index,
            fragments_needed=self.fragments_needed,
            size=self.size,
            priority=self.priority if priority is None else priority,
        )

    def visited(self, node: int) -> bool:
        """Whether *node* already appears on the routing path."""
        return node in self.routing_path

    def upstream_of(self, node: int) -> int:
        """The broker *node* originally received this copy from.

        Per §III-D this is read from the routing path: the entry immediately
        before *node*'s first appearance; if *node* has not sent the copy
        yet, its upstream is the last sender on the path. Returns ``-1``
        when no upstream exists (*node* is the origin).
        """
        path = self.routing_path
        try:
            index = path.index(node)
        except ValueError:
            return path[-1] if path else -1
        return path[index - 1] if index > 0 else -1

    def dedup_key(self) -> int:
        """Key identifying byte-identical retransmitted copies."""
        return self.transfer_id


@dataclass(frozen=True)
class AckFrame:
    """Hop-by-hop acknowledgement of one :class:`PacketFrame` copy.

    ``acker`` is the broker confirming reception; ``transfer_id`` names the
    copy being confirmed (Algorithm 2 caches one packet per transmission and
    releases it on the matching ACK).
    """

    msg_id: int
    acker: int
    transfer_id: int

"""Topics, subscriptions, and the paper's workload generator.

Paper workload (§IV-A): 10 topics, each with one publisher placed on a
randomly chosen broker, publishing at 1 packet/s (the ADS-B air-surveillance
rate). For each topic a subscriber-placement probability ``Ps`` is drawn
uniformly from [0.2, 0.6]; every broker then hosts a subscriber for that
topic with probability ``Ps``. Each publisher→subscriber pair has a delay
requirement equal to ``deadline_factor`` (default 3) times the shortest-path
delay between the two brokers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.overlay.topology import Topology
from repro.util.validation import (
    require,
    require_in_range,
    require_positive,
    require_probability,
)


@dataclass(frozen=True)
class Subscription:
    """One subscriber of one topic.

    Attributes
    ----------
    node:
        Broker hosting the subscriber.
    deadline:
        End-to-end delay requirement ``D_PS`` in seconds, measured from
        publish time.
    """

    node: int
    deadline: float


@dataclass(frozen=True)
class TopicSpec:
    """A topic: its publisher, its subscribers, and the publish schedule."""

    topic: int
    publisher: int
    subscriptions: Tuple[Subscription, ...]
    publish_interval: float = 1.0
    phase: float = 0.0

    @property
    def subscriber_nodes(self) -> Tuple[int, ...]:
        """Broker ids of all subscribers, in subscription order."""
        return tuple(sub.node for sub in self.subscriptions)

    def deadline_of(self, node: int) -> float:
        """The delay requirement of the subscriber hosted at *node*."""
        for sub in self.subscriptions:
            if sub.node == node:
                return sub.deadline
        raise KeyError(f"node {node} does not subscribe to topic {self.topic}")


class SubscriptionIndex:
    """Solve-time aggregation of the workload's subscriber sets.

    The broker data plane answers the same three questions for every
    arriving frame — *is this node subscribed to this topic?*, *who are all
    the subscribers?*, *what are their deadlines?* — and before this index
    existed each broker derived its own answer by iterating subscription
    specs. The index aggregates them once per workload version into flat
    per-topic structures shared by every broker:

    * ``members(topic)`` — a frozenset (int-set) of subscriber broker ids,
      giving O(1) membership subgroup lookups;
    * ``bits(topic)`` — the same subgroup as an int bitmap (bit *n* set iff
      broker *n* subscribes), the compact form equivalence tests compare
      against brute-force iteration;
    * ``destinations(topic)`` / ``deadlines(topic)`` — the publish-time
      fan-out set and deadline map, cached so one publish resolves all
      subscribers with one indexed lookup instead of rebuilding
      per-subscription collections.

    The index rebuilds lazily when :attr:`Workload.version` moves (churn),
    so steady-state lookups never touch the specs. ``lookups`` counts
    subgroup membership queries for the perf layer.
    """

    __slots__ = (
        "workload",
        "version",
        "lookups",
        "_specs",
        "_members",
        "_bits",
        "_destinations",
        "_deadlines",
    )

    def __init__(self, workload: "Workload") -> None:
        self.workload = workload
        self.version = -1
        self.lookups = 0
        self._rebuild()

    def _rebuild(self) -> None:
        """Re-aggregate every per-topic subgroup (one pass over the specs)."""
        self.version = self.workload.version
        self._specs: Dict[int, TopicSpec] = {}
        self._members: Dict[int, frozenset] = {}
        self._bits: Dict[int, int] = {}
        self._destinations: Dict[int, frozenset] = {}
        self._deadlines: Dict[int, Dict[int, float]] = {}
        for spec in self.workload.topics:
            topic = spec.topic
            nodes = spec.subscriber_nodes
            members = frozenset(nodes)
            bits = 0
            for node in nodes:
                bits |= 1 << node
            self._specs[topic] = spec
            self._members[topic] = members
            self._bits[topic] = bits
            self._destinations[topic] = members
            self._deadlines[topic] = {
                sub.node: sub.deadline for sub in spec.subscriptions
            }

    def refresh(self) -> None:
        """Rebuild if the workload churned since the last aggregation."""
        if self.version != self.workload.version:
            self._rebuild()

    def spec(self, topic: int) -> TopicSpec:
        """O(1) topic lookup (the list scan only runs on rebuild)."""
        self.refresh()
        try:
            return self._specs[topic]
        except KeyError:
            raise KeyError(f"unknown topic {topic}") from None

    def members(self, topic: int) -> frozenset:
        """Subscriber broker ids of *topic* as a frozenset (empty if unknown)."""
        self.refresh()
        self.lookups += 1
        return self._members.get(topic, frozenset())

    def bits(self, topic: int) -> int:
        """Subscriber subgroup of *topic* as an int bitmap (0 if unknown)."""
        self.refresh()
        return self._bits.get(topic, 0)

    def destinations(self, topic: int) -> frozenset:
        """The publish-time fan-out set of *topic* (cached frozenset)."""
        self.refresh()
        return self._destinations[topic]

    def deadlines(self, topic: int) -> Dict[int, float]:
        """Per-subscriber deadline map of *topic* (cached; treat as read-only)."""
        self.refresh()
        return self._deadlines[topic]


@dataclass
class Workload:
    """The full pub/sub population of one experiment.

    The population may change at runtime (subscriber churn):
    :meth:`add_subscription` / :meth:`remove_subscription` swap the affected
    :class:`TopicSpec` for an updated copy and bump :attr:`version` so
    cached views (broker-local topic sets, the shared
    :class:`SubscriptionIndex`) can refresh lazily.
    """

    topics: List[TopicSpec] = field(default_factory=list)
    version: int = 0

    def index(self) -> SubscriptionIndex:
        """The shared :class:`SubscriptionIndex` over this workload.

        Created on first use and cached on the instance; the index itself
        refreshes lazily via :attr:`version`, so callers may hold it for
        the whole run.
        """
        try:
            return self._index
        except AttributeError:
            self._index = SubscriptionIndex(self)
            return self._index

    @property
    def num_topics(self) -> int:
        """Number of topics."""
        return len(self.topics)

    @property
    def total_subscriptions(self) -> int:
        """Total (topic, subscriber) pairs across the workload."""
        return sum(len(t.subscriptions) for t in self.topics)

    def topic(self, topic_id: int) -> TopicSpec:
        """Look up a topic by id."""
        for spec in self.topics:
            if spec.topic == topic_id:
                return spec
        raise KeyError(f"unknown topic {topic_id}")

    def pairs(self) -> List[Tuple[int, int, int, float]]:
        """All (topic, publisher, subscriber, deadline) tuples."""
        result = []
        for spec in self.topics:
            for sub in spec.subscriptions:
                result.append((spec.topic, spec.publisher, sub.node, sub.deadline))
        return result

    # ------------------------------------------------------------------
    # Runtime churn
    # ------------------------------------------------------------------
    def _replace_topic(self, updated: TopicSpec) -> None:
        for index, spec in enumerate(self.topics):
            if spec.topic == updated.topic:
                self.topics[index] = updated
                self.version += 1
                return
        raise KeyError(f"unknown topic {updated.topic}")

    def add_subscription(self, topic_id: int, subscription: Subscription) -> None:
        """Subscribe ``subscription.node`` to *topic_id* (idempotent-safe)."""
        spec = self.topic(topic_id)
        if subscription.node in spec.subscriber_nodes:
            raise KeyError(
                f"node {subscription.node} already subscribes to topic {topic_id}"
            )
        subscriptions = tuple(
            sorted(spec.subscriptions + (subscription,), key=lambda s: s.node)
        )
        self._replace_topic(
            TopicSpec(
                topic=spec.topic,
                publisher=spec.publisher,
                subscriptions=subscriptions,
                publish_interval=spec.publish_interval,
                phase=spec.phase,
            )
        )

    def remove_subscription(self, topic_id: int, node: int) -> Subscription:
        """Unsubscribe *node* from *topic_id*; returns the removed entry."""
        spec = self.topic(topic_id)
        removed = None
        remaining = []
        for sub in spec.subscriptions:
            if sub.node == node:
                removed = sub
            else:
                remaining.append(sub)
        if removed is None:
            raise KeyError(f"node {node} does not subscribe to topic {topic_id}")
        self._replace_topic(
            TopicSpec(
                topic=spec.topic,
                publisher=spec.publisher,
                subscriptions=tuple(remaining),
                publish_interval=spec.publish_interval,
                phase=spec.phase,
            )
        )
        return removed


def generate_workload(
    topology: Topology,
    rng: np.random.Generator,
    num_topics: int = 10,
    publish_interval: float = 1.0,
    ps_range: Tuple[float, float] = (0.2, 0.6),
    deadline_factor: float = 3.0,
    deadline_factor_choices: Optional[Sequence[float]] = None,
    allow_self_subscription: bool = False,
    randomize_phase: bool = True,
) -> Workload:
    """Build the paper's workload on *topology*.

    Parameters
    ----------
    topology:
        The overlay the workload runs on.
    rng:
        Random generator (use ``streams.get("workload")``).
    num_topics:
        Number of topics, each with one publisher (paper: 10).
    publish_interval:
        Seconds between packets of one publisher (paper: 1.0).
    ps_range:
        Range from which each topic's subscriber probability ``Ps`` is drawn
        (paper: [0.2, 0.6]).
    deadline_factor:
        Delay requirement as a multiple of the shortest-path delay
        (paper default: 3; Figure 6 sweeps it).
    deadline_factor_choices:
        Optional per-topic urgency classes: each topic draws its factor
        uniformly from this sequence instead of using ``deadline_factor``
        (e.g. ``(1.5, 8.0)`` mixes urgent and bulk topics — the setting
        where EDF priority queueing becomes meaningful).
    allow_self_subscription:
        Whether the publisher's own broker may also subscribe. Off by
        default: a co-located subscriber has zero network delay and would
        only dilute the metrics.
    randomize_phase:
        Give each publisher a random phase in [0, interval) so packets do
        not burst synchronously.

    Every topic is guaranteed at least one subscriber (a uniformly random
    eligible broker is forced when the Bernoulli placement selects none).
    """
    require(num_topics >= 1, "num_topics must be >= 1")
    require_positive(publish_interval, "publish_interval")
    require_probability(ps_range[0], "ps_range[0]")
    require_probability(ps_range[1], "ps_range[1]")
    require(ps_range[0] <= ps_range[1], "ps_range must be non-decreasing")
    require_in_range(deadline_factor, 1.0, float("inf"), "deadline_factor")
    num_nodes = topology.num_nodes
    require(
        num_nodes >= 2 or allow_self_subscription,
        "need >= 2 brokers unless self-subscription is allowed",
    )

    # Publishers on randomly chosen brokers; distinct while brokers last,
    # mirroring "deploy 10 publishers on 10 randomly chosen broker nodes".
    if num_topics <= num_nodes:
        publishers = rng.choice(num_nodes, size=num_topics, replace=False)
    else:
        publishers = rng.integers(0, num_nodes, size=num_topics)

    if deadline_factor_choices is not None:
        require(len(deadline_factor_choices) >= 1, "empty deadline_factor_choices")
        for choice in deadline_factor_choices:
            require_in_range(choice, 1.0, float("inf"), "deadline_factor_choices[*]")

    topics: List[TopicSpec] = []
    for topic_id in range(num_topics):
        publisher = int(publishers[topic_id])
        if deadline_factor_choices is not None:
            factor = float(
                deadline_factor_choices[
                    int(rng.integers(0, len(deadline_factor_choices)))
                ]
            )
        else:
            factor = deadline_factor
        ps = float(rng.uniform(ps_range[0], ps_range[1]))
        eligible = [
            node
            for node in topology.nodes
            if allow_self_subscription or node != publisher
        ]
        chosen = [node for node in eligible if rng.random() < ps]
        if not chosen:
            chosen = [int(rng.choice(eligible))]
        subscriptions = tuple(
            Subscription(
                node=node,
                deadline=factor * topology.shortest_delay(publisher, node),
            )
            for node in sorted(chosen)
        )
        phase = float(rng.uniform(0.0, publish_interval)) if randomize_phase else 0.0
        topics.append(
            TopicSpec(
                topic=topic_id,
                publisher=publisher,
                subscriptions=subscriptions,
                publish_interval=publish_interval,
                phase=phase,
            )
        )
    return Workload(topics=topics)


def rescale_deadlines(workload: Workload, topology: Topology, factor: float) -> Workload:
    """A copy of *workload* with deadlines set to ``factor`` × shortest delay.

    Used by the Figure 6 sweep so that all deadline factors share the same
    topic population and publisher placement.
    """
    require_positive(factor, "factor")
    topics = []
    for spec in workload.topics:
        subscriptions = tuple(
            Subscription(
                node=sub.node,
                deadline=factor * topology.shortest_delay(spec.publisher, sub.node),
            )
            for sub in spec.subscriptions
        )
        topics.append(
            TopicSpec(
                topic=spec.topic,
                publisher=spec.publisher,
                subscriptions=subscriptions,
                publish_interval=spec.publish_interval,
                phase=spec.phase,
            )
        )
    return Workload(topics=topics)

"""Routing strategies: DCRD lives in :mod:`repro.core`; baselines live here."""

from repro.routing.base import ProtocolParams, RoutingStrategy, RuntimeContext
from repro.routing.multipath import MultipathStrategy
from repro.routing.oracle import OracleStrategy
from repro.routing.paths import (
    k_shortest_delay_paths,
    least_overlapping_path,
    path_delay,
    shared_links,
)
from repro.routing.trees import DTreeStrategy, RTreeStrategy, TreeStrategy

__all__ = [
    "DTreeStrategy",
    "MultipathStrategy",
    "OracleStrategy",
    "ProtocolParams",
    "RTreeStrategy",
    "RoutingStrategy",
    "RuntimeContext",
    "TreeStrategy",
    "k_shortest_delay_paths",
    "least_overlapping_path",
    "path_delay",
    "shared_links",
]

"""Hop-by-hop ARQ: send one frame copy to a neighbour, retrying up to ``m``.

DCRD and the tree/multipath baselines all use the same per-link mechanism
(§III, §IV-D7): transmit, wait ``ack_timeout`` for the hop-by-hop ACK,
retransmit on silence, and after ``m`` unacknowledged transmissions declare
the link attempt failed. What differs between schemes is only the *reaction*
to success/failure, expressed here as callbacks.

:class:`ArqSender` is shared by all brokers of a run (transfer ids are
globally unique, so one table suffices) and tracks every outstanding copy.

The *timeout policy* is pluggable: the paper's static
``factor * alpha`` timer is the default
(:class:`MonitorTimeoutPolicy`); the congestion extension substitutes an
RTT-tracking policy (see :mod:`repro.extensions.adaptive`). Policies
receive Karn-filtered RTT samples (first-attempt ACKs only, so a sample is
never ambiguous between a transmission and its retransmission).

This module sits on the data-plane hot path — every copy sent schedules an
ACK-timeout event, and in healthy networks nearly every one is cancelled by
the ACK a propagation round-trip later. Each outstanding copy therefore
holds the raw kernel :class:`~repro.sim.engine.Event` (no
:class:`~repro.sim.process.Timer` indirection), the static timeout policy
memoises its per-direction answer until the link monitor publishes new
estimates, and :attr:`ArqSender.timers_cancelled` counts the cancellations
feeding the kernel's tombstone compaction.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Callable, Dict, Optional, Protocol, Tuple

from repro import probes as _probes
from repro.overlay.links import FrameKind
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.routing.base import RuntimeContext
from repro.sim.engine import Event


class TimeoutPolicy(Protocol):
    """Decides how long a sender waits for each hop-by-hop ACK."""

    def timeout(self, src: int, dst: int) -> float:
        """Current ACK timeout for the (src, dst) link direction."""
        ...

    def on_sample(self, src: int, dst: int, rtt: float) -> None:
        """Feed one unambiguous (first-attempt) RTT observation."""
        ...


class MonitorTimeoutPolicy:
    """The paper's static timer: ``ack_timeout_factor * alpha`` (+slack).

    The timeout is a pure function of the monitor's current alpha estimate,
    which only changes when a monitor refresh publishes new values; answers
    are cached per direction and invalidated via ``monitor.version``.
    """

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx
        self._cache: Dict[Tuple[int, int], float] = {}
        self._cache_version = -1

    def timeout(self, src: int, dst: int) -> float:
        """Static timeout from the monitor's propagation-delay estimate."""
        monitor = self.ctx.monitor
        if monitor.version != self._cache_version:
            self._cache.clear()
            self._cache_version = monitor.version
        key = (src, dst)
        value = self._cache.get(key)
        if value is None:
            alpha = monitor.estimate(src, dst).alpha
            value = self.ctx.params.ack_timeout(alpha)
            self._cache[key] = value
        return value

    def on_sample(self, src: int, dst: int, rtt: float) -> None:
        """Static policy: samples are ignored."""


class _Outstanding:
    """One unacknowledged frame copy and its retry state."""

    __slots__ = ("src", "dst", "frame", "attempts", "event", "on_acked", "on_failed", "sent_at")

    def __init__(
        self,
        src: int,
        dst: int,
        frame: PacketFrame,
        on_acked: Callable[[PacketFrame], None],
        on_failed: Callable[[PacketFrame], None],
    ) -> None:
        self.src = src
        self.dst = dst
        self.frame = frame
        self.attempts = 0
        self.event: Optional[Event] = None
        self.on_acked = on_acked
        self.on_failed = on_failed
        self.sent_at = 0.0


class ArqSender:
    """Reliable-ish single-hop delivery with an ``m``-transmission budget."""

    def __init__(
        self, ctx: RuntimeContext, timeout_policy: Optional[TimeoutPolicy] = None
    ) -> None:
        self.ctx = ctx
        self.timeout_policy: TimeoutPolicy = (
            timeout_policy if timeout_policy is not None else MonitorTimeoutPolicy(ctx)
        )
        # Hot-path bindings (one attribute hop instead of two per send/ACK).
        # The policy and the retry budget are fixed at construction.
        self._sim = ctx.sim
        self._network = ctx.network
        self._timeout = self.timeout_policy.timeout
        self._m = ctx.params.m
        # Karn-filtered RTT samples cost a clock read per ACK; skip the whole
        # feed when the policy's on_sample is the static policy's no-op.
        self._rtt_sampling = (
            type(self.timeout_policy).on_sample is not MonitorTimeoutPolicy.on_sample
        )
        # Direct calendar-queue access for the per-copy timeout push —
        # inlined sim.schedule minus the call overhead (timeouts are always
        # positive). Both aliases stay valid: the kernel mutates its heap
        # strictly in place.
        self._sim_heap = ctx.sim._heap
        self._sim_seq = ctx.sim._seq
        self._on_event_cancelled = ctx.sim._on_event_cancelled
        self._outstanding: Dict[int, _Outstanding] = {}
        self.acked = 0
        self.failed = 0
        self.retransmissions = 0
        #: ACK-timeout events cancelled because the ACK arrived first (each
        #: one leaves a tombstone for the kernel's heap compaction to reap).
        self.timers_cancelled = 0

    @property
    def in_flight(self) -> int:
        """Number of copies currently awaiting an ACK."""
        return len(self._outstanding)

    def send(
        self,
        src: int,
        dst: int,
        frame: PacketFrame,
        on_acked: Callable[[PacketFrame], None],
        on_failed: Callable[[PacketFrame], None],
    ) -> None:
        """Transmit *frame* from *src* to the adjacent *dst* with ARQ.

        Exactly one of the callbacks eventually fires: ``on_acked(frame)``
        when the neighbour confirms reception, ``on_failed(frame)`` after
        ``m`` transmissions went unacknowledged.
        """
        entry = _Outstanding(src, dst, frame, on_acked, on_failed)
        self._outstanding[frame.transfer_id] = entry
        self._transmit(entry)

    def handle_ack(self, node: int, sender: int, ack: AckFrame) -> None:
        """Process an ACK received at *node*; unknown/duplicate ACKs are ignored."""
        entry = self._outstanding.get(ack.transfer_id)
        if entry is None or entry.src != node or entry.dst != sender:
            return
        del self._outstanding[ack.transfer_id]
        event = entry.event
        if event is not None:
            # Veto family: a handler returning False keeps the timer alive
            # (the sanitizer's MUTATE_SKIP_TIMER_CANCEL leak, so the
            # end-of-run orphan check must catch it).
            probe = _probes.on_timer_cancelled
            if probe is None or probe(event.seq) is not False:
                event.cancel()
                self.timers_cancelled += 1
        self.acked += 1
        probe = _probes.on_ack
        if probe is not None:
            probe(self._sim._now, node, sender, entry.frame)
        if self._rtt_sampling and entry.attempts == 1:
            # Karn's rule: only first-attempt ACKs give unambiguous RTTs.
            self.timeout_policy.on_sample(
                entry.src, entry.dst, self._sim._now - entry.sent_at
            )
        entry.on_acked(entry.frame)

    # ------------------------------------------------------------------
    def _transmit(self, entry: _Outstanding) -> None:
        entry.attempts += 1
        if entry.attempts > 1:
            self.retransmissions += 1
        sim = self._sim
        if self._rtt_sampling:
            entry.sent_at = sim._now
        src = entry.src
        dst = entry.dst
        self._network.transmit(src, dst, entry.frame, FrameKind.DATA)
        time = sim._now + self._timeout(src, dst)
        seq = next(self._sim_seq)
        entry.event = event = Event(
            time, seq, self._on_timeout, (entry,), self._on_event_cancelled
        )
        _heappush(self._sim_heap, (time, seq, event))
        sim._live += 1
        probe = _probes.on_timer_started
        if probe is not None:
            probe(seq, time, entry.frame)

    def _on_timeout(self, entry: _Outstanding) -> None:
        if entry.frame.transfer_id not in self._outstanding:
            return
        probe = _probes.on_timer_fired
        if probe is not None:
            # After the outstanding check on purpose: a fire that finds its
            # transfer already settled must NOT count as the settlement
            # (that is exactly how a leaked cancel shows up as an orphan).
            probe(entry.event.seq)
        probe = _probes.on_ack_timeout
        if probe is not None:
            probe(
                self._sim._now,
                entry.src,
                entry.dst,
                entry.frame,
                entry.attempts,
                entry.attempts < self._m,
            )
        if entry.attempts < self._m:
            self._transmit(entry)
            return
        del self._outstanding[entry.frame.transfer_id]
        self.failed += 1
        entry.on_failed(entry.frame)

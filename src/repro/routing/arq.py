"""Hop-by-hop ARQ: send one frame copy to a neighbour, retrying up to ``m``.

DCRD and the tree/multipath baselines all use the same per-link mechanism
(§III, §IV-D7): transmit, wait ``ack_timeout`` for the hop-by-hop ACK,
retransmit on silence, and after ``m`` unacknowledged transmissions declare
the link attempt failed. What differs between schemes is only the *reaction*
to success/failure, expressed here as callbacks.

:class:`ArqSender` is shared by all brokers of a run (transfer ids are
globally unique, so one table suffices) and tracks every outstanding copy.

The *timeout policy* is pluggable: the paper's static
``factor * alpha`` timer is the default
(:class:`MonitorTimeoutPolicy`); the congestion extension substitutes an
RTT-tracking policy (see :mod:`repro.extensions.adaptive`). Policies
receive Karn-filtered RTT samples (first-attempt ACKs only, so a sample is
never ambiguous between a transmission and its retransmission).

This module sits on the data-plane hot path — every copy sent schedules an
ACK-timeout event, and in healthy networks nearly every one is cancelled by
the ACK a propagation round-trip later. Each outstanding copy therefore
holds the raw kernel :class:`~repro.sim.engine.Event` (no
:class:`~repro.sim.process.Timer` indirection), the static timeout policy
memoises its per-direction answer until the link monitor publishes new
estimates, and :attr:`ArqSender.timers_cancelled` counts the cancellations
feeding the kernel's tombstone compaction.

The sender is substrate-portable (see :mod:`repro.substrate`): when
``ctx.sim`` offers ``calendar_kernel()`` — the discrete-event kernel —
timeouts are pushed onto the raw calendar queue exactly as described
above, byte-identical to every release since the flat-state refactor.
Any other :class:`~repro.substrate.Clock` (the live wall clock) gets the
portable path: timeouts go through ``clock.schedule()`` and the returned
:class:`~repro.substrate.TimerHandle` plays the Event's role. Latent
timer elision stays kernel-only.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Callable, Dict, Optional, Protocol, Tuple

from repro import probes as _probes
from repro.overlay.links import FrameKind
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.routing.base import RuntimeContext
from repro.sim.engine import Event


class TimeoutPolicy(Protocol):
    """Decides how long a sender waits for each hop-by-hop ACK."""

    def timeout(self, src: int, dst: int) -> float:
        """Current ACK timeout for the (src, dst) link direction."""
        ...

    def on_sample(self, src: int, dst: int, rtt: float) -> None:
        """Feed one unambiguous (first-attempt) RTT observation."""
        ...


class MonitorTimeoutPolicy:
    """The paper's static timer: ``ack_timeout_factor * alpha`` (+slack).

    The timeout is a pure function of the monitor's current alpha estimate,
    which only changes when a monitor refresh publishes new values; answers
    are cached per direction and invalidated via ``monitor.version``.
    """

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx
        # Keyed by the packed direction id (src << 21 | dst) — the same
        # interning the overlay's direction table uses — so the per-copy
        # lookup hashes one int instead of allocating a tuple.
        self._cache: Dict[int, float] = {}
        self._cache_version = -1

    def timeout(self, src: int, dst: int) -> float:
        """Static timeout from the monitor's propagation-delay estimate."""
        monitor = self.ctx.monitor
        if monitor.version != self._cache_version:
            self._cache.clear()
            self._cache_version = monitor.version
        key = (src << 21) | dst
        value = self._cache.get(key)
        if value is None:
            alpha = monitor.estimate(src, dst).alpha
            value = self.ctx.params.ack_timeout(alpha)
            self._cache[key] = value
        return value

    def on_sample(self, src: int, dst: int, rtt: float) -> None:
        """Static policy: samples are ignored."""


class _Outstanding:
    """One unacknowledged frame copy and its retry state.

    ``latent_seq >= 0`` marks a *latent* timeout: the kernel sequence
    number and deadline were reserved at transmit time, but no heap entry
    exists yet — it is pushed (with the reserved ``(time, seq)`` key, so
    the schedule is unchanged) only if the copy's ACK is lost.
    """

    __slots__ = (
        "src",
        "dst",
        "frame",
        "attempts",
        "event",
        "on_acked",
        "on_failed",
        "sent_at",
        "latent_time",
        "latent_seq",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        frame: PacketFrame,
        on_acked: Callable[[PacketFrame], None],
        on_failed: Callable[[PacketFrame], None],
    ) -> None:
        self.src = src
        self.dst = dst
        self.frame = frame
        self.attempts = 0
        self.event: Optional[Event] = None
        self.on_acked = on_acked
        self.on_failed = on_failed
        self.sent_at = 0.0
        self.latent_time = 0.0
        self.latent_seq = -1


class ArqSender:
    """Reliable-ish single-hop delivery with an ``m``-transmission budget."""

    def __init__(
        self, ctx: RuntimeContext, timeout_policy: Optional[TimeoutPolicy] = None
    ) -> None:
        self.ctx = ctx
        self.timeout_policy: TimeoutPolicy = (
            timeout_policy if timeout_policy is not None else MonitorTimeoutPolicy(ctx)
        )
        # Hot-path bindings (one attribute hop instead of two per send/ACK).
        # The policy and the retry budget are fixed at construction.
        self._sim = ctx.sim
        self._network = ctx.network
        # DATA copies go out through the network's specialised fast path
        # when it offers one (test doubles may not).
        send_data = getattr(ctx.network, "send_data", None)
        if send_data is None:
            network_transmit = ctx.network.transmit

            def send_data(src: int, dst: int, frame: PacketFrame) -> None:
                network_transmit(src, dst, frame, FrameKind.DATA)

        self._send_data = send_data
        self._timeout = self.timeout_policy.timeout
        self._m = ctx.params.m
        # Karn-filtered RTT samples cost a clock read per ACK; skip the whole
        # feed when the policy's on_sample is the static policy's no-op.
        self._rtt_sampling = (
            type(self.timeout_policy).on_sample is not MonitorTimeoutPolicy.on_sample
        )
        # Direct calendar-queue access for the per-copy timeout push —
        # inlined sim.schedule minus the call overhead (timeouts are always
        # positive). Both aliases stay valid: the kernel mutates its heap
        # strictly in place. A portable Clock (no calendar_kernel — e.g.
        # the live wall clock) routes timeouts through its schedule() API
        # instead; the handle only needs .seq/.cancel() (TimerHandle).
        kernel = getattr(ctx.sim, "calendar_kernel", None)
        if kernel is not None:
            self._sim_heap, self._sim_seq, self._on_event_cancelled = kernel()
        else:
            self._sim_heap = None
            self._sim_seq = None
            self._on_event_cancelled = None
        self._outstanding: Dict[int, _Outstanding] = {}
        # Latent-timer elision (opt-in, see enable_timer_elision): per
        # packed direction id, the exact (d_fwd, d_rev) delay pair when
        # both the copy and its ACK reply run compiled fast-path
        # deliveries, else False.
        self._elide_timers = False
        self._rt_cache: Dict[int, object] = {}
        # Unified per-direction transmit constants for the static timeout
        # policy: packed direction id -> (timeout, rt_pair_or_False),
        # invalidated when the monitor publishes new estimates. One dict
        # probe per copy replaces the policy call plus the rt lookup.
        self._static_timeout = type(self.timeout_policy) is MonitorTimeoutPolicy
        self._monitor = ctx.monitor
        self._dir_info: Dict[int, tuple] = {}
        self._dir_version = -1
        self.acked = 0
        self.failed = 0
        self.retransmissions = 0
        #: ACK-timeout events cancelled because the ACK arrived first (each
        #: one leaves a tombstone for the kernel's heap compaction to reap —
        #: latent timers settled by their ACK count here too, for parity).
        self.timers_cancelled = 0
        #: Timeouts that stayed latent: their (time, seq) was reserved but
        #: no heap entry was ever pushed because the ACK settled the copy.
        self.timers_elided = 0

    def enable_timer_elision(self) -> None:
        """Opt in to latent ACK-timeout timers (composition-root only).

        Elision assumes the receiving side ACKs every delivered DATA frame
        synchronously on arrival — true when every node hosts a
        :class:`~repro.pubsub.broker.BrokerRuntime` and the active strategy
        has ``uses_acks`` — and that handler attachments are stable for the
        rest of the run. Unit harnesses that drive ACKs by hand must stay
        on the default eager timers.

        A copy's timeout is elided only when its send reports a definite
        *delivered* outcome and the ACK's arrival event provably precedes
        the timeout deadline (exact float comparison against the round-trip
        schedule); the reserved kernel sequence number keeps the event
        schedule bit-identical either way. Lost ACKs materialise the timer
        via the network's ACK-loss observer hook.
        """
        if self._sim_heap is None:
            # Portable Clock: elision reserves raw kernel heap keys, which
            # only exist on the calendar kernel.
            return
        network = self.ctx.network
        register = getattr(network, "register_ack_loss_observer", None)
        if register is None or getattr(network, "ack_round_trip", None) is None:
            return
        register(self._on_ack_send_lost)
        self._elide_timers = True

    def _on_ack_send_lost(self, transfer_id: int) -> None:
        """Materialise the latent timeout of a copy whose ACK was lost."""
        entry = self._outstanding.get(transfer_id)
        if entry is None or entry.event is not None or entry.latent_seq < 0:
            return
        time = entry.latent_time
        seq = entry.latent_seq
        entry.latent_seq = -1
        entry.event = event = Event(
            time, seq, self._on_timeout, (entry,), self._on_event_cancelled
        )
        _heappush(self._sim_heap, (time, seq, event))
        self._sim._live += 1

    @property
    def in_flight(self) -> int:
        """Number of copies currently awaiting an ACK."""
        return len(self._outstanding)

    def send(
        self,
        src: int,
        dst: int,
        frame: PacketFrame,
        on_acked: Callable[[PacketFrame], None],
        on_failed: Callable[[PacketFrame], None],
    ) -> None:
        """Transmit *frame* from *src* to the adjacent *dst* with ARQ.

        Exactly one of the callbacks eventually fires: ``on_acked(frame)``
        when the neighbour confirms reception, ``on_failed(frame)`` after
        ``m`` transmissions went unacknowledged.
        """
        entry = _Outstanding(src, dst, frame, on_acked, on_failed)
        self._outstanding[frame.transfer_id] = entry
        self._transmit(entry)

    def handle_ack(self, node: int, sender: int, ack: AckFrame) -> None:
        """Process an ACK received at *node*; unknown/duplicate ACKs are ignored."""
        entry = self._outstanding.get(ack.transfer_id)
        if entry is None or entry.src != node or entry.dst != sender:
            return
        del self._outstanding[ack.transfer_id]
        event = entry.event
        if event is not None:
            # Veto family: a handler returning False keeps the timer alive
            # (the sanitizer's MUTATE_SKIP_TIMER_CANCEL leak, so the
            # end-of-run orphan check must catch it).
            probe = _probes.on_timer_cancelled
            if probe is None or probe(event.seq) is not False:
                event.cancel()
                self.timers_cancelled += 1
        elif entry.latent_seq >= 0:
            # Latent timeout settled by its ACK: nothing to cancel — the
            # timer was never pushed. Count it as a cancellation so the
            # ARQ counters read the same with elision on or off.
            entry.latent_seq = -1
            self.timers_cancelled += 1
        self.acked += 1
        probe = _probes.on_ack
        if probe is not None:
            probe(self._sim._now, node, sender, entry.frame)
        if self._rtt_sampling and entry.attempts == 1:
            # Karn's rule: only first-attempt ACKs give unambiguous RTTs.
            self.timeout_policy.on_sample(
                entry.src, entry.dst, self._sim._now - entry.sent_at
            )
        entry.on_acked(entry.frame)

    # ------------------------------------------------------------------
    def _transmit(self, entry: _Outstanding) -> None:
        entry.attempts += 1
        if entry.attempts > 1:
            self.retransmissions += 1
        sim = self._sim
        if self._rtt_sampling:
            entry.sent_at = sim._now
        src = entry.src
        dst = entry.dst
        outcome = self._send_data(src, dst, entry.frame)
        key = (src << 21) | dst
        if self._static_timeout:
            # Unified per-direction constants: timeout value and the exact
            # round-trip delay pair in one dict probe, refreshed when the
            # monitor version moves (same invalidation rule as the
            # policy's own cache — the timeout is a pure function of the
            # current alpha estimate).
            monitor = self._monitor
            if monitor.version != self._dir_version:
                self._dir_info.clear()
                self._dir_version = monitor.version
            info = self._dir_info.get(key)
            if info is None:
                timeout = self.ctx.params.ack_timeout(
                    monitor.estimate(src, dst).alpha
                )
                pair: object = False
                if self._elide_timers:
                    rt = self._network.ack_round_trip(src, dst)
                    if rt is not None:
                        pair = rt
                info = (timeout, pair)
                self._dir_info[key] = info
            delay = info[0]
            time = sim._now + delay
            pair = info[1]
        else:
            delay = self._timeout(src, dst)
            time = sim._now + delay
            pair = False
            if outcome and self._elide_timers:
                pair = self._rt_cache.get(key)
                if pair is None:
                    pair = self._network.ack_round_trip(src, dst)
                    if pair is None:
                        pair = False
                    self._rt_cache[key] = pair
        if self._sim_heap is None:
            # Portable Clock path (no calendar kernel): the timeout goes
            # through the clock's schedule() API and the returned handle
            # stands in for the kernel Event — handle_ack/_on_timeout only
            # touch .seq and .cancel(). Latent elision is a kernel-only
            # optimisation (it reserves raw heap keys), so the timer is
            # always eager here.
            entry.latent_seq = -1
            entry.event = event = sim.schedule(delay, self._on_timeout, entry)
            probe = _probes.on_timer_started
            if probe is not None:
                probe(event.seq, time, entry.frame)
            return
        seq = next(self._sim_seq)
        if (
            outcome
            and pair is not False
            # The copy will reach the receiver; its ACK either arrives
            # (settling the entry before the deadline) or is lost, which
            # the network reports synchronously via _on_ack_send_lost.
            # The exact float comparison below proves the unlossed ACK's
            # arrival event — scheduled at (now + d_fwd) + d_rev with a
            # later seq — pops strictly before the (time, seq) deadline,
            # so keeping the timer latent cannot change the schedule.
            and (sim._now + pair[0]) + pair[1] < time
            and _probes.on_timer_started is None
            and _probes.on_timer_cancelled is None
            and _probes.on_timer_fired is None
        ):
            entry.event = None
            entry.latent_time = time
            entry.latent_seq = seq
            self.timers_elided += 1
            return
        entry.latent_seq = -1
        entry.event = event = Event(
            time, seq, self._on_timeout, (entry,), self._on_event_cancelled
        )
        _heappush(self._sim_heap, (time, seq, event))
        sim._live += 1
        probe = _probes.on_timer_started
        if probe is not None:
            probe(seq, time, entry.frame)

    def _on_timeout(self, entry: _Outstanding) -> None:
        if entry.frame.transfer_id not in self._outstanding:
            return
        probe = _probes.on_timer_fired
        if probe is not None:
            # After the outstanding check on purpose: a fire that finds its
            # transfer already settled must NOT count as the settlement
            # (that is exactly how a leaked cancel shows up as an orphan).
            probe(entry.event.seq)
        probe = _probes.on_ack_timeout
        if probe is not None:
            probe(
                self._sim._now,
                entry.src,
                entry.dst,
                entry.frame,
                entry.attempts,
                entry.attempts < self._m,
            )
        if entry.attempts < self._m:
            self._transmit(entry)
            return
        del self._outstanding[entry.frame.transfer_id]
        self.failed += 1
        entry.on_failed(entry.frame)

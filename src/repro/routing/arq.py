"""Hop-by-hop ARQ: send one frame copy to a neighbour, retrying up to ``m``.

DCRD and the tree/multipath baselines all use the same per-link mechanism
(§III, §IV-D7): transmit, wait ``ack_timeout`` for the hop-by-hop ACK,
retransmit on silence, and after ``m`` unacknowledged transmissions declare
the link attempt failed. What differs between schemes is only the *reaction*
to success/failure, expressed here as callbacks.

:class:`ArqSender` is shared by all brokers of a run (transfer ids are
globally unique, so one table suffices) and tracks every outstanding copy.

The *timeout policy* is pluggable: the paper's static
``factor * alpha`` timer is the default
(:class:`MonitorTimeoutPolicy`); the congestion extension substitutes an
RTT-tracking policy (see :mod:`repro.extensions.adaptive`). Policies
receive Karn-filtered RTT samples (first-attempt ACKs only, so a sample is
never ambiguous between a transmission and its retransmission).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol

from repro.overlay.links import FrameKind
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.routing.base import RuntimeContext
from repro.sim.process import Timer


class TimeoutPolicy(Protocol):
    """Decides how long a sender waits for each hop-by-hop ACK."""

    def timeout(self, src: int, dst: int) -> float:
        """Current ACK timeout for the (src, dst) link direction."""
        ...

    def on_sample(self, src: int, dst: int, rtt: float) -> None:
        """Feed one unambiguous (first-attempt) RTT observation."""
        ...


class MonitorTimeoutPolicy:
    """The paper's static timer: ``ack_timeout_factor * alpha`` (+slack)."""

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx

    def timeout(self, src: int, dst: int) -> float:
        """Static timeout from the monitor's propagation-delay estimate."""
        alpha = self.ctx.monitor.estimate(src, dst).alpha
        return self.ctx.params.ack_timeout(alpha)

    def on_sample(self, src: int, dst: int, rtt: float) -> None:
        """Static policy: samples are ignored."""


@dataclass
class _Outstanding:
    """One unacknowledged frame copy and its retry state."""

    src: int
    dst: int
    frame: PacketFrame
    attempts: int
    timer: Timer
    on_acked: Callable[[PacketFrame], None]
    on_failed: Callable[[PacketFrame], None]
    sent_at: float = 0.0


class ArqSender:
    """Reliable-ish single-hop delivery with an ``m``-transmission budget."""

    def __init__(
        self, ctx: RuntimeContext, timeout_policy: Optional[TimeoutPolicy] = None
    ) -> None:
        self.ctx = ctx
        self.timeout_policy: TimeoutPolicy = (
            timeout_policy if timeout_policy is not None else MonitorTimeoutPolicy(ctx)
        )
        self._outstanding: Dict[int, _Outstanding] = {}
        self.acked = 0
        self.failed = 0
        self.retransmissions = 0

    @property
    def in_flight(self) -> int:
        """Number of copies currently awaiting an ACK."""
        return len(self._outstanding)

    def send(
        self,
        src: int,
        dst: int,
        frame: PacketFrame,
        on_acked: Callable[[PacketFrame], None],
        on_failed: Callable[[PacketFrame], None],
    ) -> None:
        """Transmit *frame* from *src* to the adjacent *dst* with ARQ.

        Exactly one of the callbacks eventually fires: ``on_acked(frame)``
        when the neighbour confirms reception, ``on_failed(frame)`` after
        ``m`` transmissions went unacknowledged.
        """
        entry = _Outstanding(
            src=src,
            dst=dst,
            frame=frame,
            attempts=0,
            timer=Timer(self.ctx.sim, self._on_timeout),
            on_acked=on_acked,
            on_failed=on_failed,
        )
        self._outstanding[frame.transfer_id] = entry
        self._transmit(entry)

    def handle_ack(self, node: int, sender: int, ack: AckFrame) -> None:
        """Process an ACK received at *node*; unknown/duplicate ACKs are ignored."""
        entry = self._outstanding.get(ack.transfer_id)
        if entry is None or entry.src != node or entry.dst != sender:
            return
        del self._outstanding[ack.transfer_id]
        entry.timer.cancel()
        self.acked += 1
        if entry.attempts == 1:
            # Karn's rule: only first-attempt ACKs give unambiguous RTTs.
            self.timeout_policy.on_sample(
                entry.src, entry.dst, self.ctx.sim.now - entry.sent_at
            )
        entry.on_acked(entry.frame)

    # ------------------------------------------------------------------
    def _transmit(self, entry: _Outstanding) -> None:
        entry.attempts += 1
        if entry.attempts > 1:
            self.retransmissions += 1
        entry.sent_at = self.ctx.sim.now
        self.ctx.network.transmit(entry.src, entry.dst, entry.frame, FrameKind.DATA)
        entry.timer.start(self.timeout_policy.timeout(entry.src, entry.dst), entry)

    def _on_timeout(self, entry: _Outstanding) -> None:
        if entry.frame.transfer_id not in self._outstanding:
            return
        if entry.attempts < self.ctx.params.m:
            self._transmit(entry)
            return
        del self._outstanding[entry.frame.transfer_id]
        self.failed += 1
        entry.on_failed(entry.frame)

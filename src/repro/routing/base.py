"""The strategy interface every routing scheme implements.

A :class:`RoutingStrategy` owns the routing logic of *all* brokers of one
simulation run (the run is single-process; per-broker state lives in
strategy-internal tables keyed by node id). The
:class:`~repro.pubsub.broker.BrokerRuntime` handles the mechanics every
scheme shares — ACKing received DATA frames, duplicate suppression, local
subscriber delivery — and delegates the forwarding decision here.

:class:`RuntimeContext` bundles the substrate a strategy works against, and
:class:`ProtocolParams` the paper's protocol knobs (``m``, the per-link
transmission budget of §III-A, and the ACK-timeout factor).

``RuntimeContext.sim`` and ``RuntimeContext.network`` are duck-typed
against the :mod:`repro.substrate` protocols rather than concrete
classes: ``sim`` is any Clock (``_now`` readable as an attribute,
``schedule``/``schedule_fire``), ``network`` any Transport
(``attach``/``detach``/``transmit`` and optionally the
``send_data``/``send_ack`` fast paths). The discrete-event kernel and the
live asyncio stack both satisfy them, so strategies never branch on the
substrate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.metrics.collector import MetricsCollector
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.overlay.topology import Topology
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.pubsub.topics import TopicSpec, Workload
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class ProtocolParams:
    """Protocol-level knobs shared by the ACK-based schemes.

    Attributes
    ----------
    m:
        Number of transmissions a sender tries on one link before moving on
        (paper's ``m``; default 1, the paper's main setting — see Fig. 8).
    ack_timeout_factor:
        The ACK timer is ``ack_timeout_factor * alpha_Xk``. The paper waits
        "``alpha_Xk`` of time"; a one-way expectation cannot cover the
        request+ACK round trip, so the default factor is 2.0 (DESIGN.md §2).
    ack_timeout_slack:
        Small additive slack (seconds) on top of the multiplicative timer,
        protecting against zero-delay degenerate links in tests.
    """

    m: int = 1
    ack_timeout_factor: float = 2.0
    ack_timeout_slack: float = 0.001

    def __post_init__(self) -> None:
        require(self.m >= 1, f"m must be >= 1, got {self.m}")
        require_positive(self.ack_timeout_factor, "ack_timeout_factor")
        require(self.ack_timeout_slack >= 0, "ack_timeout_slack must be >= 0")

    def ack_timeout(self, link_alpha: float) -> float:
        """ACK timer duration for a link with expected one-way delay *alpha*."""
        return self.ack_timeout_factor * link_alpha + self.ack_timeout_slack


@dataclass
class RuntimeContext:
    """Everything a routing strategy may touch during a run."""

    sim: Simulator
    topology: Topology
    network: OverlayNetwork
    monitor: LinkMonitor
    workload: Workload
    metrics: MetricsCollector
    streams: RandomStreams
    params: ProtocolParams = field(default_factory=ProtocolParams)
    #: The run's :class:`~repro.ordering.plan.OrderingPlan`, or ``None``
    #: (the default — ordering off). Broker runtimes read it to decide
    #: whether local deliveries flow through a hold-back pipeline.
    ordering: Any = None


class RoutingStrategy(abc.ABC):
    """Base class of DCRD and all baselines.

    Lifecycle: construct with a :class:`RuntimeContext`, then the runner
    calls :meth:`setup` once before publishing starts. During the run the
    broker runtimes call :meth:`handle_data` / :meth:`handle_ack`, and
    publisher processes call :meth:`publish`.
    """

    #: Short name used in reports ("DCRD", "R-Tree", ...).
    name: str = "abstract"

    #: Whether broker runtimes should send hop-by-hop ACKs for this scheme.
    uses_acks: bool = True

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx
        #: DATA frame copies this strategy handed to the link layer for
        #: forwarding (retransmissions excluded); surfaced by the perf
        #: snapshot as ``data_plane.frames_forwarded``.
        self.frames_forwarded = 0

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Build routing state before traffic starts (trees, sending lists)."""

    def on_monitor_refresh(self) -> None:
        """Called after each periodic link-monitoring cycle (default: no-op)."""

    def on_subscription_added(self, topic: int, subscription) -> None:
        """A subscriber joined *topic* at runtime.

        The workload has already been updated; the default reaction is a
        full :meth:`setup` rebuild, which is correct (if blunt) for every
        strategy. DCRD overrides this with an incremental update.
        """
        self.setup()

    def on_subscription_removed(self, topic: int, node: int) -> None:
        """A subscriber left *topic* at runtime (default: full rebuild)."""
        self.setup()

    # ------------------------------------------------------------------
    # Data-plane entry points
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def publish(self, spec: TopicSpec, msg_id: int) -> None:
        """Inject a fresh message of *spec* at its publisher's broker."""

    @abc.abstractmethod
    def handle_data(self, node: int, sender: int, frame: PacketFrame) -> None:
        """React to a DATA frame that arrived at *node* from *sender*.

        *frame.destinations* has already been stripped of subscribers local
        to *node* (the broker runtime delivered those); it is non-empty.
        """

    def handle_ack(self, node: int, sender: int, ack: AckFrame) -> None:
        """React to an ACK that arrived at *node* from *sender* (no-op default)."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def give_up(self, frame: PacketFrame) -> None:
        """Record that every destination of *frame* is being abandoned."""
        for subscriber in frame.destinations:
            self.ctx.metrics.record_give_up(frame.msg_id, subscriber)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"

"""Multipath baseline: fixed duplicate paths per subscriber (§IV-B).

For every (publisher, subscriber) pair the publisher sends each packet as
two copies: one down the shortest-delay path, one down the path — among the
five shortest-delay simple paths — sharing the fewest links with the first.
Both copies are source-routed and forwarded with hop-by-hop ARQ; like the
trees, Multipath never reroutes, so a failure on both chosen paths loses
the packet. The redundancy roughly doubles traffic (Figure 2c).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.pubsub.messages import AckFrame, PacketFrame
from repro.pubsub.topics import TopicSpec
from repro.routing.arq import ArqSender
from repro.routing.base import RoutingStrategy, RuntimeContext
from repro.routing.paths import (
    k_shortest_delay_paths,
    least_overlapping_path,
)
from repro.util.errors import RoutingError


class MultipathStrategy(RoutingStrategy):
    """The paper's Multipath comparison point."""

    name = "Multipath"
    uses_acks = True

    #: Candidate pool size for the secondary path (paper: top 5).
    candidate_pool = 5

    def __init__(self, ctx: RuntimeContext) -> None:
        super().__init__(ctx)
        self.arq = ArqSender(ctx)
        # (topic, subscriber) -> (primary path, secondary path)
        self._paths: Dict[Tuple[int, int], Tuple[List[int], List[int]]] = {}
        self.abandoned = 0

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Fix the two paths of every (topic, subscriber) pair."""
        estimates = self.ctx.monitor.estimates()
        for spec in self.ctx.workload.topics:
            for sub in spec.subscriptions:
                if sub.node == spec.publisher:
                    continue
                candidates = k_shortest_delay_paths(
                    self.ctx.topology,
                    spec.publisher,
                    sub.node,
                    self.candidate_pool,
                    estimates,
                )
                primary = candidates[0]
                secondary = least_overlapping_path(
                    self.ctx.topology, primary, candidates
                )
                self._paths[(spec.topic, sub.node)] = (primary, secondary)

    def paths_for(self, topic: int, subscriber: int) -> Tuple[List[int], List[int]]:
        """The fixed (primary, secondary) paths of one pair."""
        return self._paths[(topic, subscriber)]

    # ------------------------------------------------------------------
    def publish(self, spec: TopicSpec, msg_id: int) -> None:
        """Emit two source-routed copies per subscriber."""
        now = self.ctx.sim.now
        for sub in spec.subscriptions:
            if sub.node == spec.publisher:
                self.ctx.metrics.record_delivery(msg_id, sub.node, now)
                continue
            primary, secondary = self._paths[(spec.topic, sub.node)]
            routes = [primary]
            if secondary != primary:
                routes.append(secondary)
            for route in routes:
                frame = PacketFrame.fresh(
                    msg_id=msg_id,
                    topic=spec.topic,
                    origin=spec.publisher,
                    publish_time=now,
                    destinations=frozenset({sub.node}),
                    source_route=tuple(route[1:]),
                )
                self._forward(spec.publisher, frame)

    def handle_data(self, node: int, sender: int, frame: PacketFrame) -> None:
        """Advance the copy along its source route."""
        self._forward(node, frame)

    def handle_ack(self, node: int, sender: int, ack: AckFrame) -> None:
        """Route hop-by-hop ACKs into the ARQ layer."""
        self.arq.handle_ack(node, sender, ack)

    # ------------------------------------------------------------------
    def _forward(self, node: int, frame: PacketFrame) -> None:
        if not frame.source_route:
            raise RoutingError(
                f"multipath copy of msg {frame.msg_id} stranded at {node}"
            )
        hop = frame.source_route[0]
        copy = frame.forwarded(
            node, frame.destinations, source_route=frame.source_route[1:]
        )
        self.frames_forwarded += 1
        self.arq.send(node, hop, copy, self._on_acked, self._on_failed)

    def _on_acked(self, copy: PacketFrame) -> None:
        """Responsibility moved downstream; nothing to do."""

    def _on_failed(self, copy: PacketFrame) -> None:
        """Fixed paths cannot reroute: this copy dies here."""
        self.abandoned += 1
        # The twin copy may still make it; give-up is advisory and only
        # marks destinations that never get delivered.
        for subscriber in copy.destinations:
            self.ctx.metrics.record_give_up(copy.msg_id, subscriber)

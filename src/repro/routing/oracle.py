"""ORACLE baseline: the performance upper bound (§IV-B).

The oracle knows the entire failure schedule — present *and future* — and
routes every packet along the shortest-delay path that avoids every link
that would be failed at the moment the packet crosses it. It is implemented
as a time-dependent Dijkstra over the deterministic
:class:`~repro.overlay.failures.FailureSchedule`: relaxing edge ``(u, v)``
from an arrival time ``t`` at ``u`` is allowed only if the link is up at
``t``. Packets do not wait at brokers; if no currently feasible path exists
the packet is dropped (this matches Figure 4, where even ORACLE falls below
85% on degree-3 overlays).

Being an upper bound, the oracle sends without ACKs and its transmissions
skip the recoverable random-loss draw (``reliable=True``); transient
failures and node crashes still apply — but by construction it never meets
one. Copies for subscribers that share a path prefix are merged, like the
tree baselines, so the traffic metric stays comparable.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.overlay.failures import FailureSchedule, NodeFailureSchedule
from repro.overlay.links import FrameKind
from repro.overlay.topology import Topology
from repro.pubsub.messages import PacketFrame
from repro.pubsub.topics import TopicSpec
from repro.routing.base import RoutingStrategy, RuntimeContext
from repro.util.errors import RoutingError

#: How long per-message path state is retained before garbage collection.
_PATH_STATE_TTL = 120.0


def time_dependent_paths(
    topology: Topology,
    failures: Optional[FailureSchedule],
    source: int,
    start_time: float,
    node_failures: Optional[NodeFailureSchedule] = None,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Single-source earliest-arrival search avoiding failed links.

    Returns ``(arrival_time, parent)`` maps. A link can be taken only if it
    is not failed at the departure instant (= the arrival time at its tail;
    brokers forward immediately and never wait out a failure). When a
    node-crash schedule is supplied (extension study), the sender must be
    alive at departure and the receiver alive at arrival — mirroring
    exactly when :class:`~repro.overlay.links.OverlayNetwork` drops frames.
    """
    if node_failures is not None and node_failures.is_failed(source, start_time):
        return {}, {}
    arrival: Dict[int, float] = {source: start_time}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(start_time, source)]
    settled: Set[int] = set()
    while heap:
        time, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node_failures is not None and node_failures.is_failed(node, time):
            # The broker is down when the frame would pass through it.
            continue
        for neighbor in topology.neighbors(node):
            if neighbor in settled:
                continue
            if failures is not None and failures.is_failed(node, neighbor, time):
                continue
            candidate = time + topology.delay(node, neighbor)
            if node_failures is not None and node_failures.is_failed(
                neighbor, candidate
            ):
                continue
            if candidate < arrival.get(neighbor, float("inf")):
                arrival[neighbor] = candidate
                parent[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return arrival, parent


def extract_path(parent: Dict[int, int], source: int, target: int) -> Optional[List[int]]:
    """Rebuild the path from a parent map; ``None`` if unreachable."""
    if target == source:
        return [source]
    if target not in parent:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


class OracleStrategy(RoutingStrategy):
    """Failure-clairvoyant shortest-delay routing."""

    name = "ORACLE"
    uses_acks = False

    def __init__(self, ctx: RuntimeContext) -> None:
        super().__init__(ctx)
        # msg_id -> {subscriber: full path}
        self._routes: Dict[int, Dict[int, List[int]]] = {}
        self.infeasible = 0

    # ------------------------------------------------------------------
    def publish(self, spec: TopicSpec, msg_id: int) -> None:
        """Choose clairvoyant paths for all subscribers and start sending."""
        now = self.ctx.sim.now
        _, parent = time_dependent_paths(
            self.ctx.topology,
            self.ctx.network.failures,
            spec.publisher,
            now,
            node_failures=self.ctx.network.node_failures,
        )
        routes: Dict[int, List[int]] = {}
        pending: Set[int] = set()
        for sub in spec.subscriptions:
            if sub.node == spec.publisher:
                self.ctx.metrics.record_delivery(msg_id, sub.node, now)
                continue
            path = extract_path(parent, spec.publisher, sub.node)
            if path is None:
                self.infeasible += 1
                self.ctx.metrics.record_give_up(msg_id, sub.node)
                continue
            routes[sub.node] = path
            pending.add(sub.node)
        if not pending:
            return
        self._routes[msg_id] = routes
        self.ctx.sim.schedule(_PATH_STATE_TTL, self._routes.pop, msg_id, None)
        frame = PacketFrame.fresh(
            msg_id=msg_id,
            topic=spec.topic,
            origin=spec.publisher,
            publish_time=now,
            destinations=frozenset(pending),
        )
        self._forward(spec.publisher, frame)

    def handle_data(self, node: int, sender: int, frame: PacketFrame) -> None:
        """Continue along each destination's precomputed path."""
        self._forward(node, frame)

    # ------------------------------------------------------------------
    def _forward(self, node: int, frame: PacketFrame) -> None:
        routes = self._routes.get(frame.msg_id)
        if routes is None:
            raise RoutingError(f"oracle lost path state of msg {frame.msg_id}")
        groups: Dict[int, Set[int]] = {}
        for subscriber in frame.destinations:
            path = routes[subscriber]
            position = path.index(node)
            groups.setdefault(path[position + 1], set()).add(subscriber)
        self.frames_forwarded += len(groups)
        for hop, dests in groups.items():
            copy = frame.forwarded(node, frozenset(dests))
            self.ctx.network.transmit(
                node, hop, copy, FrameKind.DATA, reliable=True
            )

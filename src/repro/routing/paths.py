"""Path utilities shared by the baseline strategies.

The Multipath baseline (§IV-B) needs k-shortest-delay simple paths and a
minimum-overlap selection rule; the tree baselines need per-pair shortest
paths under two different metrics. All helpers work on a
:class:`~repro.overlay.topology.Topology` plus (optionally) the monitor's
per-link delay estimates.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.overlay.monitor import LinkEstimate
from repro.overlay.topology import Edge, Topology, canonical_edge
from repro.util.errors import RoutingError
from repro.util.validation import require

Path = List[int]


def delay_graph(
    topology: Topology, estimates: Optional[Dict[Edge, LinkEstimate]] = None
) -> nx.Graph:
    """A weighted graph whose edge weights are (estimated) link delays."""
    graph = nx.Graph()
    graph.add_nodes_from(topology.nodes)
    for edge in topology.edges():
        if estimates is not None:
            weight = estimates[edge].alpha
        else:
            weight = topology.delay(*edge)
        graph.add_edge(*edge, weight=weight)
    return graph


def path_delay(topology: Topology, path: Sequence[int]) -> float:
    """Total propagation delay along *path* (seconds)."""
    return sum(
        topology.delay(path[i], path[i + 1]) for i in range(len(path) - 1)
    )


def path_links(path: Sequence[int]) -> Set[Edge]:
    """The canonical link set of *path*."""
    return {
        canonical_edge(path[i], path[i + 1]) for i in range(len(path) - 1)
    }


def shared_links(path_a: Sequence[int], path_b: Sequence[int]) -> int:
    """Number of overlay links the two paths have in common."""
    return len(path_links(path_a) & path_links(path_b))


def k_shortest_delay_paths(
    topology: Topology,
    source: int,
    target: int,
    k: int,
    estimates: Optional[Dict[Edge, LinkEstimate]] = None,
) -> List[Path]:
    """Up to *k* shortest-delay simple paths, ascending by delay."""
    require(k >= 1, f"k must be >= 1, got {k}")
    if source == target:
        return [[source]]
    graph = delay_graph(topology, estimates)
    generator = nx.shortest_simple_paths(graph, source, target, weight="weight")
    return list(itertools.islice(generator, k))


def least_overlapping_path(
    topology: Topology,
    primary: Sequence[int],
    candidates: Sequence[Path],
) -> Path:
    """The candidate sharing fewest links with *primary*.

    This is the paper's secondary-path rule: "another path selected from the
    top 5 shortest delay paths that has the fewest overlapping links with
    the shortest delay path". The primary itself is skipped if present; ties
    break toward the shorter-delay candidate (their input order). With no
    alternative candidate, the primary is reused (a degenerate topology
    where duplication cannot diversify).
    """
    if not candidates:
        raise RoutingError("least_overlapping_path needs at least one candidate")
    primary_list = list(primary)
    best: Optional[Path] = None
    best_overlap = -1
    for candidate in candidates:
        if list(candidate) == primary_list:
            continue
        overlap = shared_links(primary, candidate)
        if best is None or overlap < best_overlap:
            best = list(candidate)
            best_overlap = overlap
    return best if best is not None else primary_list


def build_path_tree(
    paths: Dict[int, Path],
) -> Dict[int, Dict[int, int]]:
    """Compile per-subscriber paths into next-hop tables.

    Input: ``{subscriber: [publisher, ..., subscriber]}``. Output:
    ``{node: {subscriber: next_hop}}`` — the forwarding table a tree
    strategy consults at each broker.
    """
    table: Dict[int, Dict[int, int]] = {}
    for subscriber, path in paths.items():
        for position in range(len(path) - 1):
            node, next_hop = path[position], path[position + 1]
            table.setdefault(node, {})[subscriber] = next_hop
    return table

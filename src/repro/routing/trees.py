"""Tree baselines: R-Tree (shortest hops) and D-Tree (shortest delay).

Both build one *fixed* routing tree per topic — the union of per-subscriber
shortest paths from the publisher — and forward along it with hop-by-hop
ARQ (``m`` transmissions per link). They never reroute: when a link attempt
fails, the destinations behind it are abandoned (§IV-B: "both tree-based
approaches do not reroute the packets when a failure occurs").

* **R-Tree** minimises hop count per publisher→subscriber pair, which makes
  it the more failure-robust tree (fewer links that can fail).
* **D-Tree** minimises end-to-end delay per pair.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from repro.pubsub.messages import AckFrame, PacketFrame
from repro.pubsub.topics import TopicSpec
from repro.routing.arq import ArqSender
from repro.routing.base import RoutingStrategy, RuntimeContext
from repro.routing.paths import build_path_tree, delay_graph
from repro.util.errors import RoutingError


class TreeStrategy(RoutingStrategy):
    """Common machinery of the fixed-tree baselines."""

    name = "Tree"
    uses_acks = True

    #: Subclasses pick the per-pair path metric: "hops" or "delay".
    metric = "delay"

    def __init__(self, ctx: RuntimeContext) -> None:
        super().__init__(ctx)
        self.arq = ArqSender(ctx)
        # topic -> node -> subscriber -> next hop
        self._tables: Dict[int, Dict[int, Dict[int, int]]] = {}
        self.abandoned = 0

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Build the per-topic routing trees."""
        for spec in self.ctx.workload.topics:
            paths = {
                sub.node: self._path(spec.publisher, sub.node)
                for sub in spec.subscriptions
                if sub.node != spec.publisher
            }
            self._tables[spec.topic] = build_path_tree(paths)

    def _path(self, source: int, target: int) -> List[int]:
        if self.metric == "delay":
            graph = delay_graph(self.ctx.topology, self.ctx.monitor.estimates())
            return nx.dijkstra_path(graph, source, target, weight="weight")
        if self.metric == "hops":
            return self.ctx.topology.shortest_hop_path(source, target)
        raise RoutingError(f"unknown tree metric {self.metric!r}")

    def next_hop(self, topic: int, node: int, subscriber: int) -> int:
        """The fixed tree's next hop at *node* toward *subscriber*."""
        return self._tables[topic][node][subscriber]

    def tree_edges(self, topic: int) -> Set[Tuple[int, int]]:
        """All directed (node, next_hop) edges of one topic's tree."""
        edges = set()
        for node, routes in self._tables[topic].items():
            for next_hop in routes.values():
                edges.add((node, next_hop))
        return edges

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def publish(self, spec: TopicSpec, msg_id: int) -> None:
        """Send a fresh packet down the topic's tree from the publisher."""
        destinations = frozenset(spec.subscriber_nodes)
        if spec.publisher in destinations:
            self.ctx.metrics.record_delivery(msg_id, spec.publisher, self.ctx.sim.now)
            destinations = destinations - {spec.publisher}
        if not destinations:
            return
        frame = PacketFrame.fresh(
            msg_id=msg_id,
            topic=spec.topic,
            origin=spec.publisher,
            publish_time=self.ctx.sim.now,
            destinations=destinations,
            priority=self._copy_priority(spec.topic, self.ctx.sim.now, destinations),
        )
        self._forward(spec.publisher, frame)

    def _copy_priority(
        self, topic: int, publish_time: float, destinations: FrozenSet[int]
    ) -> float:
        """Urgency stamped on frame copies (inf = no deadline awareness).

        Priority-queueing variants override this; it only matters when the
        network runs an EDF link discipline.
        """
        return float("inf")

    def handle_data(self, node: int, sender: int, frame: PacketFrame) -> None:
        """Continue down the tree."""
        self._forward(node, frame)

    def handle_ack(self, node: int, sender: int, ack: AckFrame) -> None:
        """Route hop-by-hop ACKs into the ARQ layer."""
        self.arq.handle_ack(node, sender, ack)

    def _forward(self, node: int, frame: PacketFrame) -> None:
        groups: Dict[int, Set[int]] = {}
        for subscriber in frame.destinations:
            hop = self._tables[frame.topic].get(node, {}).get(subscriber)
            if hop is None:
                # The tree has no route from here; fixed topologies cannot
                # recover (should not happen with consistent trees).
                self._abandon(frame.msg_id, frozenset({subscriber}))
                continue
            groups.setdefault(hop, set()).add(subscriber)
        self.frames_forwarded += len(groups)
        for hop, dests in groups.items():
            subset = frozenset(dests)
            copy = frame.forwarded(
                node,
                subset,
                priority=self._copy_priority(frame.topic, frame.publish_time, subset),
            )
            self.arq.send(node, hop, copy, self._on_acked, self._on_failed)

    def _on_acked(self, copy: PacketFrame) -> None:
        """Responsibility moved downstream; nothing to do."""

    def _on_failed(self, copy: PacketFrame) -> None:
        """Fixed trees do not reroute: abandon the subtree's destinations."""
        self._abandon(copy.msg_id, copy.destinations)

    def _abandon(self, msg_id: int, destinations: FrozenSet[int]) -> None:
        for subscriber in destinations:
            self.abandoned += 1
            self.ctx.metrics.record_give_up(msg_id, subscriber)


class RTreeStrategy(TreeStrategy):
    """Most Reliable Tree: shortest-hop-count paths (paper baseline 1)."""

    name = "R-Tree"
    metric = "hops"


class DTreeStrategy(TreeStrategy):
    """Shortest-Delay-Path Tree (paper baseline 2)."""

    name = "D-Tree"
    metric = "delay"


class PriorityDTreeStrategy(DTreeStrategy):
    """D-Tree with earliest-deadline frame priorities.

    The paper's introduction names "priority-based queuing and shortest
    path tree" as the standard timely-delivery approach that ignores
    reliability. This is that approach: the shortest-delay tree, with every
    frame stamped with its earliest destination deadline so an EDF link
    discipline (``queue_discipline="edf"``) serves urgent traffic first.
    On FIFO links it behaves exactly like D-Tree.
    """

    name = "P-DTree"

    def _copy_priority(
        self, topic: int, publish_time: float, destinations: FrozenSet[int]
    ) -> float:
        spec = self.ctx.workload.topic(topic)
        deadlines = [
            sub.deadline for sub in spec.subscriptions if sub.node in destinations
        ]
        if not deadlines:
            return float("inf")
        return publish_time + min(deadlines)

"""SimSanitizer: opt-in runtime invariant checking for the data plane.

Two consecutive performance PRs rewrote the kernel heap, the frame copy
helpers, and the ARQ hot paths; the correctness claims they must preserve
(Theorem 1 sending-list order, loop-free path-carried routing, at-most-once
delivery after dedup, exactly-once ACK-timer settlement, end-of-run frame
conservation) were only visible indirectly through aggregate metrics. This
module watches them *live*, sanitizer-style:

* The hook sites in :mod:`repro.sim.engine`, :mod:`repro.overlay.links`,
  :mod:`repro.pubsub.broker`, :mod:`repro.routing.arq` and
  :mod:`repro.core.forwarding` all go through the :mod:`repro.probes`
  bus — one compiled slot per event family, ``None`` when no observer
  subscribes it — so disabled runs (the default) stay bit-identical to
  the fast path, and the fingerprint suite keeps passing unchanged.
  :func:`install` registers the sanitizer as a bus observer (and keeps
  the historical :data:`ACTIVE` slot in sync for callers that query it).
* When a :class:`Sanitizer` is installed (``ExperimentConfig.sanitize`` /
  CLI ``--sanitize``), every hook feeds a per-frame lifecycle ledger and a
  per-timer settlement table, and violations raise a structured
  :class:`InvariantViolation` *at the offending event*, carrying the frame
  trace that produced it.
* The sanitizer only **observes**: it consumes no randomness and schedules
  no events, so a sanitized run pops the exact event sequence of the
  unsanitized run (``tests/integration/test_fuzz_invariants.py`` pins
  this).

Checked invariants (fail-fast unless noted):

====================  ====================================================
kind                  meaning
====================  ====================================================
EVENT_ORDER           the kernel popped an event dated before ``now``
PATH_CYCLE            a frame re-entered a visited broker and the move was
                      not a legal DCRD upstream bounce
PATH_DESYNC           ``frame.path_set`` drifted from ``routing_path``
DUPLICATE_DELIVERY    one transfer id passed a broker's dedup twice
TIMER_UNKNOWN         an ARQ timer settled that was never started
TIMER_DOUBLE_SETTLE   an ARQ timer cancelled/fired more than once
TIMER_ORPHAN          a due ARQ timer never settled (end-of-run check)
SENDING_LIST_ORDER    a solved sending list violates Theorem 1 d/r order
CONSERVATION          published != delivered + dropped + expired +
                      stranded (end-of-run check, itemised)
ORDER_FIFO_GAP        a ``fifo`` pipeline ready-released out of
                      per-publisher sequence at one subscriber
ORDER_CAUSAL_PRECEDENCE  a ``causal`` ready release preceded a message it
                      causally depends on (own-stream gap or an
                      undelivered known-stream dependency)
ORDER_TOTAL_INVERSION a ``total`` ready release went backwards in the
                      agreed ``(ts, origin, seq)`` key order at one node
ORDER_TOTAL_PREFIX    two subscribers of one topic ready-released their
                      *common* messages in different orders or under
                      different agreement keys (end-of-run check; holes
                      from stalls/give-ups are legitimate)
ORDER_HOLD_LEAK       a hold-back pipeline buffered a frame and never
                      released it — a silently swallowed delivery
                      (end-of-run check, after the runners' flush)
====================  ====================================================

The ordering checks consume the ``order_release`` probe family emitted by
the delivery pipelines (:mod:`repro.ordering.pipeline`). Only
``reason == "ready"`` releases are held to the guarantee; ``stall`` and
``flush`` releases re-baseline the per-node expectation instead — the
watchdog explicitly took those frames out of the guaranteed flow.

The end-of-run checks run in :meth:`Sanitizer.finish`; totals surface as
``sanity.*`` perf counters through ``MetricsSummary.perf``.

The module deliberately imports only leaf modules (``util.errors``,
``core.sending_list``) so every instrumented layer — including the kernel
itself — can import it without cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import probes as _probes
from repro import trace as _trace
from repro.core.sending_list import theorem1_key
from repro.util.errors import ReproError

#: The installed sanitizer, or ``None`` (the default). Kept for
#: compatibility and cross-observer queries (``InvariantViolation`` reads
#: ``trace.ACTIVE`` the same way); the hook sites themselves read the
#: compiled :mod:`repro.probes` slots instead.
ACTIVE: Optional["Sanitizer"] = None

# ---------------------------------------------------------------------------
# Test-only mutation flags ("does the sanitizer have teeth?"). They are
# consulted exclusively inside the sanitizer's registered handlers, so they
# cannot affect unsanitized runs no matter what a test leaves behind.
# ---------------------------------------------------------------------------
#: Reverse one freshly solved sending list before it is published, so the
#: Theorem-1 order check must fire.
MUTATE_MISSORT_SENDING_LIST = False
#: Skip the ARQ timer cancellation on ACK, leaking timers that the
#: end-of-run orphan check must flag.
MUTATE_SKIP_TIMER_CANCEL = False
#: Swap consecutive ordering-pipeline ``ready`` releases at the first
#: node that produces two, so the per-guarantee order checks must fire.
#: Consulted through :func:`missort_order_release_active`, which gates on
#: an installed sanitizer — unsanitized runs are bit-inert.
MUTATE_MISSORT_ORDER_RELEASE = False
#: Silently swallow one ordering-pipeline ``ready`` release — claimed
#: through :func:`consume_order_drop` (one-shot, sanitizer-gated). The
#: second release of whichever stream *repeats* first at one node is
#: dropped — a genuinely mid-stream hole — so the mutation can never
#: hide behind the order checks' first-release baseline adoption, and
#: only one node diverges (a symmetric drop would keep total-order
#: prefixes identical).
MUTATE_DROP_ORDER_RELEASE = False


def missort_order_release_active() -> bool:
    """Whether the release-missort mutation applies (sanitized runs only)."""
    return ACTIVE is not None and MUTATE_MISSORT_ORDER_RELEASE


def consume_order_drop() -> bool:
    """Claim the one-shot release-drop mutation (sanitized runs only)."""
    global MUTATE_DROP_ORDER_RELEASE
    if ACTIVE is None or not MUTATE_DROP_ORDER_RELEASE:
        return False
    MUTATE_DROP_ORDER_RELEASE = False
    return True

# Violation kinds.
EVENT_ORDER = "event_order"
PATH_CYCLE = "path_cycle"
PATH_DESYNC = "path_desync"
DUPLICATE_DELIVERY = "duplicate_delivery"
TIMER_UNKNOWN = "timer_unknown"
TIMER_DOUBLE_SETTLE = "timer_double_settle"
TIMER_ORPHAN = "timer_orphan"
SENDING_LIST_ORDER = "sending_list_order"
CONSERVATION = "conservation"
ORDER_FIFO_GAP = "order_fifo_gap"
ORDER_CAUSAL_PRECEDENCE = "order_causal_precedence"
ORDER_TOTAL_INVERSION = "order_total_inversion"
ORDER_TOTAL_PREFIX = "order_total_prefix"
ORDER_HOLD_LEAK = "order_hold_leak"

# Timer settlement states.
_PENDING = 0
_CANCELLED = 1
_FIRED = 2
_STATE_NAMES = {_PENDING: "pending", _CANCELLED: "cancelled", _FIRED: "fired"}


class InvariantViolation(ReproError):
    """A runtime invariant failed; carries the offending frame trace.

    Attributes
    ----------
    kind:
        One of the module-level kind constants (``EVENT_ORDER``, ...).
    details:
        Structured facts about the violation (times, nodes, counts, ...).
    frames:
        The frame(s) involved, when the invariant concerns frames.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        frames: Tuple[Any, ...] = (),
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.details = details or {}
        self.frames = frames
        # When a FrameTracer is installed alongside the sanitizer, snapshot
        # the offending frames' lifecycle excerpt at raise time (the tracer
        # ring buffer keeps rotating afterwards).
        self.trace_excerpt: Tuple[str, ...] = ()
        tracer = _trace.ACTIVE
        if tracer is not None:
            self.trace_excerpt = tracer.excerpt(frames=frames)
        super().__init__(f"[{kind}] {message}")

    def report(self) -> str:
        """Multi-line human-readable report (see docs/TESTING.md)."""
        lines = [f"InvariantViolation: {self.args[0]}"]
        for key in sorted(self.details):
            lines.append(f"  {key}: {self.details[key]!r}")
        for frame in self.frames:
            lines.append(f"  frame: {_describe_frame(frame)}")
        if self.trace_excerpt:
            lines.append("  trace excerpt:")
            for line in self.trace_excerpt:
                lines.append(f"    {line}")
        return "\n".join(lines)


def _describe_frame(frame: Any) -> str:
    tid = getattr(frame, "transfer_id", None)
    if tid is None:
        return repr(frame)
    return (
        f"transfer={tid} msg={frame.msg_id} topic={frame.topic} "
        f"origin={frame.origin} dests={sorted(frame.destinations)} "
        f"path={frame.routing_path}"
    )


class _TransferRecord:
    """Link-level lifecycle counters of one transfer (= one frame copy)."""

    __slots__ = ("msg_id", "destinations", "sent", "delivered", "lost", "expired")

    def __init__(self, msg_id: int, destinations: Any) -> None:
        self.msg_id = msg_id
        self.destinations = destinations
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.expired = 0

    @property
    def in_flight(self) -> int:
        return self.sent - self.delivered - self.lost - self.expired


class Sanitizer:
    """Live invariant checker; attach to the probe bus via :func:`install`.

    All hooks are observation-only (no RNG draws, no scheduling), so an
    enabled run executes the identical event sequence as a disabled one.
    State grows with the run (one record per transfer, one per ARQ timer);
    the class is meant for tests and debugging sessions, not for the
    full-scale benchmark sweeps.

    ``partitioned=True`` adapts the checker to one process of a
    multi-process live deployment, where a node observes only its own
    partition's events: a frame transmitted by a *remote* broker
    legitimately arrives here without a local ``transmit`` record, so the
    unknown-arrival and over-settle conservation checks are relaxed (a
    record is opened on first sight instead). The per-partition ledgers
    are exported via :meth:`export_partition` and the full conservation
    argument is re-run over the merged fleet by
    :func:`check_merged_conservation` at the coordinator.
    """

    def __init__(self, partitioned: bool = False) -> None:
        #: Whether this sanitizer sees only one partition of the fleet.
        self.partitioned = partitioned
        # Aggregate counters surfaced as sanity.* perf entries.
        self.events_checked = 0
        self.timers_started = 0
        self.timers_settled = 0
        self.tables_checked = 0
        self.accepts_checked = 0
        self.violations = 0
        # transfer_id -> lifecycle record.
        self._transfers: Dict[int, _TransferRecord] = {}
        # Loss itemisation across all transfers, by cause.
        self.losses_by_cause: Dict[str, int] = {}
        # ARQ timer token (kernel event seq) -> [deadline, state].
        self._timers: Dict[int, List[Any]] = {}
        # (node, transfer_id) pairs that passed a broker's dedup filter.
        self._accepted: Set[Tuple[int, int]] = set()
        # (msg_id, subscriber) pairs a strategy took into explicit custody
        # (e.g. the persistency store) instead of giving up on.
        self._custody: Set[Tuple[int, int]] = set()
        # Ordering-guarantee state (fed by the order_hold/order_release
        # families).
        self.order_releases = 0
        self.order_stalls = 0
        # (node, msg) pairs currently buffered by a hold-back pipeline;
        # anything still here after the end-of-run flush is a release
        # that was silently swallowed (ORDER_HOLD_LEAK).
        self._order_held: Dict[Tuple[int, int], Any] = {}
        # (node, topic, origin) -> next expected fifo sequence.
        self._order_fifo_next: Dict[Tuple[int, int, int], int] = {}
        # node -> {(topic, origin) stream: last delivered seq} (causal).
        self._order_causal: Dict[int, Dict[Tuple[int, int], int]] = {}
        # (node, topic) -> last ready-released total-order key.
        self._order_total_last: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        # topic -> node -> ready-released (total-order key, msg) sequence.
        self._order_prefix: Dict[
            int, Dict[int, List[Tuple[Tuple[int, int, int], int]]]
        ] = {}
        # End-of-run conservation partition, filled by finish().
        self.pair_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def probe_handlers(self) -> Dict[str, Any]:
        """The :mod:`repro.probes` families this sanitizer subscribes.

        The sanitizer's public hook methods predate the bus and keep
        their historical signatures; the explicit mapping (with a few
        ``_probe_*`` adapters) bridges them to the unified payloads.
        """
        return {
            "event_pop": self.on_event_pop,
            "transmit": self._probe_transmit,
            "arrive": self._probe_arrive,
            "arrival_drop": self._probe_arrival_drop,
            "expire": self._probe_expire,
            "broker_accept": self.on_broker_accept,
            "timer_started": self.on_timer_started,
            "timer_cancelled": self._probe_timer_cancelled,
            "timer_fired": self.on_timer_fired,
            "table_solved": self.checked_table,
            "custody": self._probe_custody,
            "order_hold": self._probe_order_hold,
            "order_release": self._probe_order_release,
            "order_stall": self._probe_order_stall,
        }

    def _probe_transmit(
        self,
        t: float,
        src: int,
        dst: int,
        frame: Any,
        survived: bool,
        cause: Optional[str],
        prop: float,
        queue: Optional[float],
    ) -> None:
        self.on_data_transmit(src, dst, frame, survived, cause)

    def _probe_arrive(self, t: float, src: int, dst: int, frame: Any) -> None:
        self.on_frame_delivered(frame)

    def _probe_arrival_drop(
        self, t: float, src: int, dst: int, frame: Any, cause: str
    ) -> None:
        self.on_frame_lost(frame, cause)

    def _probe_expire(self, t: float, src: int, dst: int, frame: Any) -> None:
        self.on_frame_expired(frame)

    def _probe_timer_cancelled(self, token: int) -> Any:
        # Veto family: returning False keeps the ARQ timer alive, which is
        # exactly the leak MUTATE_SKIP_TIMER_CANCEL must inject (the timer
        # stays _PENDING here too, so the orphan check fires at finish()).
        if MUTATE_SKIP_TIMER_CANCEL:
            return False
        self.on_timer_cancelled(token)
        return True

    def _probe_custody(
        self,
        t: float,
        node: int,
        frame: Any,
        subscriber: int,
        action: str,
        fresh_transfer: int = -1,
    ) -> None:
        if action == "stored":
            self.on_pair_custody(frame.msg_id, subscriber)

    # ------------------------------------------------------------------
    def _violate(
        self,
        kind: str,
        message: str,
        frames: Tuple[Any, ...] = (),
        **details: Any,
    ) -> None:
        self.violations += 1
        raise InvariantViolation(kind, message, frames=frames, details=details)

    # ------------------------------------------------------------------
    # Kernel (sim/engine.py)
    # ------------------------------------------------------------------
    def on_event_pop(self, time: float, now: float) -> None:
        """The kernel is about to execute an event dated *time*."""
        self.events_checked += 1
        if time < now:
            self._violate(
                EVENT_ORDER,
                f"event dated t={time!r} popped at now={now!r}",
                time=time,
                now=now,
            )

    # ------------------------------------------------------------------
    # Overlay links (overlay/links.py)
    # ------------------------------------------------------------------
    def on_data_transmit(
        self, src: int, dst: int, frame: Any, survived: bool, cause: Optional[str]
    ) -> None:
        """A DATA frame was handed to the (src, dst) link direction."""
        transfer_id = getattr(frame, "transfer_id", None)
        if transfer_id is None:
            return  # tests transmit bare objects; nothing to track
        record = self._transfers.get(transfer_id)
        if record is None:
            record = _TransferRecord(frame.msg_id, frame.destinations)
            self._transfers[transfer_id] = record
        record.sent += 1
        if not survived:
            record.lost += 1
            cause = cause or "unknown"
            self.losses_by_cause[cause] = self.losses_by_cause.get(cause, 0) + 1

    def on_frame_delivered(self, frame: Any) -> None:
        """A DATA frame reached its receiver's handler."""
        transfer_id = getattr(frame, "transfer_id", None)
        if transfer_id is None:
            return
        record = self._transfers.get(transfer_id)
        if record is None:
            if not self.partitioned:
                self._violate(
                    CONSERVATION,
                    f"transfer {transfer_id} delivered but never transmitted",
                    frames=(frame,),
                    transfer_id=transfer_id,
                )
            # Partitioned mode: the transmit happened in another process;
            # open the record so the merged fleet-wide tally still sees
            # the arrival (sent stays 0 here, >0 at the sender's export).
            record = _TransferRecord(frame.msg_id, frame.destinations)
            self._transfers[transfer_id] = record
        record.delivered += 1
        if not self.partitioned and (
            record.delivered + record.lost + record.expired > record.sent
        ):
            self._violate(
                CONSERVATION,
                f"transfer {transfer_id} settled more often than it was sent",
                frames=(frame,),
                sent=record.sent,
                delivered=record.delivered,
                lost=record.lost,
                expired=record.expired,
            )

    def on_frame_lost(self, frame: Any, cause: str) -> None:
        """A DATA frame was dropped after transmission (arrival hazards)."""
        transfer_id = getattr(frame, "transfer_id", None)
        if transfer_id is None:
            return
        record = self._transfers.get(transfer_id)
        if record is not None:
            record.lost += 1
        self.losses_by_cause[cause] = self.losses_by_cause.get(cause, 0) + 1

    def on_frame_expired(self, frame: Any) -> None:
        """The EDF overload policy discarded a queued DATA frame."""
        transfer_id = getattr(frame, "transfer_id", None)
        if transfer_id is None:
            return
        record = self._transfers.get(transfer_id)
        if record is not None:
            record.expired += 1
        self.losses_by_cause["edf_expired"] = (
            self.losses_by_cause.get("edf_expired", 0) + 1
        )

    # ------------------------------------------------------------------
    # Broker runtime (pubsub/broker.py)
    # ------------------------------------------------------------------
    def on_broker_accept(self, node: int, sender: int, frame: Any) -> None:
        """A DATA frame from *sender* passed broker *node*'s dedup.

        Loop freedom: the routing path may legitimately revisit brokers —
        DCRD *bounces* stuck copies back upstream (§III, Algorithm 2 lines
        10–12) — but a revisit is only legal when *node* is exactly the
        upstream the sender read from its carried path. Any other arrival
        at an already-visited broker is a forwarding loop.
        """
        self.accepts_checked += 1
        path = frame.routing_path
        if frozenset(path) != frame.path_set:
            self._violate(
                PATH_DESYNC,
                f"frame at broker {node} has path_set out of sync with "
                f"routing_path={path}",
                frames=(frame,),
                node=node,
                routing_path=path,
                path_set=sorted(frame.path_set),
            )
        if path and path[-1] != sender:
            self._violate(
                PATH_DESYNC,
                f"frame arrived at broker {node} from {sender} but its "
                f"routing path ends in {path[-1]}",
                frames=(frame,),
                node=node,
                sender=sender,
                routing_path=path,
            )
        if node in frame.path_set:
            # The path the sender's task held is everything before the
            # sender's own appended entry; its upstream is the entry just
            # before the sender's first appearance there (or the last
            # sender when it had not forwarded this copy before) — the
            # exact rule of PacketFrame.upstream_of.
            prefix = path[:-1]
            if sender in prefix:
                index = prefix.index(sender)
                expected = prefix[index - 1] if index > 0 else -1
            else:
                expected = prefix[-1] if prefix else -1
            if node != expected:
                self._violate(
                    PATH_CYCLE,
                    f"frame re-entered already-visited broker {node} from "
                    f"{sender} (not a legal upstream bounce, which would "
                    f"go to {expected}): path={path}",
                    frames=(frame,),
                    node=node,
                    sender=sender,
                    routing_path=path,
                )
        key = (node, frame.transfer_id)
        if key in self._accepted:
            self._violate(
                DUPLICATE_DELIVERY,
                f"transfer {frame.transfer_id} passed dedup twice at "
                f"broker {node}",
                frames=(frame,),
                node=node,
                transfer_id=frame.transfer_id,
            )
        self._accepted.add(key)

    # ------------------------------------------------------------------
    # ARQ (routing/arq.py)
    # ------------------------------------------------------------------
    def on_timer_started(
        self, token: int, deadline: float, frame: Any = None
    ) -> None:
        """An ACK-timeout event was pushed into the calendar queue.

        ``frame`` (the outstanding copy the timer guards) is optional and
        only used to attach a trace excerpt to orphan-timer violations.
        """
        self.timers_started += 1
        self._timers[token] = [deadline, _PENDING, frame]

    def on_timer_cancelled(self, token: int) -> None:
        """The ACK arrived first; the timer was cancelled."""
        self._settle(token, _CANCELLED)

    def on_timer_fired(self, token: int) -> None:
        """The timeout fired and was acted on (retransmit or fail)."""
        self._settle(token, _FIRED)

    def _settle(self, token: int, state: int) -> None:
        entry = self._timers.get(token)
        if entry is None:
            self._violate(
                TIMER_UNKNOWN,
                f"ARQ timer {token} settled but was never started",
                token=token,
            )
        if entry[1] != _PENDING:
            self._violate(
                TIMER_DOUBLE_SETTLE,
                f"ARQ timer {token} settled twice "
                f"({_STATE_NAMES[entry[1]]}, then {_STATE_NAMES[state]})",
                token=token,
                first=_STATE_NAMES[entry[1]],
                second=_STATE_NAMES[state],
            )
        entry[1] = state
        self.timers_settled += 1

    # ------------------------------------------------------------------
    # DCRD control plane (core/forwarding.py)
    # ------------------------------------------------------------------
    def checked_table(self, table: Any) -> Any:
        """Validate (and, under the test mutation, corrupt) a solved table.

        Called on every raw solver output before the strategy publishes
        it — deliberately *before* post-processing ablations like the
        naive-order strategy reorder their copies, which are allowed to
        violate Theorem 1 by design.
        """
        if MUTATE_MISSORT_SENDING_LIST:
            table = _missort_table(table)
        self.check_dr_table(table)
        return table

    def check_dr_table(self, table: Any) -> None:
        """Every sending list must be in Theorem-1 ``d/r`` order."""
        self.tables_checked += 1
        for node, state in table.states.items():
            previous = None
            for via in state.sending_list:
                key = (theorem1_key(via.d_via, via.r_via), via.neighbor)
                if previous is not None and key < previous:
                    self._violate(
                        SENDING_LIST_ORDER,
                        f"sending list of broker {node} for pair "
                        f"({table.publisher} -> {table.subscriber}) is out "
                        f"of Theorem-1 d/r order",
                        node=node,
                        publisher=table.publisher,
                        subscriber=table.subscriber,
                        sending_list=[
                            (v.neighbor, v.d_via, v.r_via)
                            for v in state.sending_list
                        ],
                    )
                previous = key

    # ------------------------------------------------------------------
    # Ordering pipelines (ordering/pipeline.py)
    # ------------------------------------------------------------------
    def _probe_order_hold(
        self, t: float, node: int, frame: Any, level: str
    ) -> None:
        """A delivery pipeline buffered *frame* at *node*."""
        self._order_held[(node, frame.msg_id)] = frame

    def _probe_order_release(
        self,
        t: float,
        node: int,
        frame: Any,
        level: str,
        reason: str,
        held_for: float,
    ) -> None:
        """A delivery pipeline released *frame* at *node*."""
        self.order_releases += 1
        self._order_held.pop((node, frame.msg_id), None)
        tag = getattr(frame, "order_tag", None)
        if tag is None:
            return
        if level == "fifo":
            self._check_order_fifo(node, frame, tag, reason)
        elif level == "causal":
            self._check_order_causal(node, frame, tag, reason)
        elif level == "total":
            self._check_order_total(node, frame, tag, reason)

    def _probe_order_stall(
        self, t: float, node: int, level: str, info: Any
    ) -> None:
        self.order_stalls += 1

    def _check_order_fifo(
        self, node: int, frame: Any, tag: Any, reason: str
    ) -> None:
        """Gap-freedom: ready releases walk the publisher sequence 1-by-1.

        The first release of a stream at a node adopts its sequence as
        the baseline (mid-stream joiners own no history); ``stall`` and
        ``flush`` releases re-baseline instead of being checked.
        """
        key = (node, frame.topic, tag.origin)
        expected = self._order_fifo_next.get(key)
        if reason == "ready":
            if expected is not None and tag.seq != expected:
                self._violate(
                    ORDER_FIFO_GAP,
                    f"fifo release at broker {node} jumped to seq {tag.seq} "
                    f"of stream (topic={frame.topic}, origin={tag.origin}); "
                    f"expected seq {expected}",
                    frames=(frame,),
                    node=node,
                    topic=frame.topic,
                    origin=tag.origin,
                    seq=tag.seq,
                    expected=expected,
                )
            self._order_fifo_next[key] = tag.seq + 1
        elif expected is None or tag.seq + 1 > expected:
            self._order_fifo_next[key] = tag.seq + 1

    def _check_order_causal(
        self, node: int, frame: Any, tag: Any, reason: str
    ) -> None:
        """Precedence-respected: no ready release before its causes.

        Mirrors the pipeline's dynamic-join semantics exactly: a
        dependency on a stream this node has never delivered from is
        waived, and the first release of a stream adopts the baseline.
        """
        stream = (frame.topic, tag.origin)
        delivered = self._order_causal.setdefault(node, {})
        have = delivered.get(stream)
        if reason == "ready":
            if have is not None and tag.seq != have + 1:
                self._violate(
                    ORDER_CAUSAL_PRECEDENCE,
                    f"causal release at broker {node} delivered seq "
                    f"{tag.seq} of stream (topic={frame.topic}, "
                    f"origin={tag.origin}) after seq {have}",
                    frames=(frame,),
                    node=node,
                    topic=frame.topic,
                    origin=tag.origin,
                    seq=tag.seq,
                    last_delivered=have,
                )
            if tag.vc:
                for dep, need in tag.vc.items():
                    if dep == stream:
                        continue
                    seen = delivered.get(dep)
                    if seen is not None and seen < need:
                        self._violate(
                            ORDER_CAUSAL_PRECEDENCE,
                            f"causal release at broker {node} depends on "
                            f"seq {need} of stream {dep} but only "
                            f"{seen} was delivered",
                            frames=(frame,),
                            node=node,
                            dependency_stream=dep,
                            needed=need,
                            seen=seen,
                        )
        if have is None or tag.seq > have:
            delivered[stream] = tag.seq

    def _check_order_total(
        self, node: int, frame: Any, tag: Any, reason: str
    ) -> None:
        """Agreed-sequence monotonicity plus the per-topic prefix ledger.

        ``stall``/``flush`` releases left the agreed order on purpose;
        they neither advance the node's key watermark nor enter its
        prefix — the end-of-run prefix comparison is over ready releases
        only.
        """
        if reason != "ready":
            return
        key = (tag.ts, tag.origin, tag.seq)
        watermark = (node, frame.topic)
        last = self._order_total_last.get(watermark)
        if last is not None and key <= last:
            self._violate(
                ORDER_TOTAL_INVERSION,
                f"total-order release at broker {node} went backwards: "
                f"key {key} after {last} on topic {frame.topic}",
                frames=(frame,),
                node=node,
                topic=frame.topic,
                key=key,
                previous=last,
            )
        self._order_total_last[watermark] = key
        self._order_prefix.setdefault(frame.topic, {}).setdefault(
            node, []
        ).append((key, frame.msg_id))

    def _check_order_prefixes(self) -> None:
        """Subscribers agree on order and keys of common ready releases."""
        _compare_prefix_map(self._order_prefix, self._violate)

    def _check_order_hold_leaks(self) -> None:
        """Hold/release pairing: runners flush pipelines before the
        end-of-run checks, so every buffered frame must have released by
        now (``ready``, ``stall`` or ``flush``) — a leftover hold is a
        delivery the pipeline silently swallowed."""
        if self._order_held:
            (node, msg), frame = sorted(self._order_held.items())[0]
            self._violate(
                ORDER_HOLD_LEAK,
                f"{len(self._order_held)} hold-back frame(s) were never "
                f"released; first: msg {msg} held at broker {node}",
                frames=(frame,),
                leaked=len(self._order_held),
                node=node,
                msg=msg,
            )

    # ------------------------------------------------------------------
    # Strategy custody (extensions/persistence.py)
    # ------------------------------------------------------------------
    def on_pair_custody(self, msg_id: int, subscriber: int) -> None:
        """A strategy persisted (msg, subscriber) instead of giving up."""
        self._custody.add((msg_id, subscriber))

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def finish(self, metrics: Any, now: float) -> None:
        """Run the end-of-drain checks; raises on the first violation.

        Parameters
        ----------
        metrics:
            The run's :class:`~repro.metrics.collector.MetricsCollector`.
        now:
            Final virtual time (orphan timers are only flagged when their
            deadline is in the executed past — later ones were legitimately
            cut off by the end of the run).
        """
        self._check_timer_orphans(now)
        self._check_conservation(metrics)
        self._check_order_prefixes()
        self._check_order_hold_leaks()

    def finish_partition(self, now: float) -> None:
        """End-of-run checks that are sound within one partition.

        Timer settlement is purely local (every ARQ timer starts and
        settles in the process that armed it), so the orphan check runs
        here, as does the total-order prefix agreement between this
        partition's own subscribers; conservation (and the cross-
        partition prefix comparison) needs the whole fleet's ledgers and
        is deferred to :func:`check_merged_conservation` /
        :func:`check_merged_order_prefixes` at the coordinator.
        """
        self._check_timer_orphans(now)
        self._check_order_prefixes()
        self._check_order_hold_leaks()

    def export_partition(self) -> Dict[str, Any]:
        """JSON-safe snapshot of this partition's conservation ledgers.

        The coordinator sums these across processes (transfer records by
        ``transfer_id``, custody pairs, loss itemisation) and re-runs the
        full conservation argument via :func:`check_merged_conservation`.
        """
        return {
            "transfers": [
                [
                    tid,
                    record.msg_id,
                    sorted(record.destinations),
                    record.sent,
                    record.delivered,
                    record.lost,
                    record.expired,
                ]
                for tid, record in sorted(self._transfers.items())
            ],
            "custody": sorted(list(pair) for pair in self._custody),
            "losses_by_cause": dict(self.losses_by_cause),
            # Ready-release total-order sequences, flattened to
            # [ts, origin, seq, msg] rows so the snapshot survives a
            # JSON control-channel round trip.
            "order_prefixes": [
                [topic, node, [[*key, msg] for key, msg in entries]]
                for topic, by_node in sorted(self._order_prefix.items())
                for node, entries in sorted(by_node.items())
            ],
        }

    def _check_timer_orphans(self, now: float) -> None:
        orphans = [
            (token, entry[0])
            for token, entry in self._timers.items()
            if entry[1] == _PENDING and entry[0] <= now
        ]
        if orphans:
            token, deadline = orphans[0]
            frame = self._timers[token][2]
            self._violate(
                TIMER_ORPHAN,
                f"{len(orphans)} ARQ timer(s) due by t={now!r} were neither "
                f"cancelled nor fired (first: token {token}, due "
                f"t={deadline!r})",
                frames=(frame,) if frame is not None else (),
                orphans=len(orphans),
                first_token=token,
                first_deadline=deadline,
                now=now,
            )

    def _check_conservation(self, metrics: Any) -> None:
        """published = delivered + dropped + expired + stranded, itemised.

        Every expected (message, subscriber) pair must end the run in a
        provable state: delivered, given up (dropped), or stranded with a
        link-level explanation — a carrying copy lost, expired, still in
        flight, delivered-but-unusable at a broker (e.g. an undecodable
        FEC fragment subset), or in explicit strategy custody. A pair
        *no copy ever carried* and no strategy accounted for is leaked
        protocol state.
        """
        by_msg: Dict[int, List[_TransferRecord]] = {}
        for record in self._transfers.values():
            by_msg.setdefault(record.msg_id, []).append(record)

        counts = {
            "delivered": 0,
            "dropped": 0,
            "expired": 0,
            "stranded_in_flight": 0,
            "stranded_lost": 0,
            "stranded_arrived": 0,
            "stranded_custody": 0,
            "leaked": 0,
        }
        leaked: List[Tuple[int, int]] = []
        for outcome in metrics.outcomes():
            counts[self._classify(outcome, by_msg, leaked)] += 1
        self.pair_counts = counts
        if counts["leaked"]:
            self._violate(
                CONSERVATION,
                f"{counts['leaked']} expected pair(s) vanished: never "
                f"given up, never carried by any transmitted copy "
                f"(first: msg {leaked[0][0]} -> subscriber {leaked[0][1]})",
                pair_counts=dict(counts),
                leaked_pairs=leaked[:10],
                losses_by_cause=dict(self.losses_by_cause),
            )

    def _classify(
        self,
        outcome: Any,
        by_msg: Dict[int, List[_TransferRecord]],
        leaked: List[Tuple[int, int]],
    ) -> str:
        if outcome.delivered:
            return "delivered"
        if outcome.gave_up:
            return "dropped"
        pair = (outcome.msg_id, outcome.subscriber)
        if pair in self._custody:
            return "stranded_custody"
        subscriber = outcome.subscriber
        in_flight = lost = expired = carried = 0
        for record in by_msg.get(outcome.msg_id, ()):
            if subscriber not in record.destinations:
                continue
            carried += 1
            in_flight += record.in_flight
            lost += record.lost
            expired += record.expired
        if in_flight:
            return "stranded_in_flight"
        if expired:
            return "expired"
        if lost:
            return "stranded_lost"
        if carried:
            # Every carrying copy arrived somewhere, yet the pair was not
            # delivered: the copies stopped being useful at a broker (an
            # undecodable FEC fragment subset, a dedup-suppressed bounce).
            return "stranded_arrived"
        leaked.append(pair)
        return "leaked"

    # ------------------------------------------------------------------
    def perf_counters(self) -> Dict[str, float]:
        """The ``sanity.*`` entries merged into ``MetricsSummary.perf``."""
        perf = {
            "sanity.events_checked": float(self.events_checked),
            "sanity.frames_tracked": float(len(self._transfers)),
            "sanity.accepts_checked": float(self.accepts_checked),
            "sanity.timers_started": float(self.timers_started),
            "sanity.timers_settled": float(self.timers_settled),
            "sanity.tables_checked": float(self.tables_checked),
            "sanity.order_releases": float(self.order_releases),
            "sanity.order_stalls": float(self.order_stalls),
            "sanity.violations": float(self.violations),
        }
        for category, count in self.pair_counts.items():
            perf[f"sanity.pairs_{category}"] = float(count)
        return perf


class _MergedOutcome:
    """Outcome shim for :func:`check_merged_conservation` (duck-typed
    against :meth:`Sanitizer._classify`'s reads)."""

    __slots__ = ("msg_id", "subscriber", "delivered", "gave_up")

    def __init__(
        self, msg_id: int, subscriber: int, delivered: bool, gave_up: bool
    ) -> None:
        self.msg_id = msg_id
        self.subscriber = subscriber
        self.delivered = delivered
        self.gave_up = gave_up


class _MergedMetrics:
    """Metrics shim exposing just ``outcomes()`` over merged fleet pairs."""

    def __init__(self, outcomes: List[_MergedOutcome]) -> None:
        self._outcomes = outcomes

    def outcomes(self) -> List[_MergedOutcome]:
        return self._outcomes


def check_merged_conservation(
    partitions: Any,
    expected: Any,
    delivered: Any,
    gave_up: Any,
) -> Dict[str, int]:
    """Fleet-wide conservation over merged per-partition sanitizer exports.

    Each partition of a multi-process run ships its
    :meth:`Sanitizer.export_partition` snapshot to the coordinator; this
    helper sums the transfer lifecycles by ``transfer_id`` (a frame sent
    in one process and received in another contributes ``sent`` from the
    sender's ledger and ``delivered`` from the receiver's), merges the
    custody pairs and loss itemisation, and re-runs the exact
    single-process conservation argument over the fleet's expected
    ``(msg_id, subscriber)`` pairs. Raises :class:`InvariantViolation`
    on a leak; returns the itemised pair counts otherwise.
    """
    merged = Sanitizer()
    for part in partitions:
        for tid, msg_id, dests, sent, deliv, lost, expired in part["transfers"]:
            record = merged._transfers.get(tid)
            if record is None:
                record = _TransferRecord(msg_id, frozenset(dests))
                merged._transfers[tid] = record
            else:
                record.destinations = frozenset(record.destinations) | frozenset(
                    dests
                )
            record.sent += sent
            record.delivered += deliv
            record.lost += lost
            record.expired += expired
        for msg_id, subscriber in part.get("custody", ()):
            merged._custody.add((msg_id, subscriber))
        for cause, count in part.get("losses_by_cause", {}).items():
            merged.losses_by_cause[cause] = (
                merged.losses_by_cause.get(cause, 0) + count
            )
    delivered_set = set(delivered)
    gave_up_set = set(gave_up)
    outcomes = [
        _MergedOutcome(
            msg_id,
            subscriber,
            (msg_id, subscriber) in delivered_set,
            (msg_id, subscriber) in gave_up_set,
        )
        for msg_id, subscriber in sorted(expected)
    ]
    merged._check_conservation(_MergedMetrics(outcomes))
    return dict(merged.pair_counts)


def _compare_prefix_map(
    prefix_map: Dict[int, Dict[int, List[Tuple[Tuple[int, int, int], int]]]],
    violate: Any,
) -> None:
    """Pairwise agreement over per-node ready ``(key, msg)`` sequences.

    Restricted to the messages *both* subscribers ready-released: holes
    are legitimate (a stall-released straggler, a given-up pair, an
    end-of-run cutoff never enter a node's ready sequence — and a
    silently swallowed delivery is frame *conservation*'s job to catch),
    but the common messages must carry identical agreement keys and
    appear in the identical relative order on every subscriber.
    """
    for topic, by_node in sorted(prefix_map.items()):
        nodes = sorted(by_node)
        for index, first in enumerate(nodes):
            for second in nodes[index + 1 :]:
                shared = {msg for _, msg in by_node[first]} & {
                    msg for _, msg in by_node[second]
                }
                left = [e for e in by_node[first] if e[1] in shared]
                right = [e for e in by_node[second] if e[1] in shared]
                for position, (a, b) in enumerate(zip(left, right)):
                    if a != b:
                        violate(
                            ORDER_TOTAL_PREFIX,
                            f"total-order sequences diverge on topic "
                            f"{topic}: broker {first} released "
                            f"key={a[0]} msg={a[1]} at common position "
                            f"{position} while broker {second} released "
                            f"key={b[0]} msg={b[1]}",
                            topic=topic,
                            nodes=(first, second),
                            position=position,
                            keys=(a, b),
                        )


def check_merged_order_prefixes(partitions: Any) -> None:
    """Fleet-wide total-order prefix agreement at the coordinator.

    Merges the per-partition ``order_prefixes`` exports (each node's
    ready-release sequence lives wholly in the partition hosting it)
    and re-runs the pairwise common-message comparison across the whole
    fleet. Raises :class:`InvariantViolation` on divergence.
    """
    merged: Dict[int, Dict[int, List[Tuple[Tuple[int, int, int], int]]]] = {}
    for part in partitions:
        for topic, node, rows in part.get("order_prefixes", ()):
            merged.setdefault(topic, {})[node] = [
                (tuple(row[:3]), row[3]) for row in rows
            ]

    def violate(kind: str, message: str, **details: Any) -> None:
        raise InvariantViolation(kind, message, details=details)

    _compare_prefix_map(merged, violate)


def _missort_table(table: Any) -> Any:
    """Test mutation: reverse the first reversible sending list.

    Picks the first broker whose list has two entries with *different*
    Theorem-1 keys (reversing an all-tied list would still be validly
    ordered) and publishes the corrupted table.
    """
    for node, state in table.states.items():
        keys = [
            (theorem1_key(via.d_via, via.r_via), via.neighbor)
            for via in state.sending_list
        ]
        if len(keys) >= 2 and keys[0] != keys[-1]:
            states = dict(table.states)
            states[node] = dataclasses.replace(
                state, sending_list=tuple(reversed(state.sending_list))
            )
            return dataclasses.replace(table, states=states, _orders={})
    return table


def install(sanitizer: Optional["Sanitizer"]) -> None:
    """Attach *sanitizer* to the probe bus (``None`` detaches the current).

    Also mirrors it into the legacy :data:`ACTIVE` slot so existing
    callers (and the trace-excerpt plumbing) keep working. Installing the
    already-installed sanitizer is a no-op; installing a different one
    first detaches the previous.
    """
    global ACTIVE
    if ACTIVE is not None and ACTIVE is not sanitizer:
        _probes.detach(ACTIVE)
    ACTIVE = sanitizer
    if sanitizer is not None:
        _probes.attach(sanitizer)


def uninstall() -> None:
    """Detach the installed sanitizer and clear :data:`ACTIVE`."""
    install(None)

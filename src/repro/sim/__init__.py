"""Discrete-event simulation kernel.

``simpy`` is not available in this environment, so the kernel is implemented
from scratch: a heap-based calendar queue (:class:`~repro.sim.engine.Simulator`),
cancellable timers, periodic processes, and per-component seeded random
streams (:class:`~repro.sim.random.RandomStreams`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.random import RandomStreams

__all__ = ["Event", "PeriodicProcess", "RandomStreams", "Simulator", "Timer"]

"""The discrete-event engine.

A :class:`Simulator` owns a virtual clock and a binary-heap calendar queue.
Components schedule callbacks at future virtual times; :meth:`Simulator.run`
pops events in (time, insertion-order) order and invokes them. Cancellation
is lazy: a cancelled :class:`Event` stays in the heap but is skipped when it
surfaces, which keeps both operations O(log n).

The engine is single-threaded and deterministic: two runs with the same
schedule of callbacks and the same random seeds produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.util.errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and are primarily
    useful as cancellation handles. ``time`` is the virtual time at which the
    callback fires; ``seq`` breaks ties FIFO for events at the same time.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_on_cancel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._on_cancel = on_cancel

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call more than once.

        Cancelling an event that already fired (or was already cancelled)
        is a no-op, so holders may cancel handles unconditionally.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Drop references early so cancelled events don't pin large objects
        # while they wait to surface from the heap.
        self.callback = _noop
        self.args = ()
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed on cancelled events."""


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        # Live (scheduled, not yet fired, not cancelled) event count.
        # Maintained incrementally so ``pending_events`` is O(1) even with
        # lazy cancellation leaving tombstones in the heap.
        self._live = 0

    def _on_event_cancelled(self) -> None:
        self._live -= 1

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue (O(1))."""
        return self._live

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule *callback(*args)* to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled. ``delay`` must be
        non-negative; a zero delay fires after all events already scheduled
        for the current instant (FIFO tie-breaking).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(
            self._now + delay,
            next(self._seq),
            callback,
            args,
            on_cancel=self._on_event_cancelled,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule *callback* at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(
            time, next(self._seq), callback, args, on_cancel=self._on_event_cancelled
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Execute events in order.

        Parameters
        ----------
        until:
            Stop once virtual time would exceed this value; events scheduled
            exactly at ``until`` still fire. ``None`` drains the queue.
        max_events:
            Safety valve for runaway schedules: at most ``max_events`` events
            execute; a :class:`SimulationError` is raised as soon as one more
            would run. A schedule of exactly ``max_events`` events finishes
            cleanly.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway schedule?"
                    )
                heapq.heappop(self._heap)
                self._live -= 1
                event.fired = True
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        Useful in tests that need fine-grained control.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.fired = True
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events without running them (keeps the clock)."""
        for event in self._heap:
            # Mark dropped events cancelled so late cancel() calls on their
            # handles stay no-ops (and don't corrupt the live counter).
            event.cancelled = True
            event.callback = _noop
            event.args = ()
            event._on_cancel = None
        self._heap.clear()
        self._live = 0

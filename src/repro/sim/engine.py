"""The discrete-event engine.

A :class:`Simulator` owns a virtual clock and a binary-heap calendar queue.
Components schedule callbacks at future virtual times; :meth:`Simulator.run`
pops events in (time, insertion-order) order and invokes them. Cancellation
is lazy: a cancelled :class:`Event` stays in the heap but is skipped when it
surfaces, which keeps both operations O(log n).

The engine is single-threaded and deterministic: two runs with the same
schedule of callbacks and the same random seeds produce identical traces.

The simulator is the event-time implementation of the substrate
:class:`~repro.substrate.Clock` contract (``now``/``schedule``/
``schedule_fire`` plus the hot-path ``_now`` attribute); the live runtime
substitutes :class:`~repro.live.clock.WallClock` behind the same surface.
Trusted hot paths additionally inline the calendar queue via
:meth:`Simulator.calendar_kernel` — a capability only this kernel offers,
which is how the stack distinguishes the two substrates.

Fast path
---------

The heap stores C-comparable ``(time, seq, event)`` tuples rather than the
:class:`Event` objects themselves, so every sift comparison during
``heappush``/``heappop`` is resolved by the tuple's float/int prefix in C —
``Event.__lt__`` is never called on the hot path. ``seq`` is unique per
event, so a comparison never reaches the third element.

Lazy cancellation is supplemented by *tombstone compaction*: when the
cancelled entries exceed a configurable fraction of the heap
(:attr:`Simulator.compaction_ratio`), the heap is rebuilt in place without
them. Compaction removes only entries that could never fire, and the heap
order is a pure function of the live ``(time, seq)`` keys, so the pop
sequence — and therefore the whole run — is bit-identical with compaction
on or off (set ``compaction_ratio`` to ``None`` for the legacy
lazy-deletion-only behaviour). :attr:`heap_compactions` and
:attr:`tombstones_reaped` expose the activity to the perf layer.
"""

from __future__ import annotations

import gc
import heapq
import itertools
from time import perf_counter as _perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro import probes as _probes
from repro.util.errors import SimulationError

_heappush = heapq.heappush
_heappop = heapq.heappop
_INF = float("inf")


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and are primarily
    useful as cancellation handles. ``time`` is the virtual time at which the
    callback fires; ``seq`` breaks ties FIFO for events at the same time.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_on_cancel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._on_cancel = on_cancel

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call more than once.

        Cancelling an event that already fired (or was already cancelled)
        is a no-op, so holders may cancel handles unconditionally.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Drop references early so cancelled events don't pin large objects
        # while they wait to surface from the heap.
        self.callback = _noop
        self.args = ()
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed on cancelled events."""


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: Tombstone fraction of the heap that triggers compaction. ``None``
    #: restores the legacy kernel behaviour (lazy deletion only, cancelled
    #: events pinned until their deadline surfaces). Class attribute so
    #: tests can flip the whole process into legacy mode.
    compaction_ratio: Optional[float] = 0.5
    #: Minimum number of tombstones before compaction is considered
    #: (amortises the O(n) rebuild away from tiny heaps).
    compaction_min: int = 64

    def __init__(self) -> None:
        self._now = 0.0
        # C-comparable heap entries; ``seq`` is unique, so comparisons never
        # reach the payload. Entries are either ``(time, seq, Event)`` or —
        # for fire-and-forget schedules — ``(time, seq, callback, args)``.
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        # Live (scheduled, not yet fired, not cancelled) event count.
        # Maintained incrementally so ``pending_events`` is O(1) even with
        # lazy cancellation leaving tombstones in the heap.
        self._live = 0
        # Cancelled entries still sitting in the heap.
        self._tombstones = 0
        #: Number of tombstone-compaction passes performed.
        self.heap_compactions = 0
        #: Cancelled entries removed by compaction (instead of surfacing).
        self.tombstones_reaped = 0
        #: Accumulated wall-clock seconds spent inside :meth:`run`
        #: (observation only — feeds the perf layer's events/s figure).
        self.run_wall_s = 0.0

    def _on_event_cancelled(self) -> None:
        self._live -= 1
        self._tombstones = tombstones = self._tombstones + 1
        ratio = self.compaction_ratio
        if (
            ratio is not None
            and tombstones >= self.compaction_min
            and tombstones >= ratio * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (in place).

        Only dead entries are removed and the heap invariant is restored
        over the unchanged live ``(time, seq)`` keys, so the subsequent pop
        order is identical to what lazy deletion would have produced.
        """
        heap = self._heap
        before = len(heap)
        # Fire-and-forget entries (len 4) have no cancel handle: always live.
        heap[:] = [entry for entry in heap if len(entry) == 4 or not entry[2].cancelled]
        heapq.heapify(heap)
        self.heap_compactions += 1
        self.tombstones_reaped += before - len(heap)
        self._tombstones = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def calendar_kernel(self) -> Tuple[List[tuple], Any, Callable[[], None]]:
        """Expose the raw calendar-queue internals for trusted hot paths.

        Returns ``(heap, seq_counter, on_event_cancelled)``. Callers push
        C-comparable ``(time, seq, Event)`` / ``(time, seq, callback,
        args)`` entries directly (incrementing :attr:`_live` per push),
        skipping the :meth:`schedule` call overhead — the ARQ timeout push
        and the overlay's delivery push live on this. All three aliases
        stay valid for the simulator's lifetime: the kernel mutates its
        heap strictly in place (compaction included) and never rebinds the
        sequence counter. Portable :class:`~repro.substrate.Clock`
        implementations do not offer this method; the absence is the
        signal that sends the ARQ layer down its portable scheduling path.
        """
        return self._heap, self._seq, self._on_event_cancelled

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue (O(1))."""
        return self._live

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule *callback(*args)* to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled. ``delay`` must be
        non-negative; a zero delay fires after all events already scheduled
        for the current instant (FIFO tie-breaking).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        seq = next(self._seq)
        event = Event(time, seq, callback, args, self._on_event_cancelled)
        _heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def schedule_fire(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle.

        Identical ordering semantics (consumes one ``seq``, fires at
        ``now + delay`` in FIFO tie order) but pushes a bare
        ``(time, seq, callback, args)`` entry — no :class:`Event` object is
        allocated. Meant for the data-plane hot path (frame deliveries),
        where events are never cancelled individually; :meth:`clear` still
        discards them.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        _heappush(self._heap, (self._now + delay, next(self._seq), callback, args))
        self._live += 1

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule *callback* at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = next(self._seq)
        event = Event(time, seq, callback, args, on_cancel=self._on_event_cancelled)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Execute events in order.

        Parameters
        ----------
        until:
            Stop once virtual time would exceed this value; events scheduled
            exactly at ``until`` still fire. ``None`` drains the queue.
        max_events:
            Safety valve for runaway schedules: at most ``max_events`` events
            execute; a :class:`SimulationError` is raised as soon as one more
            would run. A schedule of exactly ``max_events`` events finishes
            cleanly.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        limit = _INF if until is None else until
        quota = _INF if max_events is None else max_events
        # Compaction rebuilds the heap *in place*, so this alias stays valid
        # even when a callback's cancel() triggers a compaction mid-loop.
        heap = self._heap
        heappop = heapq.heappop
        # The event loop allocates heavily (frames, heap entries) but creates
        # few cycles; pausing the cyclic collector avoids gen-0 scans every
        # ~700 allocations. Refcounting still frees the bulk immediately, and
        # re-enabling afterwards lets the collector reclaim any cycles on its
        # own schedule, outside the hot loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # The event_pop probe slot, hoisted once per run(): None (the
        # default) keeps the loop body at a single local load + identity
        # check per event regardless of how many observers are attached.
        on_event_pop = _probes.on_event_pop
        wall_start = _perf_counter()
        try:
            while heap:
                entry = heap[0]
                if len(entry) == 3:
                    event = entry[2]
                    if event.cancelled:
                        heappop(heap)
                        self._tombstones -= 1
                        continue
                else:
                    event = None
                if entry[0] > limit:
                    break
                if executed >= quota:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway schedule?"
                    )
                heappop(heap)
                self._live -= 1
                if on_event_pop is not None:
                    on_event_pop(entry[0], self._now)
                self._now = entry[0]
                if event is not None:
                    event.fired = True
                    event.callback(*event.args)
                else:
                    entry[2](*entry[3])
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self.run_wall_s += _perf_counter() - wall_start
            self._processed += executed
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        Useful in tests that need fine-grained control.
        """
        heap = self._heap
        on_event_pop = _probes.on_event_pop
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 3:
                event = entry[2]
                if event.cancelled:
                    self._tombstones -= 1
                    continue
                self._live -= 1
                if on_event_pop is not None:
                    on_event_pop(entry[0], self._now)
                self._now = entry[0]
                event.fired = True
                event.callback(*event.args)
            else:
                self._live -= 1
                if on_event_pop is not None:
                    on_event_pop(entry[0], self._now)
                self._now = entry[0]
                entry[2](*entry[3])
            self._processed += 1
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events without running them (keeps the clock)."""
        for entry in self._heap:
            if len(entry) != 3:
                continue  # fire-and-forget entries have no handle to neuter
            event = entry[2]
            # Mark dropped events cancelled so late cancel() calls on their
            # handles stay no-ops (and don't corrupt the live counter).
            event.cancelled = True
            event.callback = _noop
            event.args = ()
            event._on_cancel = None
        self._heap.clear()
        self._live = 0
        self._tombstones = 0

"""Timers and periodic processes layered on the raw event queue.

:class:`Timer` is a restartable one-shot alarm used for ACK timeouts; the
forwarding state machines in :mod:`repro.core.forwarding` arm one per
in-flight transmission. :class:`PeriodicProcess` drives recurring activities
such as per-second failure injection, publisher packet emission, and the
5-minute link-monitoring cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator
from repro.util.errors import SimulationError
from repro.util.validation import require_positive


class Timer:
    """A cancellable, restartable one-shot timer.

    The callback fires once, ``duration`` seconds after :meth:`start`.
    Calling :meth:`start` while armed restarts the countdown; :meth:`cancel`
    disarms it. The timer can be reused any number of times.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._event is not None and not self._event.cancelled

    def start(self, duration: float, *args: Any) -> None:
        """(Re)arm the timer to fire ``duration`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(duration, self._fire, args)

    def cancel(self) -> None:
        """Disarm the timer if it is armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self, args: tuple) -> None:
        self._event = None
        self._callback(*args)


class PeriodicProcess:
    """Invokes a callback every ``period`` seconds of virtual time.

    The first invocation happens at ``start_offset`` (default: one full
    period after :meth:`start`). The process reschedules itself after each
    tick until :meth:`stop` is called or the simulation ends.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        start_offset: Optional[float] = None,
    ) -> None:
        require_positive(period, "period")
        if start_offset is not None and start_offset < 0:
            raise SimulationError(f"start_offset must be >= 0, got {start_offset}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._start_offset = period if start_offset is None else start_offset
        self._event: Optional[Event] = None
        self._ticks = 0

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def running(self) -> bool:
        """Whether the process has a pending tick."""
        return self._event is not None and not self._event.cancelled

    def start(self) -> None:
        """Begin ticking. Idempotent while running."""
        if self.running:
            return
        self._event = self._sim.schedule(self._start_offset, self._tick)

    def stop(self) -> None:
        """Stop ticking. The callback will not fire again until restarted."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        self._ticks += 1
        self._event = self._sim.schedule(self._period, self._tick)
        self._callback()

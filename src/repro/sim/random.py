"""Per-component pseudo-random streams.

A simulation draws randomness for several independent purposes: topology
construction, link-delay sampling, per-transmission loss, per-second failure
injection, workload placement, and publish jitter. Driving them all from one
generator would make every result sensitive to the *order* of draws, so a
change in one subsystem would silently reshuffle another subsystem's
randomness. :class:`RandomStreams` instead derives one child
:class:`numpy.random.Generator` per named purpose from a single root seed
using ``numpy``'s ``SeedSequence.spawn`` machinery, keyed by a stable hash of
the stream name. Identical (seed, name) pairs always yield identical streams.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Factory of named, reproducible random generators.

    >>> streams = RandomStreams(seed=42)
    >>> a1 = streams.get("loss").random()
    >>> a2 = RandomStreams(seed=42).get("loss").random()
    >>> a1 == a2
    True
    >>> streams.get("loss") is streams.get("loss")
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._generators: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family of streams derives from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically.

        Repeated calls with the same name return the same (stateful)
        generator object, so consumers share a stream by sharing a name.
        """
        generator = self._generators.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            generator = np.random.default_rng(sequence)
            self._generators[name] = generator
        return generator

    def fork(self, offset: int) -> "RandomStreams":
        """Derive an independent family for e.g. a replication index."""
        return RandomStreams(seed=self._seed * 1_000_003 + offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._generators)})"

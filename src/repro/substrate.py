"""The substrate contract: what the broker stack needs from its host.

The DCRD protocol logic — :class:`~repro.pubsub.broker.BrokerRuntime`,
:class:`~repro.routing.arq.ArqSender`, the forwarding state machines in
:mod:`repro.core.forwarding` — is specified independently of *where* it
runs. This module names the two seams that make that true:

* :class:`Clock` — a source of time plus cancellable timers. The
  discrete-event kernel (:class:`~repro.sim.engine.Simulator`) advances
  virtual time by popping a calendar queue; the live runtime
  (:class:`~repro.live.clock.WallClock`) reads the asyncio event loop's
  wall clock and arms real timers.
* :class:`Transport` — frame delivery between adjacent brokers. The
  simulated data plane (:class:`~repro.overlay.links.OverlayNetwork`)
  models loss and propagation on a calendar queue; the live transport
  (:class:`~repro.live.transport.LiveTransport`) moves length-prefixed
  frames over asyncio TCP sockets.

Both seams are *structural* (duck-typed): the hot paths predate the
protocols and bind concrete attributes directly, so the sim
implementations are untouched — zero behavioural drift, pinned by the
32-cell fingerprint matrix in
``tests/integration/test_fast_path_equivalence.py``. Two conventions make
the duck typing work:

1. **``_now`` is part of the Clock contract.** The data-plane hot paths
   read ``ctx.sim._now`` (one attribute load instead of a property call).
   A non-kernel clock must expose ``_now`` — the live clock aliases it to
   the ``now`` property.
2. **Kernel internals are opt-in.** Trusted hot paths (the ARQ timer
   push, the overlay's delivery push) inline the kernel's heap access via
   :meth:`~repro.sim.engine.Simulator.calendar_kernel`. A clock that does
   not offer ``calendar_kernel`` gets the portable
   ``schedule()``/``cancel()`` path instead; timer handles then only need
   ``seq``, ``time`` and ``cancel()`` (:class:`TimerHandle`).

The differential conformance suite
(``tests/integration/test_live_conformance.py``) is the executable form of
this contract: the same scripted scenarios run on both substrates and must
agree on delivered-pair sets, post-dedup at-most-once delivery, and ACK
timer settlement, with the sanitizer clean in both modes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Protocol, runtime_checkable


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable scheduled callback.

    ``seq`` is a token unique within the owning clock — the probe bus uses
    it to correlate ``timer_started``/``timer_cancelled``/``timer_fired``
    events; ``time`` is the absolute (clock-local) deadline.
    """

    seq: int
    time: float

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        ...


@runtime_checkable
class Clock(Protocol):
    """Time plus cancellable timers — the substrate's scheduling seam.

    Implementations: :class:`~repro.sim.engine.Simulator` (virtual
    event time) and :class:`~repro.live.clock.WallClock` (asyncio wall
    time). ``_now`` must stay readable as a plain attribute access (see
    module docstring); kernel implementations additionally offer
    ``calendar_kernel()`` for the inlined hot paths.
    """

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or since runtime start)."""
        ...

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` seconds; returns a handle."""
        ...

    def schedule_fire(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Frame delivery between adjacent brokers — the substrate's data seam.

    Implementations: :class:`~repro.overlay.links.OverlayNetwork`
    (simulated links) and :class:`~repro.live.transport.LiveTransport`
    (asyncio TCP). Beyond this minimal surface, transports may offer the
    optional fast-path hooks the stack probes with ``getattr``:
    ``send_data``/``send_ack`` (kind-specialised sends),
    ``attach_ack`` (dedicated ACK sinks),
    ``register_ack_loss_observer``/``ack_round_trip`` (latent ARQ timer
    elision — kernel transports only), and
    ``link_success_probability`` (the link monitor's analytic estimate).
    """

    def attach(self, node: int, handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(sender, frame)`` as *node*'s frame sink."""
        ...

    def detach(self, node: int) -> None:
        """Remove *node*'s handlers; frames to it are silently dropped."""
        ...

    def transmit(self, src: int, dst: int, frame: Any, kind: Any) -> Any:
        """Send *frame* from *src* to the adjacent *dst*."""
        ...


def substrate_of(clock: Any) -> str:
    """Classify *clock* for diagnostics: ``"kernel"`` or ``"portable"``.

    The broker stack itself never branches on this — hot paths probe for
    ``calendar_kernel`` directly — but launchers and tests use it to label
    runs.
    """
    return "kernel" if hasattr(clock, "calendar_kernel") else "portable"


__all__: Iterable[str] = (
    "Clock",
    "TimerHandle",
    "Transport",
    "substrate_of",
)

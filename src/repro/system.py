"""The embedding façade: use DCRD as a library, not an experiment harness.

:class:`PubSubSystem` wraps the whole stack — simulator, overlay, hazard
models, a routing strategy, broker runtimes — behind the API a downstream
application would expect from a pub/sub messaging layer:

>>> import numpy as np
>>> from repro import full_mesh
>>> from repro.system import PubSubSystem
>>> system = PubSubSystem.build(num_nodes=6, seed=7)
>>> system.add_topic("tracks", publisher=0)
>>> received = []
>>> system.subscribe("tracks", node=3, deadline=0.5,
...                  callback=lambda d: received.append(d.payload))
>>> _ = system.publish("tracks", payload={"lat": 44.97})
>>> system.run(until=1.0)
>>> received
[{'lat': 44.97}]

Topics are named; payloads ride in a side table keyed by message id (the
wire frames stay payload-free and immutable); subscriber callbacks fire on
first delivery with a :class:`Delivery` record. Publishing can be manual
(:meth:`publish`, at the current virtual time) or periodic
(:meth:`start_publisher`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import MetricsSummary, summarize
from repro.ordering.plan import OrderingPlan
from repro.overlay.failures import FailureSchedule
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.overlay.topology import Topology, full_mesh, random_regular
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.endpoints import PublisherProcess
from repro.pubsub.messages import next_message_id
from repro.pubsub.topics import Subscription, TopicSpec, Workload
from repro.routing.base import ProtocolParams, RoutingStrategy, RuntimeContext
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class Delivery:
    """What a subscriber callback receives."""

    topic: str
    msg_id: int
    subscriber: int
    publish_time: float
    delivery_time: float
    payload: Any

    @property
    def delay(self) -> float:
        """End-to-end delay of the delivered message."""
        return self.delivery_time - self.publish_time


class PubSubSystem:
    """A ready-to-use DCRD pub/sub deployment on a simulated overlay."""

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        loss_rate: float = 1e-4,
        failure_probability: float = 0.0,
        strategy: str = "DCRD",
        m: int = 1,
        ack_timeout_factor: float = 2.0,
        monitor_period: float = 300.0,
        ordering: Optional[str] = None,
    ) -> None:
        # Imported here to avoid a cycle (runner imports strategies which
        # import the routing base this module also uses).
        from repro.experiments.runner import STRATEGIES

        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; known: {sorted(STRATEGIES)}"
            )
        self.topology = topology
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        failures = (
            FailureSchedule(topology, failure_probability, seed=seed)
            if failure_probability > 0.0
            else None
        )
        self.network = OverlayNetwork(
            self.sim, topology, self.streams, loss_rate=loss_rate, failures=failures
        )
        self.monitor = LinkMonitor(topology, self.network, self.streams)
        self.metrics = MetricsCollector()
        self.metrics.add_observer(self._on_delivery)
        self.workload = Workload(topics=[])
        # Embedded systems stay alive indefinitely, so the plan's stamper
        # is activated for the system's whole lifetime; call close() (or
        # rely on a fresh system replacing the module-level stamper) when
        # the system is done.
        self.ordering = OrderingPlan.from_text(ordering)
        self.ctx = RuntimeContext(
            sim=self.sim,
            topology=topology,
            network=self.network,
            monitor=self.monitor,
            workload=self.workload,
            metrics=self.metrics,
            streams=self.streams,
            params=ProtocolParams(m=m, ack_timeout_factor=ack_timeout_factor),
            ordering=self.ordering,
        )
        if self.ordering is not None:
            self.ordering.activate()
        self.strategy: RoutingStrategy = STRATEGIES[strategy](self.ctx)
        self.brokers = [BrokerRuntime(n, self.ctx, self.strategy) for n in topology.nodes]

        def monitor_cycle() -> None:
            self.monitor.refresh()
            self.strategy.on_monitor_refresh()

        self._monitor_process = PeriodicProcess(self.sim, monitor_period, monitor_cycle)
        self._monitor_process.start()

        self._topic_ids: Dict[str, int] = {}
        self._topic_names: Dict[int, str] = {}
        self._callbacks: Dict[Tuple[int, int], Callable[[Delivery], None]] = {}
        self._payloads: Dict[int, Any] = {}
        self._publish_times: Dict[int, float] = {}
        self._publishers: List[PublisherProcess] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        num_nodes: int = 20,
        degree: Optional[int] = None,
        seed: int = 0,
        **kwargs: Any,
    ) -> "PubSubSystem":
        """Build on a generated overlay: full mesh, or random degree-k."""
        rng = RandomStreams(seed).get("topology")
        if degree is None:
            topology = full_mesh(num_nodes, rng)
        else:
            topology = random_regular(num_nodes, degree, rng)
        return cls(topology, seed=seed, **kwargs)

    # ------------------------------------------------------------------
    # Topic management
    # ------------------------------------------------------------------
    def add_topic(self, name: str, publisher: int, publish_interval: float = 1.0) -> None:
        """Create a named topic published from broker *publisher*."""
        require(name not in self._topic_ids, f"topic {name!r} already exists")
        require(publisher in self.topology.nodes, f"no broker {publisher}")
        topic_id = len(self._topic_ids)
        self._topic_ids[name] = topic_id
        self._topic_names[topic_id] = name
        self.workload.topics.append(
            TopicSpec(
                topic=topic_id,
                publisher=publisher,
                subscriptions=(),
                publish_interval=publish_interval,
                phase=0.0,
            )
        )
        self.workload.version += 1

    def subscribe(
        self,
        topic: str,
        node: int,
        deadline: float,
        callback: Optional[Callable[[Delivery], None]] = None,
    ) -> None:
        """Attach a subscriber (and optional delivery callback) to *topic*."""
        require_positive(deadline, "deadline")
        topic_id = self._topic_ids[topic]
        subscription = Subscription(node=node, deadline=deadline)
        self.workload.add_subscription(topic_id, subscription)
        self.strategy.on_subscription_added(topic_id, subscription)
        if callback is not None:
            self._callbacks[(topic_id, node)] = callback

    def unsubscribe(self, topic: str, node: int) -> None:
        """Detach a subscriber from *topic*."""
        topic_id = self._topic_ids[topic]
        self.workload.remove_subscription(topic_id, node)
        self.strategy.on_subscription_removed(topic_id, node)
        self._callbacks.pop((topic_id, node), None)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, topic: str, payload: Any = None) -> int:
        """Publish one message now; returns its message id."""
        topic_id = self._topic_ids[topic]
        spec = self.workload.topic(topic_id)
        require(
            bool(spec.subscriptions), f"topic {topic!r} has no subscribers"
        )
        msg_id = next_message_id()
        now = self.sim.now
        self._payloads[msg_id] = payload
        self._publish_times[msg_id] = now
        deadlines = {sub.node: sub.deadline for sub in spec.subscriptions}
        self.metrics.expect(msg_id, topic_id, now, deadlines)
        self.strategy.publish(spec, msg_id)
        return msg_id

    def start_publisher(self, topic: str, stop_time: Optional[float] = None) -> None:
        """Publish periodically at the topic's configured interval."""
        topic_id = self._topic_ids[topic]
        spec = self.workload.topic(topic_id)
        publisher = PublisherProcess(self.ctx, self.strategy, spec, stop_time=stop_time)
        publisher.start()
        self._publishers.append(publisher)

    # ------------------------------------------------------------------
    # Execution & results
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Advance virtual time (drains the queue when *until* is None)."""
        self.sim.run(until=until)

    def close(self) -> None:
        """Flush hold-back state and release the ordering stamper hook."""
        if self.ordering is not None:
            self.ordering.flush()
            self.ordering.deactivate()

    def summary(self) -> MetricsSummary:
        """Aggregate delivery metrics so far."""
        return summarize(
            self.metrics,
            self.network.stats.data_sent(),
            strategy=self.strategy.name,
            data_volume=self.network.stats.data_volume(),
        )

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    # ------------------------------------------------------------------
    def _on_delivery(self, msg_id: int, subscriber: int, time: float) -> None:
        outcome = self.metrics.outcome(msg_id, subscriber)
        callback = self._callbacks.get((outcome.topic, subscriber))
        if callback is None:
            return
        callback(
            Delivery(
                topic=self._topic_names[outcome.topic],
                msg_id=msg_id,
                subscriber=subscriber,
                publish_time=outcome.publish_time,
                delivery_time=time,
                payload=self._payloads.get(msg_id),
            )
        )

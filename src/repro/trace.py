"""FrameTracer: opt-in hop-by-hop lifecycle tracing for the data plane.

The paper's whole argument (Theorem 1, §III) is about *where delay accrues
per hop* — ACK timeouts, failovers to the next sending-list candidate,
upstream bounces — yet aggregate metrics only show end-to-end totals. This
module records the full per-frame journey so any delivered (message,
subscriber) pair can be decomposed hop by hop.

The design follows :mod:`repro.sanity` exactly:

* The tracer is an observer of the :mod:`repro.probes` bus —
  :func:`install` attaches it (and mirrors it into the legacy
  :data:`ACTIVE` slot). Hook sites read the bus's compiled per-family
  slots, ``None`` when nothing subscribes — one module-attribute load and
  one identity comparison per hook when off, so disabled runs stay
  bit-identical to the untraced fast path (the fingerprint suite pins
  this).
* All hooks are **observation-only**: the tracer consumes no randomness
  and schedules no events, so an enabled run executes the identical event
  sequence — only ``trace.*`` perf counters differ in the summary.

Recorded event kinds (one :class:`TraceEvent` each, ring-buffered):

==============  =========================================================
kind            meaning
==============  =========================================================
publish         a root copy of a message was created at its origin
transmit        a copy was handed to a link direction (per attempt)
link_drop       a copy was lost — at departure (link failure, random
                loss, sender/receiver down) or at arrival (receiver
                crashed mid-flight, no handler attached)
enqueue         a copy had to wait on a busy finite-capacity link
arrive          a copy reached the receiving broker's handler
dedup_discard   a broker suppressed an already-seen transfer
deliver         a broker delivered the first copy to a local subscriber
ack             the sender matched a hop-by-hop ACK to an outstanding copy
ack_timeout     an ACK timer fired (info says whether a retry follows)
failover        DCRD marked a next hop failed and re-dispatched
bounce          a copy was sent back to its upstream broker (§III-D)
expire          the EDF overload policy discarded a queued copy
abandon         the strategy gave a destination up
custody         the persistency store took a pair into custody or forked
                a fresh redelivery copy from the stored frame
order_hold      a delivery pipeline buffered a frame behind an ordering
                gap (info: guarantee level)
order_release   a pipeline released a frame to the terminal delivery
                stage (info: level, reason, hold-back latency)
order_stall     the hold-back watchdog skipped a gap / flagged a
                straggler (info: level plus pipeline-specific facts)
==============  =========================================================

On top of the raw stream, :meth:`FrameTracer.journey` reconstructs the
hop chain of any delivered pair (via the parent lineage recorded when
:meth:`~repro.pubsub.messages.PacketFrame.forwarded` forks a copy),
:meth:`FrameTracer.delay_breakdown` splits its end-to-end delay into
timeout-wait / retransmission / queueing / transmission components that
sum *exactly* to the recorded delivery delay, and
:meth:`FrameTracer.retransmission_tree` renders the copy tree of one
message. :meth:`FrameTracer.export_jsonl` /
:func:`load_jsonl` round-trip the stream, and every query works on a
loaded trace (transmit events embed their parent transfer id).

The module deliberately imports only :mod:`repro.util.errors` and the
leaf :mod:`repro.probes` bus, so every instrumented layer — the kernel,
the frame constructors, the sanitizer — can import it without cycles.
"""

from __future__ import annotations

import itertools
import json
import math
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro import probes as _probes
from repro.util.errors import ReproError

#: The installed tracer, or ``None`` (the default). Kept for
#: compatibility and cross-observer queries (the sanitizer reads it to
#: attach trace excerpts to violations); the hook sites themselves read
#: the compiled :mod:`repro.probes` slots instead.
ACTIVE: Optional["FrameTracer"] = None

# Event kinds.
PUBLISH = "publish"
TRANSMIT = "transmit"
LINK_DROP = "link_drop"
ENQUEUE = "enqueue"
ARRIVE = "arrive"
DEDUP_DISCARD = "dedup_discard"
DELIVER = "deliver"
ACK = "ack"
ACK_TIMEOUT = "ack_timeout"
FAILOVER = "failover"
BOUNCE = "bounce"
EXPIRE = "expire"
ABANDON = "abandon"
CUSTODY = "custody"
ORDER_HOLD = "order_hold"
ORDER_RELEASE = "order_release"
ORDER_STALL = "order_stall"

#: Default ring-buffer capacity (events). Large enough for every test and
#: CLI-scale run; overflowing runs keep the newest events and count the
#: evicted ones in ``trace.events_dropped``.
DEFAULT_CAPACITY = 1 << 20

#: JSONL schema version written to the meta line.
JSONL_VERSION = 1


class TraceError(ReproError):
    """A trace query could not be answered from the recorded events."""


class TraceEvent:
    """One recorded lifecycle event.

    ``peer`` is the other end of the interaction (the receiving broker of
    a transmit, the acking neighbour of an ack, the failed hop of a
    failover, ...) or ``-1`` when there is none. ``info`` carries
    kind-specific extras (see docs/OBSERVABILITY.md for the schema).
    """

    __slots__ = ("seq", "t", "kind", "msg", "transfer", "node", "peer", "info")

    def __init__(
        self,
        seq: int,
        t: float,
        kind: str,
        msg: int,
        transfer: int,
        node: int,
        peer: int = -1,
        info: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.seq = seq
        self.t = t
        self.kind = kind
        self.msg = msg
        self.transfer = transfer
        self.node = node
        self.peer = peer
        self.info = info

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable flat view (the JSONL line payload)."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "msg": self.msg,
            "transfer": self.transfer,
            "node": self.node,
            "peer": self.peer,
        }
        if self.info:
            record["info"] = self.info
        return record

    def format(self) -> str:
        """One human-readable line (used by trace excerpts)."""
        parts = [
            f"t={self.t:.6f}",
            f"{self.kind:<13}",
            f"node={self.node}",
        ]
        if self.peer >= 0:
            parts.append(f"peer={self.peer}")
        parts.append(f"msg={self.msg}")
        if self.transfer >= 0:
            parts.append(f"transfer={self.transfer}")
        if self.info:
            extras = " ".join(f"{k}={self.info[k]!r}" for k in sorted(self.info))
            parts.append(extras)
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.format()})"


@dataclass(frozen=True)
class Hop:
    """One hop of a reconstructed journey (one transfer = one copy).

    ``first_tx``/``last_tx`` bracket every link attempt of the copy;
    ``send_tx`` is the attempt that actually produced the first arrival
    (the first attempt that survived the departure hazards), so
    ``send_tx - first_tx`` is pure retransmission wait. ``queueing`` is
    the time the arriving attempt spent waiting on a busy link.
    """

    src: int
    dst: int
    transfer: int
    first_tx: float
    last_tx: float
    send_tx: float
    arrival: float
    attempts: int
    prop: float
    queueing: float


@dataclass(frozen=True)
class Journey:
    """The reconstructed hop chain of one delivered (msg, subscriber) pair.

    ``chain`` lists the brokers the delivering copy's lineage traversed,
    in order — upstream bounces legitimately revisit brokers, so entries
    may repeat. ``complete`` is ``False`` when the chain does not start at
    the message origin (e.g. a persistency-mode redelivery that re-enters
    Algorithm 2 at the storing broker).
    """

    msg: int
    subscriber: int
    origin: int
    chain: Tuple[int, ...]
    hops: Tuple[Hop, ...]
    publish_time: float
    delivery_time: float
    complete: bool

    @property
    def total_delay(self) -> float:
        """End-to-end delay of the delivering copy chain."""
        return self.delivery_time - self.publish_time


@dataclass(frozen=True)
class DelayBreakdown:
    """End-to-end delay split into its per-hop mechanisms.

    ``transmission`` is computed as the correctly-rounded remainder
    ``total - timeout_wait - retransmission - queueing``, so
    :meth:`components_sum` — the correctly-rounded (``math.fsum``) sum
    of the four components — equals ``total`` *exactly* (``==``, no
    float residue); it equals the accumulated propagation plus
    serialisation time of the delivering attempts.
    """

    total: float
    transmission: float
    queueing: float
    timeout_wait: float
    retransmission: float

    def components_sum(self) -> float:
        """Correctly-rounded sum of the four components (== ``total``)."""
        return math.fsum(
            (self.transmission, self.queueing, self.timeout_wait, self.retransmission)
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "total": self.total,
            "transmission": self.transmission,
            "queueing": self.queueing,
            "timeout_wait": self.timeout_wait,
            "retransmission": self.retransmission,
        }


def _nudge_remainder(
    total: float, queueing: float, timeout_wait: float, retransmission: float
) -> Tuple[float, bool]:
    """Correctly-rounded remainder, nudged until ``fsum`` lands on *total*.

    The remainder is the correctly-rounded value of the exact difference,
    so ``math.fsum`` over the four components usually lands back on
    ``total`` exactly: the representation error of the remainder is below
    half an ulp of ``total``, inside fsum's final rounding. (Plain
    left-to-right ``+`` cannot guarantee this — its rounding granularity
    can straddle ``total`` without ever hitting it.) Returns the remainder
    and whether exactness was reached.
    """
    transmission = math.fsum((total, -queueing, -timeout_wait, -retransmission))
    for _ in range(4):
        residual = total - math.fsum(
            (transmission, queueing, timeout_wait, retransmission)
        )
        if residual == 0.0:
            return transmission, True
        transmission = math.nextafter(
            transmission, math.inf if residual > 0.0 else -math.inf
        )
    return transmission, False


def _exact_components(
    total: float, queueing: float, timeout_wait: float, retransmission: float
) -> Tuple[float, float, float, float]:
    """Components ``(transmission, queueing, timeout_wait, retransmission)``
    whose ``math.fsum`` equals *total* exactly.

    ``transmission`` is solved as the correctly-rounded remainder. In rare
    worlds the exact sum sits precisely on a round-half-to-even tie between
    two doubles straddling ``total``: stepping the remainder by one ulp
    then jumps the rounded sum *over* ``total`` without ever hitting it.
    When that happens the tie is broken by moving the smallest-magnitude
    nonzero measured component one ulp: that component is at most
    ``total / 2``, so its ulp is at most half of ``total``'s and the
    shifted sum rounds exactly. All adjustments are ≤ 1 ulp — far below
    the simulation's timing granularity.
    """
    transmission, exact = _nudge_remainder(
        total, queueing, timeout_wait, retransmission
    )
    if not exact:
        measured = [queueing, timeout_wait, retransmission]
        nonzero = [i for i, v in enumerate(measured) if v != 0.0]
        if nonzero:
            smallest = min(nonzero, key=lambda i: abs(measured[i]))
            for direction in (-math.inf, math.inf):
                trial = list(measured)
                trial[smallest] = math.nextafter(measured[smallest], direction)
                transmission, exact = _nudge_remainder(total, *trial)
                if exact:
                    queueing, timeout_wait, retransmission = trial
                    break
    return transmission, queueing, timeout_wait, retransmission


class FrameTracer:
    """Structured per-frame lifecycle recorder; install via :data:`ACTIVE`.

    All hooks are observation-only (no RNG draws, no scheduling). Events
    live in a bounded ring buffer (``capacity``); parent lineage
    (transfer -> parent transfer) is a plain dict and is never evicted —
    it is two ints per copy and journeys need the full ancestry.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise TraceError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = itertools.count()
        #: transfer_id -> parent transfer_id (fed by PacketFrame.forwarded).
        self._parents: Dict[int, int] = {}
        # Aggregate counters surfaced as trace.* perf entries.
        self.events_recorded = 0
        self.events_dropped = 0
        self.kind_counts: Dict[str, int] = {}
        #: Kernel events popped while this tracer was installed.
        self.sim_events = 0
        # Query index caches, invalidated on every new record.
        self._index_stamp = -1
        self._publish_by_msg: Dict[int, TraceEvent] = {}
        self._deliver_by_pair: Dict[Tuple[int, int], TraceEvent] = {}
        self._tx_by_transfer: Dict[int, List[TraceEvent]] = {}
        self._fate_by_transfer: Dict[int, List[TraceEvent]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(
        self,
        t: float,
        kind: str,
        msg: int,
        transfer: int,
        node: int,
        peer: int = -1,
        info: Optional[Dict[str, Any]] = None,
    ) -> None:
        events = self._events
        if len(events) == self.capacity:
            self.events_dropped += 1
        self.events_recorded += 1
        counts = self.kind_counts
        counts[kind] = counts.get(kind, 0) + 1
        events.append(
            TraceEvent(next(self._seq), t, kind, msg, transfer, node, peer, info)
        )

    # -- kernel (sim/engine.py) -----------------------------------------
    def on_event_pop(self, t: float, now: float) -> None:
        """The kernel popped an event (counted, not buffered)."""
        self.sim_events += 1

    # -- frame constructors (pubsub/messages.py) ------------------------
    def on_publish(self, frame: Any) -> None:
        """A root copy was created at the origin (PacketFrame.fresh)."""
        info: Dict[str, Any] = {
            "topic": frame.topic,
            "dests": sorted(frame.destinations),
        }
        if frame.fragments_needed > 0:
            info["fragment"] = frame.fragment_index
        self._record(
            frame.publish_time,
            PUBLISH,
            frame.msg_id,
            frame.transfer_id,
            frame.origin,
            info=info,
        )

    def on_fork(self, parent_transfer: int, child_transfer: int) -> None:
        """A copy was forked for the next hop (PacketFrame.forwarded)."""
        self._parents[child_transfer] = parent_transfer

    # -- overlay links (overlay/links.py) -------------------------------
    def on_transmit(
        self,
        t: float,
        src: int,
        dst: int,
        frame: Any,
        survived: bool,
        cause: Optional[str],
        prop: float,
        queue: Optional[float],
    ) -> None:
        """A DATA frame was handed to the (src, dst) link direction.

        ``queue`` is the time the copy will wait on the busy direction
        before its serialisation starts (0.0 for infinite-capacity links;
        ``None`` when the EDF server decides later). A departure-time loss
        additionally records a ``link_drop`` event with its cause.
        """
        transfer = getattr(frame, "transfer_id", None)
        if transfer is None:
            return  # tests transmit bare objects; nothing to track
        info: Dict[str, Any] = {
            "parent": self._parents.get(transfer, -1),
            "prop": prop,
        }
        if queue is not None:
            info["queue"] = queue
        if not survived:
            info["cause"] = cause
        self._record(t, TRANSMIT, frame.msg_id, transfer, src, dst, info)
        if not survived:
            self._record(
                t, LINK_DROP, frame.msg_id, transfer, src, dst, {"cause": cause}
            )

    def on_enqueue(
        self, t: float, src: int, dst: int, frame: Any, wait: Optional[float],
        qlen: Optional[int] = None,
    ) -> None:
        """A DATA frame had to wait on a busy finite-capacity direction."""
        transfer = getattr(frame, "transfer_id", None)
        if transfer is None:
            return
        info: Dict[str, Any] = {}
        if wait is not None:
            info["wait"] = wait
        if qlen is not None:
            info["qlen"] = qlen
        self._record(t, ENQUEUE, frame.msg_id, transfer, src, dst, info or None)

    def on_arrive(self, t: float, src: int, dst: int, frame: Any) -> None:
        """A DATA frame reached the receiving broker's handler."""
        transfer = getattr(frame, "transfer_id", None)
        if transfer is None:
            return
        self._record(t, ARRIVE, frame.msg_id, transfer, dst, src)

    def on_arrival_drop(
        self, t: float, src: int, dst: int, frame: Any, cause: str
    ) -> None:
        """A DATA frame was dropped at arrival (receiver down, no handler)."""
        transfer = getattr(frame, "transfer_id", None)
        if transfer is None:
            return
        self._record(
            t, LINK_DROP, frame.msg_id, transfer, dst, src,
            {"cause": cause, "at": "arrival"},
        )

    def on_expire(self, t: float, src: int, dst: int, frame: Any) -> None:
        """The EDF overload policy discarded a queued DATA frame."""
        transfer = getattr(frame, "transfer_id", None)
        if transfer is None:
            return
        self._record(t, EXPIRE, frame.msg_id, transfer, src, dst)

    # -- broker runtime (pubsub/broker.py) ------------------------------
    def on_dedup_discard(self, t: float, node: int, sender: int, frame: Any) -> None:
        """A broker suppressed an already-seen transfer (lost-ACK echo)."""
        self._record(t, DEDUP_DISCARD, frame.msg_id, frame.transfer_id, node, sender)

    def on_deliver(self, t: float, node: int, frame: Any) -> None:
        """The first copy of a (msg, subscriber) pair was delivered locally."""
        self._record(
            t, DELIVER, frame.msg_id, frame.transfer_id, node,
            info={"hops": len(frame.routing_path)},
        )

    # -- ARQ (routing/arq.py) -------------------------------------------
    def on_ack(self, t: float, node: int, sender: int, frame: Any) -> None:
        """The sender matched a hop-by-hop ACK to an outstanding copy."""
        self._record(t, ACK, frame.msg_id, frame.transfer_id, node, sender)

    def on_ack_timeout(
        self, t: float, src: int, dst: int, frame: Any, attempts: int,
        will_retry: bool,
    ) -> None:
        """An ACK timer fired; ``will_retry`` says if a retransmit follows."""
        self._record(
            t, ACK_TIMEOUT, frame.msg_id, frame.transfer_id, src, dst,
            {"attempts": attempts, "will_retry": will_retry},
        )

    # -- DCRD forwarding (core/forwarding.py) ---------------------------
    def on_failover(self, t: float, node: int, failed_hop: int, frame: Any) -> None:
        """A hop exhausted its m-transmission budget; re-dispatching."""
        self._record(t, FAILOVER, frame.msg_id, frame.transfer_id, node, failed_hop)

    def on_bounce(self, t: float, node: int, upstream: int, copy: Any) -> None:
        """A copy is being sent back to its upstream broker (§III-D)."""
        self._record(t, BOUNCE, copy.msg_id, copy.transfer_id, node, upstream)

    def on_abandon(self, t: float, node: int, frame: Any, subscriber: int) -> None:
        """The strategy gave up on one destination of a copy."""
        self._record(
            t, ABANDON, frame.msg_id, frame.transfer_id, node,
            info={"subscriber": subscriber},
        )

    # -- persistency custody (extensions/persistence.py) ----------------
    def on_custody(
        self,
        t: float,
        node: int,
        frame: Any,
        subscriber: int,
        action: str,
        fresh_transfer: int = -1,
    ) -> None:
        """The persistency store took custody of (or redelivered) a pair.

        ``action`` is ``"stored"`` when the strategy persisted the frame
        instead of giving the subscriber up, ``"redelivered"`` when a
        fresh copy (``fresh_transfer``) was forked from the stored frame
        for a retry. The fresh copy is linked into the parent lineage so
        :meth:`journey` can walk a redelivered pair's chain back through
        the storing broker to the original publish.
        """
        info: Dict[str, Any] = {"subscriber": subscriber, "action": action}
        if fresh_transfer >= 0:
            info["fresh"] = fresh_transfer
            self._parents[fresh_transfer] = frame.transfer_id
        self._record(
            t, CUSTODY, frame.msg_id, frame.transfer_id, node, info=info
        )

    # -- ordering pipelines (ordering/pipeline.py) ----------------------
    def on_order_hold(self, t: float, node: int, frame: Any, level: str) -> None:
        """A delivery pipeline buffered a frame behind an ordering gap."""
        self._record(
            t, ORDER_HOLD, frame.msg_id, frame.transfer_id, node,
            info={"level": level},
        )

    def on_order_release(
        self,
        t: float,
        node: int,
        frame: Any,
        level: str,
        reason: str,
        held_for: float,
    ) -> None:
        """A pipeline released a frame to the terminal delivery stage.

        ``held`` (recorded only when the frame actually waited) is the
        hold-back latency — the tracer's visibility into what the
        guarantee cost this delivery; :meth:`holdback_latencies`
        aggregates it per delivered pair.
        """
        info: Dict[str, Any] = {"level": level, "reason": reason}
        if held_for > 0.0:
            info["held"] = held_for
        self._record(
            t, ORDER_RELEASE, frame.msg_id, frame.transfer_id, node, info=info
        )

    def on_order_stall(
        self, t: float, node: int, level: str, info: Any
    ) -> None:
        """The hold-back watchdog skipped a gap or flagged a straggler."""
        payload: Dict[str, Any] = {"level": level}
        if info:
            payload.update(info)
        self._record(t, ORDER_STALL, -1, -1, node, info=payload)

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """All buffered events, oldest first."""
        return list(self._events)

    def events_for(
        self,
        msg_id: Optional[int] = None,
        transfer_id: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Buffered events filtered by message and/or transfer id."""
        return [
            e
            for e in self._events
            if (msg_id is None or e.msg == msg_id)
            and (transfer_id is None or e.transfer == transfer_id)
        ]

    def parent(self, transfer_id: int) -> int:
        """The transfer this copy was forked from (-1 for root copies)."""
        return self._parents.get(transfer_id, -1)

    # ------------------------------------------------------------------
    # Query index
    # ------------------------------------------------------------------
    def _index(self) -> None:
        """(Re)build the query caches when the buffer changed."""
        stamp = self.events_recorded
        if stamp == self._index_stamp:
            return
        self._index_stamp = stamp
        publish: Dict[int, TraceEvent] = {}
        deliver: Dict[Tuple[int, int], TraceEvent] = {}
        tx: Dict[int, List[TraceEvent]] = {}
        fate: Dict[int, List[TraceEvent]] = {}
        for event in self._events:
            kind = event.kind
            if kind == TRANSMIT:
                tx.setdefault(event.transfer, []).append(event)
            elif kind == ARRIVE or kind == EXPIRE:
                fate.setdefault(event.transfer, []).append(event)
            elif kind == LINK_DROP:
                if event.info is not None and event.info.get("at") == "arrival":
                    fate.setdefault(event.transfer, []).append(event)
            elif kind == PUBLISH:
                publish.setdefault(event.msg, event)
            elif kind == DELIVER:
                deliver.setdefault((event.msg, event.node), event)
        self._publish_by_msg = publish
        self._deliver_by_pair = deliver
        self._tx_by_transfer = tx
        self._fate_by_transfer = fate

    def _hop(self, transfer: int) -> Hop:
        """Resolve one chain copy into a :class:`Hop` record."""
        attempts = self._tx_by_transfer[transfer]
        src = attempts[0].node
        dst = attempts[0].peer
        surviving = [
            e for e in attempts if e.info is None or "cause" not in e.info
        ]
        fates = self._fate_by_transfer.get(transfer, [])
        arrival_index = -1
        arrival: Optional[TraceEvent] = None
        for index, event in enumerate(fates):
            if event.kind == ARRIVE:
                arrival_index = index
                arrival = event
                break
        if arrival is None:
            raise TraceError(
                f"transfer {transfer} has no recorded arrival — the ring "
                f"buffer may have evicted it (capacity={self.capacity}, "
                f"dropped={self.events_dropped})"
            )
        if arrival_index >= len(surviving):
            raise TraceError(
                f"transfer {transfer}: arrival outcomes do not match "
                f"surviving attempts (trace incomplete?)"
            )
        send = surviving[arrival_index]
        info = send.info or {}
        prop = float(info.get("prop", 0.0))
        queue = info.get("queue")
        if queue is None:
            # EDF-queued attempt: the wait is not known at transmit time;
            # derive it from the arrival instant (clamped — pure float
            # noise must not surface as negative queueing).
            queue = arrival.t - send.t - prop
            if queue < 0.0:
                queue = 0.0
        return Hop(
            src=src,
            dst=dst,
            transfer=transfer,
            first_tx=attempts[0].t,
            last_tx=attempts[-1].t,
            send_tx=send.t,
            arrival=arrival.t,
            attempts=len(attempts),
            prop=prop,
            queueing=float(queue),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def journey(self, msg_id: int, subscriber: int) -> Journey:
        """Reconstruct the hop chain that delivered *msg_id* to *subscriber*.

        Walks the delivering copy's parent lineage back to the root and
        resolves each ancestor into a :class:`Hop`. Raises
        :class:`TraceError` when the pair has no recorded delivery or the
        chain cannot be resolved (e.g. evicted by the ring buffer).
        """
        self._index()
        deliver = self._deliver_by_pair.get((msg_id, subscriber))
        if deliver is None:
            publish = self._publish_by_msg.get(msg_id)
            if publish is not None and publish.node == subscriber:
                # Publisher-local delivery: the message never became a
                # frame for this subscriber.
                return Journey(
                    msg=msg_id,
                    subscriber=subscriber,
                    origin=publish.node,
                    chain=(subscriber,),
                    hops=(),
                    publish_time=publish.t,
                    delivery_time=publish.t,
                    complete=True,
                )
            raise TraceError(
                f"no delivery of msg {msg_id} to subscriber {subscriber} "
                f"in the trace"
            )
        chain_transfers: List[int] = []
        transfer = deliver.transfer
        tx = self._tx_by_transfer
        parents = self._parents
        # Walk the full ancestry; ancestors without transmit events (the
        # virtual root copy, a stored frame redelivered in place) are
        # skipped rather than terminating the walk, so custody
        # redeliveries chain back through the storing broker to the
        # origin. Parent transfer ids strictly decrease, so this
        # terminates.
        while transfer >= 0:
            if transfer in tx:
                chain_transfers.append(transfer)
            transfer = parents.get(transfer, -1)
        if not chain_transfers:
            raise TraceError(
                f"delivering transfer {deliver.transfer} of msg {msg_id} "
                f"has no transmit events in the trace"
            )
        chain_transfers.reverse()
        hops = tuple(self._hop(t) for t in chain_transfers)
        for previous, current in zip(hops, hops[1:]):
            if previous.dst != current.src:
                raise TraceError(
                    f"journey of msg {msg_id} -> {subscriber} is not "
                    f"contiguous: hop into {previous.dst} followed by hop "
                    f"out of {current.src}"
                )
        if hops[-1].dst != subscriber:
            raise TraceError(
                f"journey of msg {msg_id} ends at broker {hops[-1].dst}, "
                f"not at subscriber {subscriber}"
            )
        chain = (hops[0].src,) + tuple(hop.dst for hop in hops)
        publish = self._publish_by_msg.get(msg_id)
        if publish is not None:
            origin = publish.node
            publish_time = publish.t
        else:
            origin = hops[0].src
            publish_time = hops[0].first_tx
        return Journey(
            msg=msg_id,
            subscriber=subscriber,
            origin=origin,
            chain=chain,
            hops=hops,
            publish_time=publish_time,
            delivery_time=deliver.t,
            complete=chain[0] == origin,
        )

    def delay_breakdown(self, msg_id: int, subscriber: int) -> DelayBreakdown:
        """Split the pair's end-to-end delay into its mechanisms.

        Per hop ``i`` with parent-arrival ``r`` (publish time for the
        first hop), first attempt ``f``, arriving attempt ``s`` and
        arrival ``a``:

        * ``timeout_wait``  += ``f - r`` — broker think/wait time before
          the copy's first transmission (failed-sibling ACK-timeout
          cycles, persistency retry backoff);
        * ``retransmission`` += ``s - f`` — attempts lost on this very
          link before the surviving one;
        * ``queueing``      += the arriving attempt's wait on the busy
          direction (exact for FIFO, derived for EDF);
        * ``transmission``   = the remainder — propagation plus
          serialisation of the delivering attempts.

        The remainder construction makes the four components sum to
        ``total`` exactly (the property suite asserts ``==``, not
        ``approx``).
        """
        journey = self.journey(msg_id, subscriber)
        total = journey.delivery_time - journey.publish_time
        timeout_wait = 0.0
        retransmission = 0.0
        queueing = 0.0
        reached = journey.publish_time
        for hop in journey.hops:
            timeout_wait += hop.first_tx - reached
            retransmission += hop.send_tx - hop.first_tx
            queueing += hop.queueing
            reached = hop.arrival
        transmission, queueing, timeout_wait, retransmission = _exact_components(
            total, queueing, timeout_wait, retransmission
        )
        return DelayBreakdown(
            total=total,
            transmission=transmission,
            queueing=queueing,
            timeout_wait=timeout_wait,
            retransmission=retransmission,
        )

    def holdback_latencies(self) -> Dict[Tuple[int, int], float]:
        """Hold-back wait per released (msg, node) pair, in virtual time.

        Zero-wait releases (frames that were immediately deliverable)
        appear with ``0.0``, so the mapping doubles as the set of
        pipeline-released pairs; pairs delivered outside a pipeline
        (ordering off, uncovered topics) are absent.
        """
        latencies: Dict[Tuple[int, int], float] = {}
        for event in self._events:
            if event.kind != ORDER_RELEASE:
                continue
            info = event.info or {}
            pair = (event.msg, event.node)
            if pair not in latencies:
                latencies[pair] = float(info.get("held", 0.0))
        return latencies

    def retransmission_tree(self, msg_id: int) -> List[Dict[str, Any]]:
        """The copy tree of one message, as nested dicts.

        Each node describes one transmitted transfer: its link, attempt
        count and fate, with the copies forked from it as ``children``.
        Roots are the copies whose parent was never transmitted (the
        virtual root frame created at publish) or is unknown.
        """
        self._index()
        tx = self._tx_by_transfer
        transfers = sorted(t for t in tx if tx[t][0].msg == msg_id)
        transfer_set = set(transfers)
        children: Dict[int, List[int]] = {}
        roots: List[int] = []
        for transfer in transfers:
            parent = self._parents.get(transfer, -1)
            if parent in transfer_set:
                children.setdefault(parent, []).append(transfer)
            else:
                roots.append(transfer)

        def build(transfer: int) -> Dict[str, Any]:
            attempts = tx[transfer]
            fates = self._fate_by_transfer.get(transfer, [])
            if any(f.kind == ARRIVE for f in fates):
                fate = "arrived"
            elif any(f.kind == EXPIRE for f in fates):
                fate = "expired"
            else:
                fate = "lost"
            return {
                "transfer": transfer,
                "src": attempts[0].node,
                "dst": attempts[0].peer,
                "first_tx": attempts[0].t,
                "attempts": len(attempts),
                "fate": fate,
                "children": [build(child) for child in children.get(transfer, [])],
            }

        return [build(root) for root in roots]

    def format_retransmission_tree(self, msg_id: int) -> str:
        """Human-readable rendering of :meth:`retransmission_tree`."""
        lines = [f"msg {msg_id}"]

        def render(node: Dict[str, Any], depth: int) -> None:
            lines.append(
                "  " * depth
                + f"#{node['transfer']} {node['src']}->{node['dst']} "
                f"t={node['first_tx']:.6f} attempts={node['attempts']} "
                f"{node['fate']}"
            )
            for child in node["children"]:
                render(child, depth + 1)

        for root in self.retransmission_tree(msg_id):
            render(root, 1)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Excerpts (sanitizer reports)
    # ------------------------------------------------------------------
    def excerpt(
        self,
        frames: Tuple[Any, ...] = (),
        msg_ids: Iterable[int] = (),
        transfer_ids: Iterable[int] = (),
        limit: int = 40,
    ) -> Tuple[str, ...]:
        """Formatted trace lines relevant to *frames* (newest ``limit``).

        With no ids to match (e.g. an event-order violation that carries
        no frame), the tail of the whole stream is returned instead —
        still the most useful context for "what just happened".
        """
        msgs = set(msg_ids)
        transfers = set(transfer_ids)
        for frame in frames:
            msg = getattr(frame, "msg_id", None)
            if msg is not None:
                msgs.add(msg)
            transfer = getattr(frame, "transfer_id", None)
            if transfer is not None:
                transfers.add(transfer)
        if msgs or transfers:
            selected = [
                e for e in self._events if e.msg in msgs or e.transfer in transfers
            ]
        else:
            selected = list(self._events)
        return tuple(e.format() for e in selected[-limit:])

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def export_jsonl(self, target: Union[str, IO[str]]) -> None:
        """Write the buffered stream as JSON Lines.

        The first line is a ``meta`` record (schema version, capacity,
        recorded/dropped counts); every further line is one event. Keys
        are sorted so identical traces export byte-identically.
        """
        meta = {
            "kind": "meta",
            "version": JSONL_VERSION,
            "capacity": self.capacity,
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
        }
        if hasattr(target, "write"):
            self._write_jsonl(target, meta)  # type: ignore[arg-type]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                self._write_jsonl(handle, meta)

    def _write_jsonl(self, handle: IO[str], meta: Dict[str, Any]) -> None:
        dumps = json.dumps
        handle.write(dumps(meta, sort_keys=True) + "\n")
        for event in self._events:
            handle.write(dumps(event.as_dict(), sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def perf_counters(self) -> Dict[str, float]:
        """The ``trace.*`` entries merged into ``MetricsSummary.perf``."""
        perf = {
            "trace.events_recorded": float(self.events_recorded),
            "trace.events_dropped": float(self.events_dropped),
            "trace.sim_events": float(self.sim_events),
            "trace.forks": float(len(self._parents)),
        }
        for kind, count in self.kind_counts.items():
            perf[f"trace.{kind}"] = float(count)
        return perf


def load_jsonl(source: Union[str, IO[str]]) -> FrameTracer:
    """Rebuild a :class:`FrameTracer` from an exported JSONL stream.

    The full query API (journeys, breakdowns, trees) works on the loaded
    tracer: parent lineage is recovered from the ``parent`` field each
    transmit event embeds.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    tracer: Optional[FrameTracer] = None
    events: List[TraceEvent] = []
    dropped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") == "meta":
            version = record.get("version")
            if version != JSONL_VERSION:
                raise TraceError(
                    f"unsupported trace schema version {version!r} "
                    f"(expected {JSONL_VERSION})"
                )
            tracer = FrameTracer(capacity=record.get("capacity", DEFAULT_CAPACITY))
            dropped = int(record.get("events_dropped", 0))
            continue
        if tracer is None:
            raise TraceError(
                "trace stream has no meta line (not a repro trace?)"
            )
        events.append(
            TraceEvent(
                record["seq"],
                record["t"],
                record["kind"],
                record["msg"],
                record["transfer"],
                record["node"],
                record.get("peer", -1),
                record.get("info"),
            )
        )
    if tracer is None:
        raise TraceError("trace stream has no meta line (not a repro trace?)")
    for event in events:
        tracer._events.append(event)
        tracer.events_recorded += 1
        tracer.kind_counts[event.kind] = tracer.kind_counts.get(event.kind, 0) + 1
        if event.kind == TRANSMIT and event.info is not None:
            parent = event.info.get("parent", -1)
            if parent >= 0:
                tracer._parents[event.transfer] = parent
        elif event.kind == CUSTODY and event.info is not None:
            # Custody redeliveries embed the fresh copy's transfer id, so
            # stored->redelivered lineage survives the JSONL round-trip.
            fresh = event.info.get("fresh", -1)
            if fresh >= 0:
                tracer._parents[fresh] = event.transfer
    tracer.events_dropped = dropped
    return tracer


def install(tracer: Optional["FrameTracer"]) -> None:
    """Attach *tracer* to the probe bus (``None`` detaches the current).

    Also mirrors it into the legacy :data:`ACTIVE` slot so existing
    callers (and the sanitizer's excerpt plumbing) keep working.
    Installing the already-installed tracer is a no-op; installing a
    different one first detaches the previous.
    """
    global ACTIVE
    if ACTIVE is not None and ACTIVE is not tracer:
        _probes.detach(ACTIVE)
    ACTIVE = tracer
    if tracer is not None:
        _probes.attach(tracer)


def uninstall() -> None:
    """Detach the installed tracer and clear :data:`ACTIVE`."""
    install(None)

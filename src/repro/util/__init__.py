"""Shared utilities: error types, identifier helpers, validation."""

from repro.util.errors import (
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.util.validation import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "ConfigurationError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "TopologyError",
    "require",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
]

"""Exception hierarchy for the DCRD reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base type at an API boundary while still distinguishing the
sub-categories that matter to them.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An experiment, workload, or component was configured inconsistently."""


class TopologyError(ReproError):
    """An overlay topology is invalid (disconnected, bad degree, ...)."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class RoutingError(ReproError):
    """A routing strategy hit an unrecoverable internal inconsistency."""

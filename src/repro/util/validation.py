"""Small argument-validation helpers.

These keep constructor bodies flat: every public configuration object
validates its inputs eagerly so that misconfiguration surfaces at build
time, not hours into a simulation.
"""

from __future__ import annotations

from typing import Any

from repro.util.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition* holds."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that *value* is strictly positive and return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that *value* is >= 0 and return it."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high`` and return *value*."""
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_type(value: Any, expected: type, name: str) -> Any:
    """Validate ``isinstance(value, expected)`` and return *value*."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be a {expected.__name__}, got {type(value).__name__}"
        )
    return value

"""Tests for the control-plane convergence study."""

from repro.analysis.convergence import convergence_report
from repro.overlay.topology import full_mesh, random_regular
from repro.pubsub.topics import generate_workload
from tests.conftest import build_ctx


def make_setup(topo, rng):
    workload = generate_workload(topo, rng, num_topics=4)
    ctx = build_ctx(topo, workload)
    return ctx, workload


def test_report_covers_all_pairs(rng):
    topo = full_mesh(10, rng)
    ctx, workload = make_setup(topo, rng)
    report = convergence_report(topo, ctx.monitor, workload)
    assert report.pairs == workload.total_subscriptions
    assert report.all_converged
    assert report.reachable_fraction == 1.0
    assert report.max_rounds >= 1


def test_sparse_graphs_take_more_rounds(rng):
    mesh = full_mesh(12, rng)
    sparse = random_regular(12, 3, rng)
    mesh_ctx, mesh_workload = make_setup(mesh, rng)
    sparse_ctx, sparse_workload = make_setup(sparse, rng)
    mesh_report = convergence_report(mesh, mesh_ctx.monitor, mesh_workload)
    sparse_report = convergence_report(sparse, sparse_ctx.monitor, sparse_workload)
    # Longer diameters need more propagation rounds.
    assert sparse_report.mean_rounds >= mesh_report.mean_rounds


def test_empty_workload(rng):
    topo = full_mesh(4, rng)
    ctx = build_ctx(topo)
    report = convergence_report(topo, ctx.monitor, ctx.workload)
    assert report.pairs == 0 and report.all_converged


def test_as_dict(rng):
    topo = full_mesh(6, rng)
    ctx, workload = make_setup(topo, rng)
    report = convergence_report(topo, ctx.monitor, workload)
    data = report.as_dict()
    assert set(data) == {
        "pairs", "all_converged", "mean_rounds", "max_rounds", "reachable_fraction",
    }

"""Tests for the route-stretch analysis."""

import pytest

from repro.analysis.stretch import delivery_stretches, stretch_report
from repro.core.forwarding import DcrdStrategy
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)


def diamond():
    return make_topology(
        [(0, 1, 0.010), (1, 3, 0.010), (0, 2, 0.020), (2, 3, 0.020), (0, 3, 0.060)]
    )


def run_dcrd(topo, workload, failures=None):
    ctx = build_ctx(topo, workload, failures=failures)
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]
    ctx.metrics.expect(1, 0, 0.0, {s.node: s.deadline for s in spec.subscriptions})
    strategy.publish(spec, msg_id=1)
    ctx.sim.run(until=20.0)
    return ctx


def test_stretch_one_on_direct_delivery():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx = run_dcrd(topo, workload)
    # DCRD prefers 0-1-3 (2 hops); shortest hop count is 1 (direct link):
    # stretch 2.0 — delay-optimal is not hop-optimal here.
    stretches = delivery_stretches(ctx.metrics, topo, workload)
    assert stretches == [pytest.approx(2.0)]


def test_stretch_grows_under_detours():
    topo = diamond()
    failures = ScriptedFailures({(0, 1): [(0.0, 1e9)], (0, 3): [(0.0, 1e9)]})
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx = run_dcrd(topo, workload, failures=failures)
    stretches = delivery_stretches(ctx.metrics, topo, workload)
    assert stretches and stretches[0] >= 2.0


def test_report_statistics():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx = run_dcrd(topo, workload)
    report = stretch_report(ctx.metrics, topo, workload)
    assert report.samples == 1
    assert report.mean == report.p50 == report.max
    assert report.as_dict()["samples"] == 1


def test_empty_report():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx = build_ctx(topo, workload)
    report = stretch_report(ctx.metrics, topo, workload)
    assert report.samples == 0 and report.mean is None


def test_hops_recorded_on_first_copy_only():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx = run_dcrd(topo, workload)
    outcome = ctx.metrics.outcome(1, 3)
    assert outcome.hops == 2

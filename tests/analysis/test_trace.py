"""Tests for the message-journey tracer."""

import pytest

from repro.analysis.trace import trace_messages
from repro.core.forwarding import DcrdStrategy
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)

ALWAYS = (0.0, 1e9)


def diamond():
    return make_topology(
        [(0, 1, 0.010), (1, 3, 0.010), (0, 2, 0.020), (2, 3, 0.020)]
    )


def run_traced(topo, workload, failures=None):
    ctx = build_ctx(topo, workload, failures=failures)
    tracer = trace_messages(ctx.network)
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]
    ctx.metrics.expect(1, 0, 0.0, {s.node: s.deadline for s in spec.subscriptions})
    strategy.publish(spec, msg_id=1)
    ctx.sim.run(until=10.0)
    return ctx, tracer


def test_clean_delivery_has_two_hops():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx, tracer = run_traced(topo, workload)
    trace = tracer.trace(1)
    assert trace.transmissions == 2
    assert trace.losses == 0
    assert [(h.src, h.dst) for h in trace.hops] == [(0, 1), (1, 3)]


def test_failure_shows_lost_hops_and_detour():
    topo = diamond()
    failures = ScriptedFailures({(0, 1): [ALWAYS]})
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx, tracer = run_traced(topo, workload, failures=failures)
    trace = tracer.trace(1)
    assert trace.losses == 1  # the attempt on the dead link
    assert (0, 2) in [(h.src, h.dst) for h in trace.hops]


def test_describe_mentions_delivery_status():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx, tracer = run_traced(topo, workload)
    text = tracer.trace(1).describe(ctx.metrics)
    assert "message 1" in text
    assert "delivered to 3" in text
    assert "on time" in text


def test_untraced_message_is_empty():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx, tracer = run_traced(topo, workload)
    assert tracer.trace(99).transmissions == 0


def test_traced_messages_lists_ids():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx, tracer = run_traced(topo, workload)
    assert tracer.traced_messages() == [1]


def test_detach_restores_transmit():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx = build_ctx(topo, workload)
    tracer = trace_messages(ctx.network)
    original_wrapped = ctx.network.transmit
    tracer.detach()
    assert ctx.network.transmit != original_wrapped

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
import pytest

from repro.metrics.collector import MetricsCollector
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.overlay.topology import Topology, canonical_edge
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.messages import reset_message_ids
from repro.pubsub.topics import Subscription, TopicSpec, Workload
from repro.routing.base import ProtocolParams, RuntimeContext
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

import networkx as nx


@pytest.fixture(autouse=True)
def _fresh_message_ids():
    """Keep message/transfer ids independent across tests."""
    reset_message_ids()
    yield
    reset_message_ids()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(1234)


def make_topology(
    edges: Iterable[Tuple[int, int, float]],
    name: str = "test",
) -> Topology:
    """Build a topology from explicit ``(u, v, delay_seconds)`` triples."""
    graph = nx.Graph()
    delay_map = {}
    nodes = set()
    for u, v, delay in edges:
        graph.add_edge(u, v)
        delay_map[canonical_edge(u, v)] = delay
        nodes.update((u, v))
    graph.add_nodes_from(range(max(nodes) + 1))
    return Topology(graph, delay_map, name=name)


class ScriptedFailures:
    """Deterministic failure-schedule double.

    ``down`` maps canonical edges to a list of ``(start, end)`` windows
    during which the link is failed. Implements the same query surface as
    :class:`repro.overlay.failures.FailureSchedule`.
    """

    def __init__(self, down=None, failure_probability: float = 0.0, epoch: float = 1.0):
        self.down = {canonical_edge(*edge): list(windows) for edge, windows in (down or {}).items()}
        self.failure_probability = failure_probability
        self.epoch = epoch

    def is_failed(self, u: int, v: int, time: float) -> bool:
        for start, end in self.down.get(canonical_edge(u, v), ()):
            if start <= time < end:
                return True
        return False

    def epoch_index(self, time: float) -> int:
        return int(time // self.epoch)

    def failed_edges(self, epoch_index: int) -> frozenset:
        start = epoch_index * self.epoch
        return frozenset(
            edge
            for edge, windows in self.down.items()
            if any(s <= start < e for s, e in windows)
        )


def single_topic_workload(
    publisher: int,
    subscribers: Sequence[Tuple[int, float]],
    topic: int = 0,
    publish_interval: float = 1.0,
) -> Workload:
    """A workload with one topic and explicit subscriber deadlines."""
    spec = TopicSpec(
        topic=topic,
        publisher=publisher,
        subscriptions=tuple(
            Subscription(node=node, deadline=deadline) for node, deadline in subscribers
        ),
        publish_interval=publish_interval,
        phase=0.0,
    )
    return Workload(topics=[spec])


def build_ctx(
    topology: Topology,
    workload: Optional[Workload] = None,
    loss_rate: float = 0.0,
    failures=None,
    node_failures=None,
    m: int = 1,
    ack_timeout_factor: float = 2.0,
    seed: int = 99,
    monitor_mode: str = "analytic",
) -> RuntimeContext:
    """Assemble a :class:`RuntimeContext` on a fresh simulator."""
    sim = Simulator()
    streams = RandomStreams(seed)
    network = OverlayNetwork(
        sim,
        topology,
        streams,
        loss_rate=loss_rate,
        failures=failures,
        node_failures=node_failures,
        trace=True,
    )
    monitor = LinkMonitor(topology, network, streams, mode=monitor_mode)
    if workload is None:
        workload = Workload(topics=[])
    return RuntimeContext(
        sim=sim,
        topology=topology,
        network=network,
        monitor=monitor,
        workload=workload,
        metrics=MetricsCollector(),
        streams=streams,
        params=ProtocolParams(m=m, ack_timeout_factor=ack_timeout_factor),
    )


def attach_brokers(ctx: RuntimeContext, strategy) -> list:
    """Create one :class:`BrokerRuntime` per topology node."""
    return [BrokerRuntime(node, ctx, strategy) for node in ctx.topology.nodes]

"""Equivalence of the batched/incremental control-plane solver.

The refactored control plane has three acceleration layers — shared
per-refresh artifacts (:class:`ControlPlaneSolver`), dirty-edge table
reuse, and warm-started trajectory replay — and all of them must be
behaviourally invisible: batched cold solves are bit-identical to
per-pair :func:`compute_dr_table` calls, reused tables are the exact
previous objects, and replayed tables equal the from-scratch solution
bit-for-bit (the replay reproduces the cold Jacobi trajectory itself).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.computation import (
    ControlPlaneSolver,
    compute_dr_table,
    compute_dr_tables,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment
from repro.extensions.churn import ChurnProcess
from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.overlay.topology import random_regular
from repro.perf import PerfStats
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def build_world(seed, mode, loss_rate=0.02, num_nodes=30, degree=4):
    """A topology + sampled/analytic monitor whose estimates can be refreshed."""
    rng = np.random.default_rng(seed)
    topology = random_regular(num_nodes, degree, rng)
    streams = RandomStreams(seed)
    sim = Simulator()
    network = OverlayNetwork(sim, topology, streams, loss_rate=loss_rate)
    monitor = LinkMonitor(topology, network, streams, mode=mode)
    return topology, monitor


def make_pairs(topology, publishers=(0, 1, 2), per_publisher=3, factor=2.5):
    """(publisher, subscriber, deadline) pairs spread over *publishers*."""
    pairs = []
    subscriber = len(publishers)
    for index in range(per_publisher * len(publishers)):
        publisher = publishers[index % len(publishers)]
        deadline = factor * topology.shortest_delay(publisher, subscriber)
        pairs.append((publisher, subscriber, deadline))
        subscriber += 2
    return pairs


class TestBatchedColdSolves:
    @pytest.mark.parametrize("mode", ["analytic", "sampled"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_per_pair(self, mode, seed):
        """Batched cold solving is the identical computation, reorganised."""
        topology, monitor = build_world(seed, mode)
        estimates = monitor.estimates()
        pairs = make_pairs(topology)
        for publisher in {p for p, _, _ in pairs}:
            pub_pairs = [(s, dl) for p, s, dl in pairs if p == publisher]
            batched = compute_dr_tables(topology, estimates, publisher, pub_pairs)
            for table, (subscriber, deadline) in zip(batched, pub_pairs):
                reference = compute_dr_table(
                    topology, estimates, publisher, subscriber, deadline
                )
                assert table == reference

    def test_one_dijkstra_per_publisher(self):
        """The budget Dijkstra is shared across a publisher's subscribers."""
        topology, monitor = build_world(0, "analytic")
        perf = PerfStats()
        solver = ControlPlaneSolver(topology, monitor.estimates(), perf=perf)
        for publisher, subscriber, deadline in make_pairs(topology):
            solver.solve(publisher, subscriber, deadline)
        assert perf.get("control_plane.dijkstra_calls") == 3
        assert perf.get("control_plane.tables_solved_cold") == 9


class TestIncrementalRefresh:
    @pytest.mark.parametrize("mode", ["analytic", "sampled"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exactly_matches_from_scratch(self, mode, seed):
        """Reuse + replay across two chained refreshes equals cold solving."""
        topology, monitor = build_world(seed, mode)
        pairs = make_pairs(topology)
        cold0 = ControlPlaneSolver(topology, monitor.estimates())
        previous = {(p, s): cold0.solve(p, s, dl) for p, s, dl in pairs}

        for _ in range(2):  # chain: replayed tables feed the next replay
            monitor.refresh()
            changed = monitor.last_changed
            estimates = monitor.estimates()
            solver = ControlPlaneSolver(topology, estimates)
            for publisher, subscriber, deadline in pairs:
                warm = previous[(publisher, subscriber)]
                if not solver.table_affected(publisher, deadline, changed):
                    incremental = warm
                else:
                    incremental = solver.solve(
                        publisher, subscriber, deadline,
                        warm=warm, changed_edges=changed,
                    )
                reference = compute_dr_table(
                    topology, estimates, publisher, subscriber, deadline
                )
                assert incremental == reference
                assert incremental.rounds == reference.rounds
                assert incremental.converged == reference.converged
                previous[(publisher, subscriber)] = incremental

    def test_unaffected_table_detected_and_exact(self):
        """A changed edge outside the deadline horizon is provably inert."""
        topology, monitor = build_world(3, "analytic")
        solver0 = ControlPlaneSolver(topology, monitor.estimates())
        publisher, subscriber = 0, topology.neighbors(0)[0]
        # Deadline just beyond the direct link: only nearby brokers have a
        # positive budget, so a far edge cannot influence the table.
        deadline = 1.5 * topology.shortest_delay(publisher, subscriber)
        table = solver0.solve(publisher, subscriber, deadline)
        distances = solver0.distances_from(publisher)
        far_edges = [
            (u, v)
            for u, v in topology.edges()
            if min(distances[u], distances[v]) >= deadline
        ]
        assert far_edges, "scenario needs at least one out-of-horizon edge"
        assert not solver0.table_affected(publisher, deadline, far_edges)
        # And indeed re-solving from scratch reproduces the table exactly.
        assert solver0.solve(publisher, subscriber, deadline) == table

    def test_warm_start_falls_back_cold_on_mismatch(self):
        """Non-matching warm tables are ignored, not misapplied."""
        topology, monitor = build_world(4, "sampled")
        estimates_before = monitor.snapshot()
        publisher, subscriber = 0, 9
        deadline = 2.5 * topology.shortest_delay(publisher, subscriber)
        warm = compute_dr_table(
            topology, estimates_before, publisher, subscriber, deadline
        )
        monitor.refresh()
        changed = monitor.last_changed
        perf = PerfStats()
        solver = ControlPlaneSolver(topology, monitor.estimates(), perf=perf)
        # Different deadline -> different budgets -> must solve cold.
        solver.solve(
            publisher, subscriber, deadline * 1.5,
            warm=warm, changed_edges=changed,
        )
        # Missing changed_edges -> must solve cold.
        solver.solve(publisher, subscriber, deadline, warm=warm)
        assert perf.get("control_plane.tables_solved_cold") == 2
        assert perf.get("control_plane.tables_warm_started") == 0


def run_dcrd(config, seed, incremental, churn_rate=None):
    """One DCRD run with the incremental control plane toggled."""
    env = build_environment(config, "DCRD", seed)
    env.strategy.incremental = incremental
    churn = None
    if churn_rate is not None:
        churn = ChurnProcess(
            env.ctx,
            env.strategy,
            rate=churn_rate,
            deadline_factor=config.deadline_factor,
            stop_time=config.duration,
        )
        churn.start()
    return env.execute()


class TestStrategyDeterminism:
    """run_single results are invariant to the incremental machinery.

    ``MetricsSummary`` equality covers every reported metric (the ``perf``
    diagnostics field is excluded by design — wall-clock times differ).
    """

    CONFIG = ExperimentConfig(
        topology_kind="regular",
        degree=5,
        failure_probability=0.06,
        duration=20.0,
        monitor_period=5.0,  # several refreshes, so warm-starts engage
    )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_summaries(self, seed):
        reference = run_dcrd(self.CONFIG, seed, incremental=False)
        incremental = run_dcrd(self.CONFIG, seed, incremental=True)
        assert incremental == reference
        assert incremental.as_dict() == reference.as_dict()

    def test_identical_summaries_sampled_monitor(self):
        config = self.CONFIG.with_updates(monitor_mode="sampled", loss_rate=0.01)
        reference = run_dcrd(config, 0, incremental=False)
        incremental = run_dcrd(config, 0, incremental=True)
        assert incremental == reference

    @pytest.mark.parametrize("seed", [0, 1])
    def test_identical_summaries_under_churn(self, seed):
        config = self.CONFIG.with_updates(monitor_mode="sampled", loss_rate=0.01)
        reference = run_dcrd(config, seed, incremental=False, churn_rate=2.0)
        incremental = run_dcrd(config, seed, incremental=True, churn_rate=2.0)
        assert incremental == reference

    def test_perf_counters_exposed(self):
        summary = run_dcrd(
            self.CONFIG.with_updates(monitor_mode="sampled"), 0, incremental=True
        )
        perf = summary.perf
        assert perf.get("control_plane.table_rebuilds", 0) >= 1
        assert perf.get("control_plane.dijkstra_calls", 0) >= 1
        assert perf.get("control_plane.solve_time_s", 0) > 0
        assert perf.get("sim.events_processed", 0) > 0
        assert perf.get("monitor.refreshes", 0) >= 1
        # Warm-starts engage once there is a previous refresh to start from.
        assert perf.get("control_plane.tables_warm_started", 0) >= 1
        # The diagnostics stay out of the deterministic report dict.
        assert "perf" not in summary.as_dict()

"""Unit tests for the <d, r> recursion (Eq. 2/3) and its fixed point."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.computation import (
    ViaNeighbor,
    aggregate_dr,
    compute_dr_table,
)
from repro.core.linkmath import expected_delay_m, expected_delivery_ratio_m
from repro.core.theory import expected_delay_of_order
from repro.overlay.monitor import LinkEstimate
from tests.conftest import make_topology


def uniform_estimates(topology, gamma=1.0):
    return {
        edge: LinkEstimate(alpha=topology.delay(*edge), gamma=gamma)
        for edge in topology.edges()
    }


class TestAggregate:
    def test_empty_list_is_unreachable(self):
        d, r = aggregate_dr([])
        assert math.isinf(d) and r == 0.0

    def test_single_neighbor_passthrough(self):
        d, r = aggregate_dr([ViaNeighbor(1, 0.3, 0.8)])
        assert d == pytest.approx(0.3)
        assert r == pytest.approx(0.8)

    def test_matches_reference_evaluator(self):
        vias = [ViaNeighbor(1, 1.0, 0.5), ViaNeighbor(2, 2.0, 0.4), ViaNeighbor(3, 0.5, 0.9)]
        d, r = aggregate_dr(vias)
        reference = expected_delay_of_order(
            [v.d_via for v in vias], [v.r_via for v in vias], [0, 1, 2]
        )
        assert d == pytest.approx(reference)

    @given(
        vias=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=2.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=0,
            max_size=6,
        )
    )
    @settings(deadline=None)
    def test_r_equals_one_minus_product(self, vias):
        entries = [ViaNeighbor(i, d, r) for i, (d, r) in enumerate(vias)]
        _, r = aggregate_dr(entries)
        survive = 1.0
        for _, r_i in vias:
            survive *= 1.0 - r_i
        assert r == pytest.approx(1.0 - survive)


class TestTwoNodeChain:
    def test_direct_neighbor_of_subscriber(self):
        topo = make_topology([(0, 1, 0.020)])
        estimates = uniform_estimates(topo, gamma=0.9)
        table = compute_dr_table(topo, estimates, publisher=0, subscriber=1, deadline=1.0)
        state = table.state(0)
        assert state.d == pytest.approx(expected_delay_m(0.020, 0.9, 1))
        assert state.r == pytest.approx(expected_delivery_ratio_m(0.9, 1))
        assert table.sending_list(0) == (1,)

    def test_subscriber_state_pinned(self):
        topo = make_topology([(0, 1, 0.020)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=1, deadline=1.0
        )
        assert table.state(1).d == 0.0
        assert table.state(1).r == 1.0
        assert table.sending_list(1) == ()

    def test_m_two_improves_delivery_ratio(self):
        topo = make_topology([(0, 1, 0.020)])
        estimates = uniform_estimates(topo, gamma=0.5)
        table1 = compute_dr_table(topo, estimates, 0, 1, deadline=1.0, m=1)
        table2 = compute_dr_table(topo, estimates, 0, 1, deadline=1.0, m=2)
        assert table2.state(0).r > table1.state(0).r


class TestLineChain:
    def test_delays_accumulate_along_chain(self):
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.020), (2, 3, 0.030)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=3, deadline=1.0
        )
        assert table.state(0).d == pytest.approx(0.060)
        assert table.state(1).d == pytest.approx(0.050)
        assert table.state(2).d == pytest.approx(0.030)
        assert table.state(0).r == pytest.approx(1.0)

    def test_budgets_shrink_with_distance(self):
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.020)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=2, deadline=0.1
        )
        assert table.budget(0) == pytest.approx(0.1)
        assert table.budget(1) == pytest.approx(0.09)
        assert table.budget(2) == pytest.approx(0.07)


class TestBudgetFilter:
    def test_too_slow_neighbor_excluded(self):
        # Node 1 hangs off node 0; its only route to subscriber 2 goes back
        # through 0, so d_1 = 0.020. With budget 0.015 at node 0, neighbour
        # 1 fails the d_i < D_XS filter and only the direct link remains.
        topo = make_topology([(0, 2, 0.010), (0, 1, 0.010)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=2, deadline=0.015
        )
        assert table.sending_list(0) == (2,)

    def test_loopback_route_admitted_when_budget_allows(self):
        # The paper permits neighbours whose own route loops back through
        # the sender; runtime loop-avoidance (the routing path) handles it.
        topo = make_topology([(0, 2, 0.010), (0, 1, 0.010)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=2, deadline=1.0
        )
        assert set(table.sending_list(0)) == {1, 2}

    def test_loose_deadline_admits_detour(self):
        topo = make_topology([(0, 2, 0.010), (0, 1, 0.010), (1, 2, 0.100)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=2, deadline=1.0
        )
        assert set(table.sending_list(0)) == {1, 2}

    def test_impossible_deadline_leaves_node_unreachable(self):
        # Chain 0-1-2: node 1 expects d_1 = 0.020 to subscriber 2. With a
        # 15 ms end-to-end deadline, d_1 >= D_0S so node 0 has no eligible
        # neighbour at all.
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.020)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=2, deadline=0.015
        )
        assert not table.reachable(0)

    def test_per_hop_filter_is_heuristic_not_guarantee(self):
        # The paper's d_i < D_XS rule filters per hop; the aggregated d_X at
        # the publisher may still exceed the deadline (chain needs 30 ms,
        # deadline is 25 ms, yet node 1's d=20 ms passes node 0's filter).
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.020)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=2, deadline=0.025
        )
        assert table.reachable(0)
        assert table.state(0).d > table.deadline


class TestOrderingInTable:
    def test_list_sorted_by_theorem1_ratio(self):
        # Two routes from 0 to subscriber 3: via 1 (fast) and via 2 (slow).
        topo = make_topology(
            [(0, 1, 0.010), (1, 3, 0.010), (0, 2, 0.040), (2, 3, 0.040)]
        )
        table = compute_dr_table(
            topo, uniform_estimates(topo, gamma=0.9), publisher=0, subscriber=3,
            deadline=1.0,
        )
        assert table.sending_list(0)[0] == 1

    def test_direct_subscriber_link_ranks_first_on_equal_gamma(self):
        topo = make_topology([(0, 1, 0.030), (0, 2, 0.010), (2, 1, 0.010)])
        table = compute_dr_table(
            topo, uniform_estimates(topo, gamma=0.95), publisher=0, subscriber=1,
            deadline=1.0,
        )
        # Via node 2: d = 0.02, via direct: d = 0.03 -> node 2 first.
        assert table.sending_list(0)[0] == 2


class TestConvergence:
    def test_converges_on_cyclic_topology(self):
        topo = make_topology(
            [(0, 1, 0.010), (1, 2, 0.010), (2, 3, 0.010), (3, 0, 0.010)]
        )
        table = compute_dr_table(
            topo, uniform_estimates(topo, gamma=0.8), publisher=0, subscriber=2,
            deadline=1.0,
        )
        assert table.converged
        assert 0.0 < table.state(0).r <= 1.0
        assert math.isfinite(table.state(0).d)

    def test_perfect_links_give_unit_delivery_everywhere(self):
        topo = make_topology(
            [(0, 1, 0.010), (1, 2, 0.010), (0, 2, 0.030), (2, 3, 0.010)]
        )
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=3, deadline=10.0
        )
        for node in topo.nodes:
            assert table.state(node).r == pytest.approx(1.0)

    def test_rounds_recorded(self):
        topo = make_topology([(0, 1, 0.010)])
        table = compute_dr_table(
            topo, uniform_estimates(topo), publisher=0, subscriber=1, deadline=1.0
        )
        assert table.rounds >= 1

    def test_invalid_m_rejected(self):
        topo = make_topology([(0, 1, 0.010)])
        with pytest.raises(Exception):
            compute_dr_table(
                topo, uniform_estimates(topo), 0, 1, deadline=1.0, m=0
            )

    def test_invalid_deadline_rejected(self):
        topo = make_topology([(0, 1, 0.010)])
        with pytest.raises(Exception):
            compute_dr_table(topo, uniform_estimates(topo), 0, 1, deadline=0.0)


class TestSolverDistanceCache:
    def _topo(self):
        return make_topology(
            [(0, 1, 0.010), (1, 2, 0.020), (0, 2, 0.050), (2, 3, 0.015)]
        )

    def test_shared_maps_are_bit_identical_to_private_ones(self):
        from repro.core import computation
        from repro.core.computation import ControlPlaneSolver, SolverDistanceCache

        topo = self._topo()
        estimates = uniform_estimates(topo, gamma=0.9)
        plain = ControlPlaneSolver(topo, estimates)
        expected = {p: plain.distances_from(p) for p in topo.nodes}

        cache = SolverDistanceCache()
        previous = computation.DIST_CACHE
        computation.DIST_CACHE = cache
        try:
            first = ControlPlaneSolver(topo, estimates)
            warm_first = {p: first.distances_from(p) for p in topo.nodes}
            second = ControlPlaneSolver(topo, estimates)
            warm_second = {p: second.distances_from(p) for p in topo.nodes}
        finally:
            computation.DIST_CACHE = previous
        assert warm_first == expected
        assert warm_second == expected
        # The second solver reused the very same shared dict (one hit per
        # publisher would mean per-call hits; hits count per-graph reuse).
        assert cache.hits == 1 and cache.misses == 1
        assert second._dist_cache is first._dist_cache

    def test_different_alpha_graphs_do_not_share(self):
        from repro.core.computation import SolverDistanceCache

        topo = self._topo()
        cache = SolverDistanceCache()
        a = cache.distances_for(topo, uniform_estimates(topo, gamma=0.9))
        # gamma does not enter the key: same alphas -> same shared map.
        assert cache.distances_for(topo, uniform_estimates(topo, gamma=0.1)) is a
        other = make_topology(
            [(0, 1, 0.011), (1, 2, 0.020), (0, 2, 0.050), (2, 3, 0.015)]
        )
        assert (
            cache.distances_for(other, uniform_estimates(other, gamma=0.9))
            is not a
        )

    def test_lru_eviction(self):
        from repro.core.computation import SolverDistanceCache

        cache = SolverDistanceCache(max_graphs=2)
        topos = [
            make_topology([(0, 1, 0.010 + i * 0.001)]) for i in range(3)
        ]
        maps = [
            cache.distances_for(t, uniform_estimates(t)) for t in topos
        ]
        # Oldest graph evicted: asking again builds a fresh (empty) dict.
        assert cache.distances_for(topos[0], uniform_estimates(topos[0])) is not maps[0]
        assert cache.distances_for(topos[2], uniform_estimates(topos[2])) is maps[2]

"""Behavioural tests for the DCRD strategy (Algorithms 1 and 2)."""

import pytest

from repro.core.forwarding import DcrdStrategy
from repro.overlay.links import FrameKind
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)

ALWAYS = (0.0, 1e9)


def diamond():
    # Fast route 0-1-3, slow route 0-2-3.
    return make_topology(
        [
            (0, 1, 0.010),
            (1, 3, 0.010),
            (0, 2, 0.020),
            (2, 3, 0.020),
        ]
    )


def run_once(topo, workload, failures=None, m=1, until=10.0, loss_rate=0.0):
    ctx = build_ctx(topo, workload, failures=failures, m=m, loss_rate=loss_rate)
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]
    ctx.metrics.expect(1, spec.topic, 0.0, {s.node: s.deadline for s in spec.subscriptions})
    strategy.publish(spec, msg_id=1)
    ctx.sim.run(until=until)
    return ctx, strategy


class TestHealthyNetwork:
    def test_delivers_via_fastest_route(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload)
        outcome = ctx.metrics.outcome(1, 3)
        assert outcome.delivered
        assert outcome.delay == pytest.approx(0.020)

    def test_single_copy_on_healthy_network(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload)
        data = [t for t in ctx.network.transmissions if t.kind == FrameKind.DATA]
        assert len(data) == 2  # exactly the two hops of the fast path

    def test_destination_merging_shares_frames(self):
        # Subscribers at 2 and 3 both behind node 1.
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.010), (1, 3, 0.010)])
        workload = single_topic_workload(0, [(2, 1.0), (3, 1.0)])
        ctx, _ = run_once(topo, workload)
        first_hop = [
            t
            for t in ctx.network.transmissions
            if t.kind == FrameKind.DATA and t.src == 0 and t.dst == 1
        ]
        assert len(first_hop) == 1
        assert ctx.metrics.outcome(1, 2).delivered
        assert ctx.metrics.outcome(1, 3).delivered


class TestFailureBypass:
    def test_switches_to_next_neighbor_when_first_times_out(self):
        topo = diamond()
        failures = ScriptedFailures({(0, 1): [ALWAYS]})
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures)
        outcome = ctx.metrics.outcome(1, 3)
        assert outcome.delivered
        # Timeout on 0->1 (2*alpha + slack), then the slow path's 40 ms.
        assert outcome.delay == pytest.approx(0.021 + 0.040, abs=0.002)

    def test_upstream_bounce_explores_alternate_branch(self):
        # Link 1-3 dies after the packet is already at node 1; node 1 has
        # no other downstream option, so it must bounce to node 0, which
        # then uses the 0-2-3 branch.
        topo = diamond()
        failures = ScriptedFailures({(1, 3): [ALWAYS]})
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures)
        outcome = ctx.metrics.outcome(1, 3)
        assert outcome.delivered
        bounce = [
            t
            for t in ctx.network.transmissions
            if t.kind == FrameKind.DATA and t.src == 1 and t.dst == 0
        ]
        assert len(bounce) == 1

    def test_bounced_copy_does_not_revisit_failed_branch(self):
        topo = diamond()
        failures = ScriptedFailures({(1, 3): [ALWAYS]})
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures)
        # After the bounce, node 0 must not send the copy to node 1 again.
        to_one = [
            t
            for t in ctx.network.transmissions
            if t.kind == FrameKind.DATA and t.src == 0 and t.dst == 1
        ]
        assert len(to_one) == 1

    def test_gives_up_when_origin_fully_cut(self):
        topo = diamond()
        failures = ScriptedFailures({(0, 1): [ALWAYS], (0, 2): [ALWAYS]})
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, strategy = run_once(topo, workload, failures=failures)
        outcome = ctx.metrics.outcome(1, 3)
        assert not outcome.delivered
        assert outcome.gave_up
        assert strategy.abandoned >= 1

    def test_gives_up_when_subscriber_isolated(self):
        # All links into the subscriber dead; every branch must bounce back
        # and the origin eventually abandons. The run must terminate.
        topo = diamond()
        failures = ScriptedFailures({(1, 3): [ALWAYS], (2, 3): [ALWAYS]})
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, strategy = run_once(topo, workload, failures=failures)
        assert not ctx.metrics.outcome(1, 3).delivered
        assert ctx.metrics.outcome(1, 3).gave_up

    def test_retransmission_budget_recovers_transient_blip(self):
        topo = make_topology([(0, 1, 0.010)])
        failures = ScriptedFailures({(0, 1): [(0.0, 0.015)]})
        workload = single_topic_workload(0, [(1, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures, m=2)
        assert ctx.metrics.outcome(1, 1).delivered


class TestControlPlane:
    def test_tables_built_for_every_pair(self):
        topo = diamond()
        workload = single_topic_workload(0, [(1, 1.0), (3, 1.0)])
        ctx = build_ctx(topo, workload)
        strategy = DcrdStrategy(ctx)
        strategy.setup()
        assert strategy.table(0, 1).subscriber == 1
        assert strategy.table(0, 3).subscriber == 3

    def test_sending_list_orders_fast_branch_first(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx = build_ctx(topo, workload)
        strategy = DcrdStrategy(ctx)
        strategy.setup()
        assert strategy.sending_list(0, 3, 0)[0] == 1

    def test_unchanged_estimates_skip_rebuild(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx = build_ctx(topo, workload)
        strategy = DcrdStrategy(ctx)
        strategy.setup()
        assert strategy.table_rebuilds == 1
        ctx.monitor.refresh()
        strategy.on_monitor_refresh()
        assert strategy.table_rebuilds == 1  # analytic estimates unchanged

    def test_publish_with_self_subscription(self):
        topo = diamond()
        workload = single_topic_workload(0, [(0, 1.0), (3, 1.0)])
        ctx, _ = run_once(topo, workload)
        assert ctx.metrics.outcome(1, 0).delay == 0.0
        assert ctx.metrics.outcome(1, 3).delivered


class TestTermination:
    def test_ring_with_failures_terminates(self):
        topo = make_topology(
            [(0, 1, 0.010), (1, 2, 0.010), (2, 3, 0.010), (3, 0, 0.010)]
        )
        failures = ScriptedFailures({(1, 2): [ALWAYS], (3, 2): [ALWAYS]})
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures, until=30.0)
        # Subscriber unreachable; the protocol must settle without looping.
        assert not ctx.metrics.outcome(1, 2).delivered
        assert ctx.sim.pending_events == 0

    def test_total_loss_terminates(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload, loss_rate=1.0, until=30.0)
        assert not ctx.metrics.outcome(1, 3).delivered
        assert ctx.sim.pending_events == 0

"""Unit and property tests for Eq. 1 (the m-transmission link model)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.linkmath import (
    expected_delay_m,
    expected_delivery_ratio_m,
    link_params_m,
)
from repro.util.errors import ConfigurationError

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive_probs = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)
delays = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
m_values = st.integers(min_value=1, max_value=8)


class TestDeliveryRatio:
    def test_single_transmission_is_gamma1(self):
        assert expected_delivery_ratio_m(0.7, 1) == pytest.approx(0.7)

    def test_two_transmissions_closed_form(self):
        # 1 - (1 - 0.5)^2 = 0.75
        assert expected_delivery_ratio_m(0.5, 2) == pytest.approx(0.75)

    def test_perfect_link_stays_one(self):
        for m in (1, 3, 10):
            assert expected_delivery_ratio_m(1.0, m) == pytest.approx(1.0)

    def test_dead_link_stays_zero(self):
        assert expected_delivery_ratio_m(0.0, 5) == 0.0

    @given(gamma=probabilities, m=m_values)
    def test_ratio_stays_in_unit_interval(self, gamma, m):
        value = expected_delivery_ratio_m(gamma, m)
        assert 0.0 <= value <= 1.0

    @given(gamma=positive_probs, m=m_values)
    def test_more_transmissions_never_hurt(self, gamma, m):
        assert expected_delivery_ratio_m(gamma, m + 1) >= expected_delivery_ratio_m(
            gamma, m
        )

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_delivery_ratio_m(1.5, 1)

    def test_invalid_m_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_delivery_ratio_m(0.5, 0)


class TestExpectedDelay:
    def test_m_one_is_alpha1(self):
        assert expected_delay_m(0.02, 0.3, 1) == pytest.approx(0.02)

    def test_perfect_link_always_first_attempt(self):
        assert expected_delay_m(0.02, 1.0, 4) == pytest.approx(0.02)

    def test_dead_link_is_infinite(self):
        assert math.isinf(expected_delay_m(0.02, 0.0, 3))

    def test_two_transmissions_closed_form(self):
        # gamma = 0.5, m = 2: (1*0.5 + 2*0.25) / 0.75 = 4/3 attempts.
        assert expected_delay_m(1.0, 0.5, 2) == pytest.approx(4.0 / 3.0)

    @given(alpha=delays, gamma=positive_probs, m=m_values)
    def test_delay_bounded_by_attempt_extremes(self, alpha, gamma, m):
        value = expected_delay_m(alpha, gamma, m)
        # Tiny gammas suffer float cancellation in numerator/denominator;
        # allow a relative slack accordingly.
        assert alpha * (1 - 1e-6) - 1e-12 <= value <= m * alpha * (1 + 1e-6) + 1e-12

    @given(alpha=st.floats(min_value=1e-3, max_value=10.0), gamma=positive_probs, m=m_values)
    def test_delay_scales_linearly_with_alpha(self, alpha, gamma, m):
        unit = expected_delay_m(1.0, gamma, m)
        assert expected_delay_m(alpha, gamma, m) == pytest.approx(alpha * unit, rel=1e-9)

    @given(gamma=st.floats(min_value=0.01, max_value=0.99), m=m_values)
    def test_weaker_links_wait_longer(self, gamma, m):
        strong = expected_delay_m(1.0, min(gamma + 0.01, 1.0), m)
        weak = expected_delay_m(1.0, gamma, m)
        assert weak >= strong - 1e-9

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_delay_m(-0.1, 0.5, 1)


class TestLinkParams:
    def test_returns_both_quantities(self):
        alpha_m, gamma_m = link_params_m(0.02, 0.5, 2)
        assert alpha_m == pytest.approx(expected_delay_m(0.02, 0.5, 2))
        assert gamma_m == pytest.approx(0.75)

    @given(alpha=delays, gamma=probabilities, m=m_values)
    def test_consistent_with_components(self, alpha, gamma, m):
        alpha_m, gamma_m = link_params_m(alpha, gamma, m)
        assert gamma_m == expected_delivery_ratio_m(gamma, m)
        if gamma > 0:
            assert alpha_m == expected_delay_m(alpha, gamma, m)
        else:
            assert math.isinf(alpha_m)

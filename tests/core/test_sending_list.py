"""Unit and property tests for sending-list construction."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sending_list import (
    eligible_neighbors,
    order_sending_list,
    theorem1_key,
)
from repro.core.theory import expected_delay_of_order, theorem1_order


class TestEligibility:
    def test_strictly_less_than_budget(self):
        pairs = [(1, 0.5), (2, 1.0), (3, 1.5)]
        assert eligible_neighbors(pairs, delay_budget=1.0) == [1]

    def test_infinite_delay_never_eligible(self):
        pairs = [(1, float("inf"))]
        assert eligible_neighbors(pairs, delay_budget=float("inf")) == []

    def test_negative_budget_excludes_all(self):
        pairs = [(1, 0.1), (2, 0.2)]
        assert eligible_neighbors(pairs, delay_budget=-0.5) == []

    def test_preserves_input_order(self):
        pairs = [(9, 0.1), (2, 0.2), (5, 0.3)]
        assert eligible_neighbors(pairs, delay_budget=1.0) == [9, 2, 5]


class TestTheorem1Key:
    def test_plain_ratio(self):
        assert theorem1_key(2.0, 0.5) == pytest.approx(4.0)

    def test_zero_ratio_is_infinite(self):
        assert theorem1_key(1.0, 0.0) == float("inf")


class TestOrdering:
    def test_sorts_ascending_by_ratio(self):
        candidates = [(1, 4.0, 0.5), (2, 1.0, 0.5), (3, 2.0, 0.5)]
        ordered = order_sending_list(candidates)
        assert [c[0] for c in ordered] == [2, 3, 1]

    def test_ties_break_by_neighbor_id(self):
        candidates = [(5, 1.0, 0.5), (2, 1.0, 0.5)]
        ordered = order_sending_list(candidates)
        assert [c[0] for c in ordered] == [2, 5]

    def test_hopeless_neighbors_sink_to_end(self):
        candidates = [(1, 1.0, 0.0), (2, 5.0, 0.5)]
        ordered = order_sending_list(candidates)
        assert [c[0] for c in ordered] == [2, 1]

    def test_empty_input(self):
        assert order_sending_list([]) == []

    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_order_matches_reference_theorem1(self, data):
        candidates = [(i, d, r) for i, (d, r) in enumerate(data)]
        ordered = [c[0] for c in order_sending_list(candidates)]
        d = [item[0] for item in data]
        r = [item[1] for item in data]
        reference = theorem1_order(d, r)
        produced = expected_delay_of_order(d, r, ordered)
        optimal = expected_delay_of_order(d, r, reference)
        # Orders may differ on exact ties, but the achieved delay must match.
        assert produced == pytest.approx(optimal, rel=1e-9)

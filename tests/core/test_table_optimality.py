"""Theorem 1 end-to-end: the solver's sending lists are brute-force optimal.

The unit tests check the ordering rule in isolation; here we verify that
the *full pipeline* (Eq. 1 link transforms → Eq. 2 via-values → Theorem 1
sort inside :func:`compute_dr_table`) produces, at every broker, an order
whose Eq. 3 expected delay matches the exhaustive-search optimum over all
permutations of that broker's eligible neighbours.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.computation import compute_dr_table
from repro.core.theory import brute_force_best_order, expected_delay_of_order
from repro.overlay.monitor import LinkEstimate
from repro.overlay.topology import random_regular


def heterogeneous_estimates(topology, rng):
    """Per-link gammas drawn independently, alphas from the topology."""
    return {
        edge: LinkEstimate(
            alpha=topology.delay(*edge), gamma=float(rng.uniform(0.5, 1.0))
        )
        for edge in topology.edges()
    }


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_sending_list_is_brute_force_optimal(seed):
    rng = np.random.default_rng(seed)
    topology = random_regular(8, 3, rng)
    estimates = heterogeneous_estimates(topology, rng)
    table = compute_dr_table(
        topology, estimates, publisher=0, subscriber=7, deadline=1.0, m=1
    )
    for node in topology.nodes:
        if node == 7:
            continue
        vias = table.state(node).sending_list
        if len(vias) < 2:
            continue
        d_via = [v.d_via for v in vias]
        r_via = [v.r_via for v in vias]
        produced = expected_delay_of_order(d_via, r_via, range(len(vias)))
        _, optimal = brute_force_best_order(d_via, r_via)
        assert produced == pytest.approx(optimal, rel=1e-9), (
            f"node {node}: produced {produced} vs optimal {optimal}"
        )


def test_aggregate_consistent_with_list(rng):
    topology = random_regular(8, 3, rng)
    estimates = heterogeneous_estimates(topology, rng)
    table = compute_dr_table(
        topology, estimates, publisher=0, subscriber=7, deadline=1.0, m=2
    )
    for node in topology.nodes:
        state = table.state(node)
        if node == 7 or not state.sending_list:
            continue
        d_via = [v.d_via for v in state.sending_list]
        r_via = [v.r_via for v in state.sending_list]
        recomputed = expected_delay_of_order(d_via, r_via, range(len(d_via)))
        # state.d converged to the solver's 1e-9 tolerance against the
        # previous round's neighbour values, so allow the same slack here.
        assert state.d == pytest.approx(recomputed, rel=1e-5)


def test_any_adjacent_swap_never_improves(rng):
    """Eq. 5 directly: swapping adjacent list entries cannot reduce d_X."""
    topology = random_regular(10, 4, rng)
    estimates = heterogeneous_estimates(topology, rng)
    table = compute_dr_table(
        topology, estimates, publisher=0, subscriber=9, deadline=1.0, m=1
    )
    for node in topology.nodes:
        vias = table.state(node).sending_list
        if len(vias) < 2:
            continue
        d_via = [v.d_via for v in vias]
        r_via = [v.r_via for v in vias]
        base = expected_delay_of_order(d_via, r_via, range(len(vias)))
        for k in range(len(vias) - 1):
            order = list(range(len(vias)))
            order[k], order[k + 1] = order[k + 1], order[k]
            swapped = expected_delay_of_order(d_via, r_via, order)
            assert swapped >= base - 1e-12

"""Tests of the independent Eq. 3 evaluator and the brute-force oracle."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.theory import (
    brute_force_best_order,
    delivery_ratio_of_order,
    expected_delay_of_order,
    theorem1_order,
)


def test_single_neighbor_delay_is_its_own():
    assert expected_delay_of_order([0.5], [0.8], [0]) == pytest.approx(0.5)


def test_two_neighbor_hand_computation():
    # Try neighbour 0 (d=1, r=0.5) then neighbour 1 (d=2, r=0.5):
    # numerator = 1*0.5 + (1+2)*0.5*0.5 = 1.25; r = 0.75.
    value = expected_delay_of_order([1.0, 2.0], [0.5, 0.5], [0, 1])
    assert value == pytest.approx(1.25 / 0.75)


def test_order_affects_delay():
    fast_first = expected_delay_of_order([1.0, 10.0], [0.9, 0.9], [0, 1])
    slow_first = expected_delay_of_order([1.0, 10.0], [0.9, 0.9], [1, 0])
    assert fast_first < slow_first


def test_all_zero_ratios_is_infinite():
    assert math.isinf(expected_delay_of_order([1.0, 2.0], [0.0, 0.0], [0, 1]))


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        expected_delay_of_order([1.0], [0.5, 0.5], [0])


def test_delivery_ratio_closed_form():
    assert delivery_ratio_of_order([0.5, 0.5]) == pytest.approx(0.75)


@given(
    r=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6),
)
def test_delivery_ratio_independent_of_order(r):
    forward = delivery_ratio_of_order(r)
    backward = delivery_ratio_of_order(list(reversed(r)))
    assert forward == pytest.approx(backward)


def test_brute_force_small_case():
    d = [1.0, 10.0]
    r = [0.9, 0.9]
    order, delay = brute_force_best_order(d, r)
    assert order == [0, 1]
    assert delay == pytest.approx(expected_delay_of_order(d, r, [0, 1]))


def test_theorem1_order_sorts_by_ratio():
    # ratios: 2.0, 0.5, 1.0 -> order [1, 2, 0]
    assert theorem1_order([1.0, 0.25, 0.5], [0.5, 0.5, 0.5]) == [1, 2, 0]


def test_theorem1_order_pushes_zero_ratio_last():
    assert theorem1_order([1.0, 1.0], [0.0, 0.5]) == [1, 0]


@settings(max_examples=200, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=5.0),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_theorem1_matches_brute_force(data):
    """The paper's Theorem 1: sorting by d/r minimises expected delay."""
    d = [item[0] for item in data]
    r = [item[1] for item in data]
    _, best_delay = brute_force_best_order(d, r)
    theorem_delay = expected_delay_of_order(d, r, theorem1_order(d, r))
    assert theorem_delay == pytest.approx(best_delay, rel=1e-9, abs=1e-12)

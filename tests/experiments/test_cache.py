"""Tests for the content-addressed sweep-cell cache and its journal."""

import dataclasses
import json

import pytest

from repro.experiments.cache import (
    SweepCache,
    canonical_config,
    cell_digest,
    code_fingerprint,
    config_from_dict,
    summary_from_payload,
    summary_payload,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.experiments.sweeps import SweepExecutor, sweep

FAST = ExperimentConfig(duration=6.0, drain=2.0, num_topics=2, num_nodes=6)

#: A non-default value of matching type for every config field, so the
#: digest-sensitivity test below covers the whole dataclass.
FIELD_VARIANTS = {
    "topology_kind": "ring",
    "num_nodes": 7,
    "degree": 3,
    "delay_range": (0.020, 0.060),
    "loss_rate": 5e-4,
    "loss_rate_range": (1e-4, 2e-4),
    "failure_probability": 0.05,
    "failure_epoch": 2.0,
    "node_failure_probability": 0.01,
    "link_service_time": 0.001,
    "queue_discipline": "edf",
    "edf_drop_expired": True,
    "num_topics": 3,
    "publish_interval": 0.5,
    "ps_range": (0.3, 0.7),
    "deadline_factor": 4.0,
    "deadline_factor_choices": (2.0, 4.0),
    "m": 2,
    "ack_timeout_factor": 3.0,
    "ordering": "fifo",
    "monitor_period": 150.0,
    "monitor_mode": "sampled",
    "duration": 8.0,
    "drain": 3.0,
    "sanitize": True,
    "trace": True,
}


def test_field_variants_cover_every_config_field():
    names = {f.name for f in dataclasses.fields(ExperimentConfig)}
    assert set(FIELD_VARIANTS) == names


def test_digest_is_stable():
    assert cell_digest(FAST, "DCRD", 1) == cell_digest(FAST, "DCRD", 1)


@pytest.mark.parametrize("field_name", sorted(FIELD_VARIANTS))
def test_digest_changes_with_every_config_field(field_name):
    base = cell_digest(FAST, "DCRD", 1)
    changed = FAST.with_updates(**{field_name: FIELD_VARIANTS[field_name]})
    assert getattr(changed, field_name) != getattr(FAST, field_name)
    assert cell_digest(changed, "DCRD", 1) != base


def test_digest_changes_with_strategy_seed_and_fingerprint():
    base = cell_digest(FAST, "DCRD", 1)
    assert cell_digest(FAST, "D-Tree", 1) != base
    assert cell_digest(FAST, "DCRD", 2) != base
    assert cell_digest(FAST, "DCRD", 1, fingerprint="not-the-code") != base
    assert cell_digest(FAST, "DCRD", 1, fingerprint=code_fingerprint()) == base


def test_config_round_trips_through_canonical_dict():
    config = FAST.with_updates(
        deadline_factor_choices=(2.0, 4.0), loss_rate_range=(1e-4, 2e-4)
    )
    payload = canonical_config(config)
    # JSON round-trip: tuples become lists and back.
    payload = json.loads(json.dumps(payload))
    assert config_from_dict(payload) == config


def test_summary_payload_round_trips_bit_exactly():
    summary = run_single(FAST, "DCRD", seed=3)
    restored = summary_from_payload(
        json.loads(json.dumps(summary_payload(summary)))
    )
    assert restored == summary  # dataclass equality (perf excluded)
    assert restored.as_dict() == summary.as_dict()
    assert restored.late_normalized_delays == summary.late_normalized_delays
    assert restored.perf == summary.perf


def test_cached_cell_is_bit_identical_to_fresh_run(tmp_path):
    fresh = run_single(FAST, "DCRD", seed=1)
    with SweepCache(tmp_path / "cache") as cache:
        digest = cell_digest(FAST, "DCRD", 1)
        cache.put(digest, FAST, "DCRD", 1, fresh)
    reloaded = SweepCache(tmp_path / "cache")
    cached = reloaded.get(digest)
    assert cached is not None
    assert cached.as_dict() == fresh.as_dict()
    assert cached.late_normalized_delays == fresh.late_normalized_delays


def test_journal_survives_truncated_trailing_line(tmp_path):
    root = tmp_path / "cache"
    summary = run_single(FAST, "DCRD", seed=1)
    digest = cell_digest(FAST, "DCRD", 1)
    with SweepCache(root) as cache:
        cache.put(digest, FAST, "DCRD", 1, summary)
    # Simulate a kill mid-write: a half-written JSON line at the end.
    with (root / "journal.jsonl").open("a") as handle:
        handle.write('{"digest": "abc", "summ')
    resumed = SweepCache(root)
    assert len(resumed) == 1
    assert resumed.get(digest) == summary
    # The resumed cache can keep appending past the corrupt line.
    other = cell_digest(FAST, "DCRD", 2)
    resumed.put(other, FAST, "DCRD", 2, run_single(FAST, "DCRD", seed=2))
    resumed.close()
    assert len(SweepCache(root)) == 2


def test_kill_and_resume_mid_grid(tmp_path):
    configs = {0.0: FAST, 0.08: FAST.with_updates(failure_probability=0.08)}
    kwargs = dict(seeds=(1,), strategies=("DCRD", "D-Tree"))

    # "Kill" after two of four cells: journal only those two.
    partial = SweepCache(tmp_path / "cache")
    with SweepExecutor(cache=partial) as executor:
        sweep("s", "pf", {0.0: FAST}, executor=executor, **kwargs)
    partial.close()
    assert len(partial) == 2

    resumed_cache = SweepCache(tmp_path / "cache")
    with SweepExecutor(cache=resumed_cache) as executor:
        result = sweep("s", "pf", configs, executor=executor, **kwargs)
        counters = executor.counters()
    assert counters["sweep.cells_cached"] == 2
    assert counters["sweep.cells_computed"] == 2
    plain = sweep("s", "pf", configs, **kwargs)
    for x in plain.x_values:
        for strategy in plain.strategies:
            assert (
                result.cell(x, strategy).as_dict()
                == plain.cell(x, strategy).as_dict()
            )


def test_fresh_bypasses_cache_but_repopulates(tmp_path):
    cache = SweepCache(tmp_path / "cache")
    kwargs = dict(seeds=(1,), strategies=("DCRD",))
    with SweepExecutor(cache=cache) as executor:
        first = sweep("s", "pf", {0.0: FAST}, executor=executor, **kwargs)
    writes_before = cache.writes
    with SweepExecutor(cache=cache, fresh=True) as executor:
        second = sweep("s", "pf", {0.0: FAST}, executor=executor, **kwargs)
        counters = executor.counters()
    assert counters.get("sweep.cells_cached", 0) == 0
    assert counters["sweep.cells_computed"] == 1
    assert cache.writes == writes_before + 1  # repopulated
    assert first.cell(0.0, "DCRD").as_dict() == second.cell(0.0, "DCRD").as_dict()


def test_cache_coverage_and_counters(tmp_path):
    cache = SweepCache(tmp_path / "cache")
    digest = cell_digest(FAST, "DCRD", 1)
    assert cache.coverage([]) == 1.0
    assert cache.coverage([digest]) == 0.0
    assert cache.get(digest) is None and cache.misses == 1
    cache.put(digest, FAST, "DCRD", 1, run_single(FAST, "DCRD", seed=1))
    assert digest in cache
    assert cache.coverage([digest, "missing"]) == 0.5
    assert cache.get(digest) is not None and cache.hits == 1

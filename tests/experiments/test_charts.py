"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.charts import chart_sweep, render_chart
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import sweep

FAST = ExperimentConfig(duration=4.0, drain=1.0, num_topics=2, num_nodes=5)


def test_empty_curves():
    assert render_chart({}) == "(no curves)"


def test_symbols_and_legend_present():
    curves = {"A": [(0.0, 0.0), (1.0, 1.0)], "B": [(0.0, 1.0), (1.0, 0.0)]}
    text = render_chart(curves, title="demo")
    assert "demo" in text
    assert "*=A" in text and "o=B" in text
    assert "*" in text and "o" in text


def test_extremes_hit_corners():
    curves = {"A": [(0.0, 0.0), (1.0, 1.0)]}
    text = render_chart(curves, height=5, width=11)
    rows = [line for line in text.splitlines() if line.strip().startswith("|")]
    assert rows[0].replace("|", "").strip()[-1] == "*"   # top row, right side
    assert rows[-1].replace("|", "").strip()[0] == "*"   # bottom row, left side


def test_y_range_override():
    curves = {"A": [(0.0, 0.5)]}
    text = render_chart(curves, y_range=(0.0, 1.0))
    assert "   1.000 +" in text and "   0.000 +" in text


def test_flat_curve_does_not_crash():
    curves = {"A": [(0.0, 0.7), (1.0, 0.7)]}
    text = render_chart(curves)
    assert "*" in text


def test_chart_sweep_end_to_end():
    configs = {0.0: FAST, 0.1: FAST.with_updates(failure_probability=0.1)}
    result = sweep("demo", "pf", configs, seeds=(1,), strategies=("DCRD", "D-Tree"))
    text = chart_sweep(result, "delivery_ratio", y_range=(0.0, 1.0))
    assert "delivery_ratio" in text
    assert "*=DCRD" in text


def test_chart_sweep_rejects_non_numeric_axis():
    configs = {"analytic": FAST}
    result = sweep("demo", "mode", configs, seeds=(1,), strategies=("DCRD",))
    with pytest.raises(ValueError):
        chart_sweep(result, "delivery_ratio")

"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import _trace_path, build_parser, main
from repro.trace import load_jsonl

FAST_COMPARE = [
    "compare",
    "--duration", "4",
    "--nodes", "6",
    "--topics", "2",
    "--strategies", "DCRD", "D-Tree",
]


def test_compare_prints_table(capsys):
    assert main(FAST_COMPARE) == 0
    out = capsys.readouterr().out
    assert "DCRD" in out and "D-Tree" in out and "pkts/sub" in out


def test_compare_respects_topology_flags(capsys):
    argv = FAST_COMPARE + ["--topology", "regular", "--degree", "3"]
    assert main(argv) == 0
    assert "deg=3" in capsys.readouterr().out


def test_sweep_prints_each_metric(capsys):
    argv = [
        "sweep", "pf",
        "--values", "0", "0.05",
        "--duration", "4",
        "--nodes", "6",
        "--topics", "2",
        "--strategies", "DCRD",
        "--metrics", "delivery_ratio",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Delivery Ratio" in out and "0.0500" in out


def test_sweep_chart_flag(capsys):
    argv = [
        "sweep", "pf",
        "--values", "0", "0.1",
        "--duration", "4",
        "--nodes", "6",
        "--topics", "2",
        "--strategies", "DCRD",
        "--metrics", "delivery_ratio",
        "--chart",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "*=DCRD" in out


def test_sweep_writes_csv(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    argv = [
        "sweep", "degree",
        "--values", "3",
        "--duration", "4",
        "--nodes", "6",
        "--topics", "2",
        "--strategies", "DCRD",
        "--csv", str(csv_path),
    ]
    assert main(argv) == 0
    assert csv_path.exists()
    assert "strategy" in csv_path.read_text()


def test_compare_trace_exports_queryable_jsonl(tmp_path, capsys, monkeypatch):
    """--trace writes one JSONL per strategy; journeys reconstruct offline."""
    monkeypatch.chdir(tmp_path)
    argv = FAST_COMPARE + ["--trace", "--seed", "7"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "[trace written to trace-DCRD.jsonl]" in out
    assert "[trace written to trace-D-Tree.jsonl]" in out
    for name in ("trace-DCRD.jsonl", "trace-D-Tree.jsonl"):
        tracer = load_jsonl(str(tmp_path / name))
        assert tracer.events_recorded > 0
        delivered = {
            (e.msg, e.node) for e in tracer.events() if e.kind == "deliver"
        }
        assert delivered
        for msg, subscriber in delivered:
            journey = tracer.journey(msg, subscriber)
            assert journey.chain[-1] == subscriber
            for previous, current in zip(journey.hops, journey.hops[1:]):
                assert previous.dst == current.src


def test_compare_trace_custom_path(tmp_path, capsys):
    target = tmp_path / "run.jsonl"
    argv = FAST_COMPARE[:-1] + ["--trace", str(target)]  # DCRD only
    assert main(argv) == 0
    assert (tmp_path / "run-DCRD.jsonl").exists()


def test_trace_path_resolution():
    assert str(_trace_path("", "DCRD")) == "trace-DCRD.jsonl"
    assert str(_trace_path("out/{strategy}.jsonl", "D-Tree")) == "out/D-Tree.jsonl"
    assert str(_trace_path("runs/full.jsonl", "DCRD+persist")) == (
        "runs/full-DCRD-persist.jsonl"
    )


def test_figure_subcommand_runs(capsys):
    argv = ["figure", "6", "--duration", "3", "--repetitions", "1"]
    assert main(argv) == 0
    assert "QoS Delivery Ratio" in capsys.readouterr().out


def test_figure7_subcommand_renders_cdf(capsys):
    argv = ["figure", "7", "--duration", "5", "--repetitions", "1"]
    assert main(argv) == 0
    assert "delay / requirement" in capsys.readouterr().out


def test_figure8_subcommand_renders_both_m(capsys):
    argv = ["figure", "8", "--duration", "3", "--repetitions", "1"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "m=1" in out and "m=2" in out


def test_study_subcommand_runs(capsys):
    argv = ["study", "churn", "--duration", "4", "--repetitions", "1"]
    assert main(argv) == 0
    assert "churn" in capsys.readouterr().out


def test_unknown_study_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["study", "quantum"])


def test_unknown_axis_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "magic", "--values", "1"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])

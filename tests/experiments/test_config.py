"""Unit tests for experiment configuration."""

import pytest

from repro.experiments.config import PAPER_DURATION, ExperimentConfig, paper_config
from repro.util.errors import ConfigurationError


def test_defaults_match_paper_settings():
    config = ExperimentConfig()
    assert config.num_nodes == 20
    assert config.num_topics == 10
    assert config.publish_interval == 1.0
    assert config.ps_range == (0.2, 0.6)
    assert config.deadline_factor == 3.0
    assert config.loss_rate == pytest.approx(1e-4)
    assert config.m == 1
    assert config.monitor_period == 300.0
    assert config.failure_epoch == 1.0


def test_regular_topology_requires_degree():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(topology_kind="regular")


def test_unknown_topology_rejected():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(topology_kind="hypercube")


def test_invalid_probabilities_rejected():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(failure_probability=1.2)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(loss_rate=-0.1)


def test_invalid_m_rejected():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(m=0)


def test_with_updates_creates_modified_copy():
    base = ExperimentConfig()
    updated = base.with_updates(failure_probability=0.06)
    assert updated.failure_probability == 0.06
    assert base.failure_probability == 0.0
    assert updated.num_nodes == base.num_nodes


def test_with_updates_revalidates():
    with pytest.raises(ConfigurationError):
        ExperimentConfig().with_updates(m=0)


def test_end_time_includes_drain():
    config = ExperimentConfig(duration=100.0, drain=7.0)
    assert config.end_time == 107.0


def test_describe_mentions_key_parameters():
    config = ExperimentConfig(
        topology_kind="regular", degree=5, failure_probability=0.04
    )
    text = config.describe()
    assert "deg=5" in text and "Pf=0.04" in text


def test_paper_config_uses_two_hour_runs():
    config = paper_config()
    assert config.duration == PAPER_DURATION


def test_paper_config_accepts_overrides():
    config = paper_config(failure_probability=0.1)
    assert config.failure_probability == 0.1
    assert config.duration == PAPER_DURATION

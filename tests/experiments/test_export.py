"""Unit tests for CSV / row export."""

import csv
import io

from repro.experiments.config import ExperimentConfig
from repro.experiments.export import (
    EXPORT_FIELDS,
    curves_to_csv,
    journal_rows,
    journal_to_csv,
    sweep_rows,
    sweep_to_csv,
)
from repro.experiments.sweeps import SweepExecutor, sweep
from repro.experiments.cache import SweepCache

FAST = ExperimentConfig(duration=5.0, drain=1.0, num_topics=2, num_nodes=5)


def small_sweep():
    configs = {0.0: FAST, 0.05: FAST.with_updates(failure_probability=0.05)}
    return sweep("demo", "pf", configs, seeds=(1,), strategies=("DCRD", "ORACLE"))


def test_rows_cover_grid():
    result = small_sweep()
    rows = sweep_rows(result)
    assert len(rows) == 4  # 2 x-values x 2 strategies
    assert {row["strategy"] for row in rows} == {"DCRD", "ORACLE"}
    assert {row["pf"] for row in rows} == {0.0, 0.05}


def test_rows_contain_all_fields():
    rows = sweep_rows(small_sweep())
    for field in EXPORT_FIELDS:
        assert field in rows[0]


def test_csv_round_trip(tmp_path):
    result = small_sweep()
    path = tmp_path / "out.csv"
    text = sweep_to_csv(result, path)
    assert path.read_text() == text
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == 4
    assert float(parsed[0]["delivery_ratio"]) <= 1.0


def test_curves_to_csv_long_form(tmp_path):
    curves = {"mesh": ([1.0, 1.5], [0.3, 1.0])}
    path = tmp_path / "cdf.csv"
    text = curves_to_csv(curves, path, x_label="ratio")
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed == [
        {"ratio": "1.0", "curve": "mesh", "cdf": "0.3"},
        {"ratio": "1.5", "curve": "mesh", "cdf": "1.0"},
    ]


def test_journal_rows_flatten_cached_cells(tmp_path):
    configs = {0.0: FAST, 0.05: FAST.with_updates(failure_probability=0.05)}
    cache = SweepCache(tmp_path / "cache")
    with SweepExecutor(cache=cache) as executor:
        sweep("demo", "pf", configs, seeds=(1,), strategies=("DCRD",),
              executor=executor)
    rows = journal_rows(cache)
    assert len(rows) == 2
    assert {row["failure_probability"] for row in rows} == {0.0, 0.05}
    for row in rows:
        assert row["strategy"] == "DCRD" and row["seed"] == 1
        for field in EXPORT_FIELDS:
            assert field in row
    path = tmp_path / "journal.csv"
    text = journal_to_csv(cache, path)
    assert path.read_text() == text
    assert len(list(csv.DictReader(io.StringIO(text)))) == 2
    # Corrupt trailing line: skipped, not fatal.
    with cache.journal_path.open("a") as handle:
        handle.write('{"broken')
    assert len(journal_rows(cache)) == 2


def test_journal_rows_empty_without_journal(tmp_path):
    assert journal_rows(SweepCache(tmp_path / "cache")) == []

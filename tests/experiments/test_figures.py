"""Smoke tests of every figure driver at miniature scale.

Each driver must execute the exact code path of its paper figure — the
scale knobs (duration, seeds, strategies) are shrunk so the whole module
runs in seconds.
"""

import pytest

from repro.experiments import figures

TINY = dict(duration=4.0, seeds=(0,))
TWO = ("DCRD", "D-Tree")


def test_figure2_axis_and_metrics():
    result = figures.figure2(strategies=TWO, **TINY)
    assert result.x_values == list(figures.FAILURE_PROBABILITIES)
    for metric in figures.PANEL_METRICS:
        series = result.series("DCRD", metric)
        assert len(series) == len(figures.FAILURE_PROBABILITIES)


def test_figure3_uses_degree_five(monkeypatch):
    captured = {}
    original = figures.sweep

    def spy(name, x_label, configs, seeds, strategies, progress=None, **kwargs):
        captured.update(configs)
        return original(
            name, x_label, configs, seeds, strategies, progress, **kwargs
        )

    monkeypatch.setattr(figures, "sweep", spy)
    figures.figure3(strategies=("DCRD",), **TINY)
    assert all(config.degree == 5 for config in captured.values())
    assert all(config.topology_kind == "regular" for config in captured.values())


def test_figure4_sweeps_degree():
    result = figures.figure4(strategies=("DCRD",), **TINY)
    assert result.x_values == list(figures.NODE_DEGREES)


def test_figure5_sweeps_size():
    result = figures.figure5(
        duration=3.0, seeds=(0,), sizes=(10, 20), strategies=("DCRD",)
    )
    assert result.x_values == [10, 20]


def test_figure6_sweeps_deadline_factor(monkeypatch):
    captured = {}
    original = figures.sweep

    def spy(name, x_label, configs, seeds, strategies, progress=None, **kwargs):
        captured.update(configs)
        return original(
            name, x_label, configs, seeds, strategies, progress, **kwargs
        )

    monkeypatch.setattr(figures, "sweep", spy)
    result = figures.figure6(strategies=("DCRD",), **TINY)
    assert result.x_values == list(figures.DEADLINE_FACTORS)
    assert {config.deadline_factor for config in captured.values()} == set(
        figures.DEADLINE_FACTORS
    )


def test_figure7_returns_cdfs_for_both_topologies():
    curves = figures.figure7(duration=6.0, seeds=(0,))
    assert set(curves) == {"full-mesh", "degree-8"}
    for grid, values in curves.values():
        assert len(grid) == len(values)
        assert values == sorted(values)  # CDF is monotone
        assert all(0.0 <= v <= 1.0 for v in values)


def test_figure8_produces_one_sweep_per_m():
    results = figures.figure8(
        duration=3.0,
        seeds=(0,),
        strategies=("DCRD",),
        m_values=(1, 2),
        loss_rates=(1e-3, 1e-1),
    )
    assert set(results) == {1, 2}
    for m, result in results.items():
        assert result.x_values == [1e-3, 1e-1]

"""Unit tests for report rendering."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import (
    format_table,
    format_value,
    render_cdf,
    render_comparison,
    render_panels,
    render_sweep,
)
from repro.experiments.runner import run_comparison
from repro.experiments.sweeps import sweep

FAST = ExperimentConfig(duration=5.0, drain=1.0, num_topics=2, num_nodes=5)


def small_sweep():
    configs = {0.0: FAST}
    return sweep("demo", "Pf", configs, seeds=(1,), strategies=("DCRD",))


def test_format_value_floats_and_ints():
    assert format_value(0.123456) == "0.1235"
    assert format_value(7) == "7"
    assert format_value("x") == "x"


def test_format_table_alignment():
    table = format_table(["a", "bb"], [[1, 2.0], [33, 4.5]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    # All rows have the same rendered width.
    assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


def test_render_sweep_contains_title_and_strategy():
    text = render_sweep(small_sweep(), "delivery_ratio")
    assert "demo" in text and "Delivery Ratio" in text and "DCRD" in text


def test_render_panels_concatenates_metrics():
    text = render_panels(small_sweep(), ("delivery_ratio", "qos_delivery_ratio"))
    assert "Delivery Ratio" in text and "QoS Delivery Ratio" in text


def test_render_cdf():
    curves = {"full-mesh": ([1.0, 1.5], [0.4, 1.0])}
    text = render_cdf(curves)
    assert "full-mesh" in text and "1.5000" in text


def test_render_cdf_empty():
    assert render_cdf({}) == "(no curves)"


def test_render_comparison_lists_all_strategies():
    results = run_comparison(FAST, seed=2, strategies=("DCRD", "ORACLE"))
    text = render_comparison(results)
    assert "DCRD" in text and "ORACLE" in text and "pkts/sub" in text

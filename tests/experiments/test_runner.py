"""Unit tests for run assembly and execution."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    DEFAULT_STRATEGIES,
    STRATEGIES,
    build_environment,
    build_topology,
    run_comparison,
    run_single,
)
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError

FAST = ExperimentConfig(duration=10.0, drain=2.0, num_topics=3, num_nodes=8)


def test_strategy_registry_contains_paper_lineup():
    assert set(DEFAULT_STRATEGIES) == {"DCRD", "R-Tree", "D-Tree", "ORACLE", "Multipath"}
    assert set(DEFAULT_STRATEGIES) <= set(STRATEGIES)


def test_unknown_strategy_rejected():
    with pytest.raises(ConfigurationError):
        build_environment(FAST, "RIP", seed=1)


def test_build_topology_respects_kind():
    streams = RandomStreams(1)
    mesh = build_topology(ExperimentConfig(num_nodes=6), streams)
    assert mesh.num_edges == 15
    regular = build_topology(
        ExperimentConfig(topology_kind="regular", degree=3, num_nodes=6),
        RandomStreams(2),
    )
    assert all(regular.degree(n) == 3 for n in regular.nodes)


def test_environment_wiring():
    env = build_environment(FAST, "DCRD", seed=3)
    assert env.strategy.name == "DCRD"
    assert len(env.brokers) == FAST.num_nodes
    assert len(env.publishers) == FAST.num_topics
    assert env.ctx.params.m == FAST.m


def test_run_single_produces_summary():
    summary = run_single(FAST, "DCRD", seed=3)
    assert summary.strategy == "DCRD"
    assert summary.messages_published > 0
    assert 0.0 <= summary.delivery_ratio <= 1.0
    assert summary.qos_delivery_ratio <= summary.delivery_ratio


def test_run_single_is_deterministic():
    a = run_single(FAST, "DCRD", seed=11)
    b = run_single(FAST, "DCRD", seed=11)
    assert a.delivery_ratio == b.delivery_ratio
    assert a.data_transmissions == b.data_transmissions
    assert a.mean_delay == b.mean_delay


def test_different_seeds_change_world():
    a = run_single(FAST, "DCRD", seed=1)
    b = run_single(FAST, "DCRD", seed=2)
    assert (
        a.data_transmissions != b.data_transmissions
        or a.expected_deliveries != b.expected_deliveries
    )


def test_all_strategies_deliver_everything_without_hazards():
    config = FAST.with_updates(loss_rate=0.0, failure_probability=0.0)
    for name in DEFAULT_STRATEGIES:
        summary = run_single(config, name, seed=5)
        assert summary.delivery_ratio == pytest.approx(1.0), name


def test_run_comparison_covers_requested_strategies():
    results = run_comparison(FAST, seed=4, strategies=("DCRD", "ORACLE"))
    assert set(results) == {"DCRD", "ORACLE"}


def test_strategies_face_identical_workload():
    results = run_comparison(FAST, seed=4, strategies=("DCRD", "D-Tree"))
    assert (
        results["DCRD"].expected_deliveries == results["D-Tree"].expected_deliveries
    )
    assert (
        results["DCRD"].messages_published == results["D-Tree"].messages_published
    )


def test_injected_topology_used():
    from repro.overlay.topology import full_mesh
    import numpy as np

    topo = full_mesh(8, np.random.default_rng(0))
    env = build_environment(FAST, "DCRD", seed=1, topology=topo)
    assert env.ctx.topology is topo


def test_node_failures_enabled_when_configured():
    config = FAST.with_updates(node_failure_probability=0.05)
    env = build_environment(config, "DCRD", seed=1)
    assert env.ctx.network.node_failures is not None


def test_monitor_process_wired_to_strategy():
    config = FAST.with_updates(monitor_period=3.0, monitor_mode="sampled")
    env = build_environment(config, "DCRD", seed=1)
    env.execute()
    assert env.monitor_process.ticks >= 3

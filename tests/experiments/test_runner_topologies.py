"""Coverage of every topology family through the runner."""

import networkx as nx
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_topology, run_single
from repro.sim.random import RandomStreams


@pytest.mark.parametrize(
    "kind,extra",
    [
        ("full_mesh", {}),
        ("regular", {"degree": 4}),
        ("waxman", {}),
        ("erdos_renyi", {"degree": 5}),
        ("ring", {}),
        ("line", {}),
        ("star", {}),
    ],
)
def test_every_family_builds_connected(kind, extra):
    config = ExperimentConfig(
        topology_kind=kind, num_nodes=12, duration=5.0, **extra
    )
    topology = build_topology(config, RandomStreams(3))
    assert topology.num_nodes == 12
    assert nx.is_connected(topology.graph)


@pytest.mark.parametrize("kind,extra", [("waxman", {}), ("ring", {})])
def test_dcrd_runs_on_exotic_topologies(kind, extra):
    config = ExperimentConfig(
        topology_kind=kind, num_nodes=10, num_topics=3, duration=6.0, **extra
    )
    summary = run_single(config, "DCRD", seed=4)
    assert summary.delivery_ratio == pytest.approx(1.0, abs=0.01)


def test_erdos_renyi_uses_degree_as_density_hint():
    config = ExperimentConfig(
        topology_kind="erdos_renyi", degree=6, num_nodes=15, duration=5.0
    )
    topology = build_topology(config, RandomStreams(9))
    mean_degree = 2 * topology.num_edges / topology.num_nodes
    assert 3.0 <= mean_degree <= 10.0

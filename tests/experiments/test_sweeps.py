"""Unit tests for repetition averaging and axis sweeps."""

import pytest

from repro.experiments.cache import SweepCache, cell_digest
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.experiments.sweeps import (
    SweepExecutor,
    SweepWorkerError,
    run_repetitions,
    sweep,
)
from repro.util.errors import ConfigurationError

FAST = ExperimentConfig(duration=6.0, drain=2.0, num_topics=2, num_nodes=6)


def test_run_repetitions_averages_ratios():
    merged = run_repetitions(FAST, "DCRD", seeds=(1, 2))
    a = run_single(FAST, "DCRD", seed=1)
    b = run_single(FAST, "DCRD", seed=2)
    assert merged.delivery_ratio == pytest.approx(
        (a.delivery_ratio + b.delivery_ratio) / 2
    )
    assert merged.expected_deliveries == a.expected_deliveries + b.expected_deliveries


def test_run_repetitions_reports_progress():
    lines = []
    run_repetitions(FAST, "DCRD", seeds=(1,), progress=lines.append)
    assert len(lines) == 1 and "DCRD" in lines[0]


def test_sweep_grid_complete():
    configs = {
        0.0: FAST,
        0.1: FAST.with_updates(failure_probability=0.1),
    }
    result = sweep(
        "test", "Pf", configs, seeds=(1,), strategies=("DCRD", "D-Tree")
    )
    assert result.x_values == [0.0, 0.1]
    assert result.strategies == ["DCRD", "D-Tree"]
    for x in result.x_values:
        for strategy in result.strategies:
            assert result.cell(x, strategy).strategy == strategy


def test_sweep_series_extraction():
    configs = {0.0: FAST, 0.1: FAST.with_updates(failure_probability=0.1)}
    result = sweep("test", "Pf", configs, seeds=(1,), strategies=("DCRD",))
    series = result.series("DCRD", "delivery_ratio")
    assert len(series) == 2
    assert all(0.0 <= v <= 1.0 for v in series)


def test_parallel_workers_match_serial_results():
    configs = {0.0: FAST, 0.08: FAST.with_updates(failure_probability=0.08)}
    serial = sweep("s", "pf", configs, seeds=(1, 2), strategies=("DCRD",))
    parallel = sweep(
        "s", "pf", configs, seeds=(1, 2), strategies=("DCRD",), workers=2
    )
    for x in serial.x_values:
        assert (
            serial.cell(x, "DCRD").as_dict() == parallel.cell(x, "DCRD").as_dict()
        )


def test_parallel_repetitions_match_serial():
    serial = run_repetitions(FAST, "DCRD", seeds=(1, 2))
    parallel = run_repetitions(FAST, "DCRD", seeds=(1, 2), workers=2)
    assert serial.as_dict() == parallel.as_dict()


@pytest.mark.parametrize("workers", [0, -1])
def test_run_repetitions_rejects_bad_worker_counts(workers):
    with pytest.raises(ConfigurationError, match="workers"):
        run_repetitions(FAST, "DCRD", seeds=(1,), workers=workers)


@pytest.mark.parametrize("workers", [0, -3])
def test_sweep_rejects_bad_worker_counts(workers):
    with pytest.raises(ConfigurationError, match="workers"):
        sweep("s", "pf", {0.0: FAST}, seeds=(1,), strategies=("DCRD",),
              workers=workers)


def test_worker_failure_names_the_failing_cell():
    # An unknown strategy makes the remote cell raise; the pool must not
    # surface a bare pickled traceback but the annotated wrapper.
    with pytest.raises(SweepWorkerError) as excinfo:
        run_repetitions(FAST, "NoSuchStrategy", seeds=(1, 2), workers=2)
    error = excinfo.value
    assert error.strategy == "NoSuchStrategy"
    assert error.seed in (1, 2)
    assert error.config == FAST
    assert "NoSuchStrategy" in str(error)
    assert error.__cause__ is not None


def test_sweep_worker_failure_names_the_failing_cell():
    configs = {0.0: FAST}
    with pytest.raises(SweepWorkerError) as excinfo:
        sweep("s", "pf", configs, seeds=(1,), strategies=("NoSuchStrategy",),
              workers=2)
    assert excinfo.value.strategy == "NoSuchStrategy"
    assert excinfo.value.seed == 1


def test_serial_failure_is_wrapped_and_names_the_cell():
    with pytest.raises(SweepWorkerError) as excinfo:
        run_repetitions(FAST, "NoSuchStrategy", seeds=(1,))
    assert excinfo.value.strategy == "NoSuchStrategy"
    assert excinfo.value.seed == 1
    assert excinfo.value.__cause__ is not None


@pytest.mark.parametrize("workers", [0, -2])
def test_executor_rejects_bad_worker_counts(workers):
    with pytest.raises(ConfigurationError, match="workers"):
        SweepExecutor(workers=workers)


def test_executor_reuses_one_pool_across_sweeps():
    configs = {0.0: FAST}
    with SweepExecutor(workers=2) as executor:
        sweep("s", "pf", configs, seeds=(1,), strategies=("DCRD",),
              executor=executor)
        pool = executor._pool
        assert pool is not None
        sweep("s", "pf", configs, seeds=(2,), strategies=("DCRD",),
              executor=executor)
        assert executor._pool is pool  # same pool, no churn
    assert executor._pool is None  # released on exit


def test_executor_serves_repeat_grid_from_cache(tmp_path):
    configs = {0.0: FAST, 0.08: FAST.with_updates(failure_probability=0.08)}
    kwargs = dict(seeds=(1, 2), strategies=("DCRD", "D-Tree"))
    cache = SweepCache(tmp_path / "cache")
    with SweepExecutor(cache=cache) as executor:
        cold = sweep("s", "pf", configs, executor=executor, **kwargs)
        assert executor.counters()["sweep.cells_computed"] == 8
        warm = sweep("s", "pf", configs, executor=executor, **kwargs)
        counters = executor.counters()
    assert counters["sweep.cells_cached"] == 8
    assert counters["sweep.cells_computed"] == 8  # nothing recomputed
    assert counters["sweep.checkpoint_writes"] == 8
    for x in cold.x_values:
        for strategy in cold.strategies:
            assert (
                warm.cell(x, strategy).as_dict()
                == cold.cell(x, strategy).as_dict()
            )


def test_executor_warm_sharing_matches_plain_runs(tmp_path):
    # Warm artifacts (shared topologies, Dijkstra maps) and the cache
    # must be invisible: every path yields the plain run_single result.
    configs = {0.0: FAST, 0.08: FAST.with_updates(failure_probability=0.08)}
    kwargs = dict(seeds=(1, 2), strategies=("DCRD", "D-Tree"))
    with SweepExecutor(cache=SweepCache(tmp_path / "c1")) as executor:
        serial = sweep("s", "pf", configs, executor=executor, **kwargs)
    with SweepExecutor(workers=2, cache=SweepCache(tmp_path / "c2")) as executor:
        pooled = sweep("s", "pf", configs, executor=executor, **kwargs)
    plain = sweep("s", "pf", configs, **kwargs)
    for x in plain.x_values:
        for strategy in plain.strategies:
            want = plain.cell(x, strategy).as_dict()
            assert serial.cell(x, strategy).as_dict() == want
            assert pooled.cell(x, strategy).as_dict() == want


@pytest.mark.parametrize("workers", [1, 2])
def test_failed_grid_journals_completed_cells(tmp_path, workers):
    configs = {0.0: FAST}
    cache = SweepCache(tmp_path / "cache")
    with SweepExecutor(workers=workers, cache=cache) as executor:
        with pytest.raises(SweepWorkerError) as excinfo:
            sweep("s", "pf", configs, seeds=(1,),
                  strategies=("DCRD", "NoSuchStrategy"), executor=executor)
    assert excinfo.value.strategy == "NoSuchStrategy"
    cache.close()
    # The good cell survived the sibling's failure and is resumable.
    resumed = SweepCache(tmp_path / "cache")
    assert resumed.get(cell_digest(FAST, "DCRD", 1)) is not None
    with SweepExecutor(cache=resumed) as executor:
        sweep("s", "pf", configs, seeds=(1,), strategies=("DCRD",),
              executor=executor)
        assert executor.counters().get("sweep.cells_computed", 0) == 0


def test_sweep_metrics_table_layout():
    configs = {0.0: FAST}
    result = sweep("test", "Pf", configs, seeds=(1,), strategies=("DCRD", "ORACLE"))
    rows = result.metrics_table("qos_delivery_ratio")
    assert len(rows) == 1
    assert rows[0][0] == 0.0
    assert len(rows[0]) == 3

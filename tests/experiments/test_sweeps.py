"""Unit tests for repetition averaging and axis sweeps."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.experiments.sweeps import SweepWorkerError, run_repetitions, sweep
from repro.util.errors import ConfigurationError

FAST = ExperimentConfig(duration=6.0, drain=2.0, num_topics=2, num_nodes=6)


def test_run_repetitions_averages_ratios():
    merged = run_repetitions(FAST, "DCRD", seeds=(1, 2))
    a = run_single(FAST, "DCRD", seed=1)
    b = run_single(FAST, "DCRD", seed=2)
    assert merged.delivery_ratio == pytest.approx(
        (a.delivery_ratio + b.delivery_ratio) / 2
    )
    assert merged.expected_deliveries == a.expected_deliveries + b.expected_deliveries


def test_run_repetitions_reports_progress():
    lines = []
    run_repetitions(FAST, "DCRD", seeds=(1,), progress=lines.append)
    assert len(lines) == 1 and "DCRD" in lines[0]


def test_sweep_grid_complete():
    configs = {
        0.0: FAST,
        0.1: FAST.with_updates(failure_probability=0.1),
    }
    result = sweep(
        "test", "Pf", configs, seeds=(1,), strategies=("DCRD", "D-Tree")
    )
    assert result.x_values == [0.0, 0.1]
    assert result.strategies == ["DCRD", "D-Tree"]
    for x in result.x_values:
        for strategy in result.strategies:
            assert result.cell(x, strategy).strategy == strategy


def test_sweep_series_extraction():
    configs = {0.0: FAST, 0.1: FAST.with_updates(failure_probability=0.1)}
    result = sweep("test", "Pf", configs, seeds=(1,), strategies=("DCRD",))
    series = result.series("DCRD", "delivery_ratio")
    assert len(series) == 2
    assert all(0.0 <= v <= 1.0 for v in series)


def test_parallel_workers_match_serial_results():
    configs = {0.0: FAST, 0.08: FAST.with_updates(failure_probability=0.08)}
    serial = sweep("s", "pf", configs, seeds=(1, 2), strategies=("DCRD",))
    parallel = sweep(
        "s", "pf", configs, seeds=(1, 2), strategies=("DCRD",), workers=2
    )
    for x in serial.x_values:
        assert (
            serial.cell(x, "DCRD").as_dict() == parallel.cell(x, "DCRD").as_dict()
        )


def test_parallel_repetitions_match_serial():
    serial = run_repetitions(FAST, "DCRD", seeds=(1, 2))
    parallel = run_repetitions(FAST, "DCRD", seeds=(1, 2), workers=2)
    assert serial.as_dict() == parallel.as_dict()


@pytest.mark.parametrize("workers", [0, -1])
def test_run_repetitions_rejects_bad_worker_counts(workers):
    with pytest.raises(ConfigurationError, match="workers"):
        run_repetitions(FAST, "DCRD", seeds=(1,), workers=workers)


@pytest.mark.parametrize("workers", [0, -3])
def test_sweep_rejects_bad_worker_counts(workers):
    with pytest.raises(ConfigurationError, match="workers"):
        sweep("s", "pf", {0.0: FAST}, seeds=(1,), strategies=("DCRD",),
              workers=workers)


def test_worker_failure_names_the_failing_cell():
    # An unknown strategy makes the remote cell raise; the pool must not
    # surface a bare pickled traceback but the annotated wrapper.
    with pytest.raises(SweepWorkerError) as excinfo:
        run_repetitions(FAST, "NoSuchStrategy", seeds=(1, 2), workers=2)
    error = excinfo.value
    assert error.strategy == "NoSuchStrategy"
    assert error.seed in (1, 2)
    assert error.config == FAST
    assert "NoSuchStrategy" in str(error)
    assert error.__cause__ is not None


def test_sweep_worker_failure_names_the_failing_cell():
    configs = {0.0: FAST}
    with pytest.raises(SweepWorkerError) as excinfo:
        sweep("s", "pf", configs, seeds=(1,), strategies=("NoSuchStrategy",),
              workers=2)
    assert excinfo.value.strategy == "NoSuchStrategy"
    assert excinfo.value.seed == 1


def test_sweep_metrics_table_layout():
    configs = {0.0: FAST}
    result = sweep("test", "Pf", configs, seeds=(1,), strategies=("DCRD", "ORACLE"))
    rows = result.metrics_table("qos_delivery_ratio")
    assert len(rows) == 1
    assert rows[0][0] == 0.0
    assert len(rows[0]) == 3

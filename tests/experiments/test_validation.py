"""Tests for the paper-claims verifier."""

import pytest

from repro.experiments import figures
from repro.experiments.validation import (
    FIGURE_CHECKS,
    ClaimOutcome,
    render_outcomes,
    verify_figure,
)


def test_unknown_figure_rejected():
    with pytest.raises(KeyError):
        verify_figure("figure99", None)


def test_registry_covers_main_figures():
    assert {"figure2", "figure3", "figure4", "figure5", "figure6", "figure8"} <= set(
        FIGURE_CHECKS
    )


def test_render_outcomes_format():
    outcomes = [
        ClaimOutcome(figure="figure2", claim="x", passed=True, detail="ok"),
        ClaimOutcome(figure="figure2", claim="y", passed=False, detail="bad"),
    ]
    text = render_outcomes(outcomes)
    assert "[PASS]" in text and "[FAIL]" in text


def test_figure2_claims_verify_at_small_scale():
    result = figures.figure2(duration=15.0, seeds=(0,))
    outcomes = verify_figure("figure2", result)
    failed = [o for o in outcomes if not o.passed]
    assert failed == [], render_outcomes(outcomes)


def test_figure6_claims_verify_at_small_scale():
    result = figures.figure6(duration=15.0, seeds=(0,))
    outcomes = verify_figure("figure6", result)
    failed = [o for o in outcomes if not o.passed]
    assert failed == [], render_outcomes(outcomes)


def test_figure8_claims_verify_at_small_scale():
    results = figures.figure8(duration=15.0, seeds=(0,))
    outcomes = verify_figure("figure8", results)
    failed = [o for o in outcomes if not o.passed]
    assert failed == [], render_outcomes(outcomes)

"""Tests for the design-choice ablations."""

from repro.extensions.ablations import (
    ack_timeout_ablation,
    monitoring_mode_ablation,
)


def test_monitoring_modes_both_run():
    result = monitoring_mode_ablation(duration=5.0, seeds=(0,))
    assert set(result.x_values) == {"analytic", "sampled"}
    for mode in result.x_values:
        summary = result.cell(mode, "DCRD")
        assert summary.delivery_ratio > 0.9


def test_ack_timeout_factor_sweeps():
    result = ack_timeout_ablation(duration=5.0, seeds=(0,), factors=(2.0, 4.0))
    assert result.x_values == [2.0, 4.0]
    for factor in result.x_values:
        assert result.cell(factor, "DCRD").delivery_ratio > 0.95


def test_ack_timeout_factor_below_two_rejected():
    import pytest

    with pytest.raises(ValueError):
        ack_timeout_ablation(duration=5.0, seeds=(0,), factors=(1.0,))

"""Tests for the adaptive (Jacobson/Karn) timeout policy."""

import pytest

from repro.extensions.adaptive import AdaptiveDcrdStrategy, AdaptiveTimeoutPolicy
from repro.util.errors import ConfigurationError
from tests.conftest import build_ctx, make_topology


@pytest.fixture
def ctx():
    return build_ctx(make_topology([(0, 1, 0.010)]))


class TestPolicyMath:
    def test_bootstrap_is_conservative(self, ctx):
        policy = AdaptiveTimeoutPolicy(ctx, initial_rto=0.5)
        # floor (2*0.010 + 0.001 = 0.021) is below the bootstrap value.
        assert policy.timeout(0, 1) == pytest.approx(0.5)

    def test_first_sample_initialises_srtt_and_var(self, ctx):
        policy = AdaptiveTimeoutPolicy(ctx)
        policy.on_sample(0, 1, 0.100)
        # srtt = 0.1, rttvar = 0.05 -> rto = 0.1 + 4*0.05 (+slack)
        assert policy.timeout(0, 1) == pytest.approx(0.301, abs=1e-6)

    def test_stable_rtt_converges_toward_floor(self, ctx):
        policy = AdaptiveTimeoutPolicy(ctx)
        for _ in range(300):
            policy.on_sample(0, 1, 0.020)
        # rttvar decays to ~0; rto clamps at the static floor (0.021).
        assert policy.timeout(0, 1) == pytest.approx(0.021, abs=0.005)

    def test_growing_rtt_raises_timeout(self, ctx):
        policy = AdaptiveTimeoutPolicy(ctx)
        policy.on_sample(0, 1, 0.020)
        settled = policy.timeout(0, 1)
        for rtt in (0.1, 0.2, 0.4, 0.8):
            policy.on_sample(0, 1, rtt)
        assert policy.timeout(0, 1) > settled

    def test_ceiling_bounds_timeout(self, ctx):
        policy = AdaptiveTimeoutPolicy(ctx, ceiling=1.0)
        policy.on_sample(0, 1, 10.0)
        assert policy.timeout(0, 1) == 1.0

    def test_per_direction_state(self, ctx):
        policy = AdaptiveTimeoutPolicy(ctx)
        policy.on_sample(0, 1, 0.5)
        assert policy.timeout(1, 0) == pytest.approx(
            min(max(0.021, policy.initial_rto), policy.ceiling)
        )

    def test_invalid_parameters_rejected(self, ctx):
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutPolicy(ctx, alpha=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutPolicy(ctx, beta=1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutPolicy(ctx, initial_rto=2.0, ceiling=1.0)


class TestStrategyIntegration:
    def test_registered_in_catalogue(self):
        from repro.experiments.runner import STRATEGIES

        assert "DCRD+adaptive" in STRATEGIES

    def test_uses_adaptive_policy(self, ctx):
        strategy = AdaptiveDcrdStrategy(ctx)
        assert strategy.arq.timeout_policy is strategy.rto_policy

    def test_samples_collected_during_run(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import build_environment

        config = ExperimentConfig(duration=5.0, num_topics=3, num_nodes=8)
        env = build_environment(config, "DCRD+adaptive", seed=1)
        env.execute()
        assert env.strategy.rto_policy.samples > 0

    def test_matches_plain_dcrd_without_hazards(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_single

        config = ExperimentConfig(duration=8.0, num_topics=3, loss_rate=0.0)
        plain = run_single(config, "DCRD", seed=4)
        adaptive = run_single(config, "DCRD+adaptive", seed=4)
        assert adaptive.delivery_ratio == plain.delivery_ratio == 1.0
        assert adaptive.data_transmissions == plain.data_transmissions

"""Tests for subscriber churn under live traffic."""

import pytest

from repro.core.forwarding import DcrdStrategy
from repro.experiments.config import ExperimentConfig
from repro.extensions.churn import ChurnProcess, churn_study, run_with_churn
from repro.pubsub.endpoints import PublisherProcess
from repro.pubsub.topics import Subscription
from tests.conftest import (
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)


def line4():
    return make_topology([(0, 1, 0.010), (1, 2, 0.010), (2, 3, 0.010)])


def make_dcrd(topo, workload):
    ctx = build_ctx(topo, workload)
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    return ctx, strategy


class TestIncrementalHooks:
    def test_join_builds_table_and_routes_traffic(self):
        topo = line4()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, strategy = make_dcrd(topo, workload)
        publisher = PublisherProcess(ctx, strategy, workload.topics[0], stop_time=4.5)
        publisher.start()
        # Node 1 joins at t = 2.
        def join():
            sub = Subscription(node=1, deadline=1.0)
            ctx.workload.add_subscription(0, sub)
            strategy.on_subscription_added(0, sub)

        ctx.sim.schedule(2.0, join)
        ctx.sim.run(until=10.0)
        outcomes = ctx.metrics.outcomes()
        new_sub_outcomes = [o for o in outcomes if o.subscriber == 1]
        assert len(new_sub_outcomes) >= 2  # packets published after the join
        assert all(o.delivered for o in new_sub_outcomes)

    def test_leave_stops_expectations_and_cleans_tables(self):
        topo = line4()
        workload = single_topic_workload(0, [(1, 1.0), (3, 1.0)])
        ctx, strategy = make_dcrd(topo, workload)
        publisher = PublisherProcess(ctx, strategy, workload.topics[0], stop_time=4.5)
        publisher.start()

        def leave():
            ctx.workload.remove_subscription(0, 1)
            strategy.on_subscription_removed(0, 1)

        ctx.sim.schedule(2.0, leave)
        ctx.sim.run(until=10.0)
        late_packets = [
            o
            for o in ctx.metrics.outcomes()
            if o.subscriber == 1 and o.publish_time > 2.0
        ]
        assert late_packets == []  # no expectations after the leave
        assert strategy.sending_list(0, 1, 0) == ()

    def test_remaining_subscriber_unaffected_by_peer_leave(self):
        topo = line4()
        workload = single_topic_workload(0, [(1, 1.0), (3, 1.0)])
        ctx, strategy = make_dcrd(topo, workload)
        publisher = PublisherProcess(ctx, strategy, workload.topics[0], stop_time=4.5)
        publisher.start()
        ctx.sim.schedule(2.0, lambda: (
            ctx.workload.remove_subscription(0, 1),
            strategy.on_subscription_removed(0, 1),
        ))
        ctx.sim.run(until=10.0)
        for outcome in ctx.metrics.outcomes():
            if outcome.subscriber == 3:
                assert outcome.delivered


class TestChurnProcess:
    def test_flips_happen_and_population_stays_valid(self):
        config = ExperimentConfig(
            topology_kind="regular", degree=4, num_nodes=12, num_topics=4,
            duration=10.0,
        )
        summary, churn = run_with_churn(config, "DCRD", seed=3, churn_rate=4.0)
        assert churn.joins + churn.leaves > 5
        assert summary.delivery_ratio > 0.95

    def test_every_topic_keeps_a_subscriber(self):
        config = ExperimentConfig(
            topology_kind="regular", degree=4, num_nodes=10, num_topics=3,
            duration=8.0,
        )
        from repro.experiments.runner import build_environment

        env = build_environment(config, "DCRD", seed=1)
        churn = ChurnProcess(env.ctx, env.strategy, rate=10.0, stop_time=8.0)
        churn.start()
        env.execute()
        for spec in env.ctx.workload.topics:
            assert len(spec.subscriptions) >= 1

    def test_tree_strategy_survives_churn(self):
        config = ExperimentConfig(
            topology_kind="regular", degree=4, num_nodes=12, num_topics=4,
            duration=8.0,
        )
        summary, _ = run_with_churn(config, "D-Tree", seed=2, churn_rate=4.0)
        assert summary.delivery_ratio > 0.9

    def test_multipath_strategy_survives_churn(self):
        config = ExperimentConfig(
            topology_kind="regular", degree=4, num_nodes=12, num_topics=4,
            duration=8.0,
        )
        summary, _ = run_with_churn(config, "Multipath", seed=2, churn_rate=4.0)
        assert summary.delivery_ratio > 0.9


class TestChurnStudy:
    def test_axis_and_strategies(self):
        result = churn_study(
            duration=4.0,
            seeds=(0,),
            churn_rates=(0.0, 4.0),
            strategies=("DCRD", "D-Tree"),
        )
        assert result.x_values == [0.0, 4.0]
        for rate in result.x_values:
            assert result.cell(rate, "DCRD").delivery_ratio > 0.9

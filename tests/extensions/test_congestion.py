"""Tests for the congestion study (finite-capacity extension)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.extensions.congestion import congestion_study


def test_study_axis_and_strategies():
    result = congestion_study(
        duration=4.0,
        seeds=(0,),
        publish_intervals=(1.0, 0.25),
        strategies=("DCRD", "D-Tree"),
    )
    assert result.x_values == [1.0, 0.25]
    assert result.strategies == ["DCRD", "D-Tree"]


def test_congestion_degrades_qos_at_high_load():
    base = ExperimentConfig(
        topology_kind="regular",
        degree=5,
        duration=10.0,
        failure_probability=0.0,
        link_service_time=0.02,
        num_topics=8,
    )
    light = run_single(base, "D-Tree", seed=1)
    heavy = run_single(base.with_updates(publish_interval=0.1), "D-Tree", seed=1)
    assert heavy.qos_delivery_ratio < light.qos_delivery_ratio


def test_static_timer_dcrd_collapses_under_congestion():
    # The study's negative result: the paper's static ACK timer undercuts
    # the queued round trip and the retransmit storm melts DCRD down.
    config = ExperimentConfig(
        topology_kind="regular",
        degree=5,
        duration=10.0,
        failure_probability=0.0,
        link_service_time=0.02,
        publish_interval=0.125,
        num_topics=8,
    )
    dcrd = run_single(config, "DCRD", seed=2)
    dtree = run_single(config, "D-Tree", seed=2)
    assert dcrd.qos_delivery_ratio < 0.5 < dtree.qos_delivery_ratio
    assert dcrd.packets_per_subscriber > 5 * dtree.packets_per_subscriber


def test_adaptive_timeout_restores_tree_level_behaviour():
    config = ExperimentConfig(
        topology_kind="regular",
        degree=5,
        duration=10.0,
        failure_probability=0.0,
        link_service_time=0.02,
        publish_interval=0.125,
        num_topics=8,
    )
    adaptive = run_single(config, "DCRD+adaptive", seed=2)
    dtree = run_single(config, "D-Tree", seed=2)
    assert adaptive.qos_delivery_ratio >= dtree.qos_delivery_ratio - 0.02
    assert adaptive.packets_per_subscriber < 1.5 * dtree.packets_per_subscriber


def test_multipath_congests_itself():
    config = ExperimentConfig(
        topology_kind="regular",
        degree=5,
        duration=10.0,
        failure_probability=0.0,
        link_service_time=0.02,
        publish_interval=0.125,
        num_topics=8,
    )
    multipath = run_single(config, "Multipath", seed=2)
    dtree = run_single(config, "D-Tree", seed=2)
    assert multipath.qos_delivery_ratio < dtree.qos_delivery_ratio


def test_infinite_capacity_default_unchanged():
    config = ExperimentConfig(duration=5.0, num_topics=3)
    summary = run_single(config, "DCRD", seed=1)
    assert summary.qos_delivery_ratio == pytest.approx(1.0)

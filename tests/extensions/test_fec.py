"""Tests for the FEC (forward error correction) baseline extension."""

import pytest

from repro.extensions.fec import FecMultipathStrategy, fec_study, select_diverse_paths
from repro.routing.paths import path_links
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)

ALWAYS = (0.0, 1e9)


def triple_diamond():
    # Three link-disjoint routes 0 -> 4 with distinct delays.
    return make_topology(
        [
            (0, 1, 0.010), (1, 4, 0.010),
            (0, 2, 0.020), (2, 4, 0.020),
            (0, 3, 0.030), (3, 4, 0.030),
        ]
    )


def run_once(topo, workload, failures=None, until=10.0, k=2, r=1):
    ctx = build_ctx(topo, workload, failures=failures)

    class Coded(FecMultipathStrategy):
        pass

    Coded.k, Coded.r = k, r
    strategy = Coded(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]
    ctx.metrics.expect(1, 0, 0.0, {s.node: s.deadline for s in spec.subscriptions})
    strategy.publish(spec, msg_id=1)
    ctx.sim.run(until=until)
    return ctx, strategy


class TestPathSelection:
    def test_diverse_paths_prefer_disjoint(self):
        candidates = [[0, 1, 4], [0, 2, 4], [0, 3, 4]]
        chosen = select_diverse_paths(candidates, 3)
        links = [path_links(p) for p in chosen]
        assert links[0] & links[1] == set()
        assert links[0] & links[2] == set()

    def test_exhausted_candidates_repeat(self):
        chosen = select_diverse_paths([[0, 1]], 3)
        assert chosen == [[0, 1], [0, 1], [0, 1]]


class TestDelivery:
    def test_delivery_requires_k_fragments(self):
        # k=2: the first fragment alone must NOT deliver; the second does.
        topo = triple_diamond()
        workload = single_topic_workload(0, [(4, 1.0)])
        ctx, _ = run_once(topo, workload, k=2, r=1)
        outcome = ctx.metrics.outcome(1, 4)
        assert outcome.delivered
        # Fastest path delivers at 20 ms, second at 40 ms: decode at 40 ms.
        assert outcome.delay == pytest.approx(0.040)

    def test_survives_one_path_failure(self):
        topo = triple_diamond()
        failures = ScriptedFailures({(0, 1): [ALWAYS]})
        workload = single_topic_workload(0, [(4, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures, k=2, r=1)
        outcome = ctx.metrics.outcome(1, 4)
        assert outcome.delivered
        assert outcome.delay == pytest.approx(0.060)  # paths 2 and 3 decode

    def test_fails_when_redundancy_exhausted(self):
        topo = triple_diamond()
        failures = ScriptedFailures({(0, 1): [ALWAYS], (0, 2): [ALWAYS]})
        workload = single_topic_workload(0, [(4, 1.0)])
        ctx, strategy = run_once(topo, workload, failures=failures, k=2, r=1)
        assert not ctx.metrics.outcome(1, 4).delivered
        assert strategy.abandoned_fragments == 2

    def test_k1_r1_degenerates_to_multipath_duplicates(self):
        topo = triple_diamond()
        workload = single_topic_workload(0, [(4, 1.0)])
        ctx, _ = run_once(topo, workload, k=1, r=1)
        outcome = ctx.metrics.outcome(1, 4)
        assert outcome.delivered
        assert outcome.delay == pytest.approx(0.020)  # first copy decodes
        assert outcome.duplicates == 1

    def test_traffic_is_n_fragment_paths(self):
        from repro.overlay.links import FrameKind

        topo = triple_diamond()
        workload = single_topic_workload(0, [(4, 1.0)])
        ctx, _ = run_once(topo, workload, k=2, r=1)
        data = [t for t in ctx.network.transmissions if t.kind == FrameKind.DATA]
        assert len(data) == 6  # three 2-hop fragments


class TestStudy:
    def test_registered_in_catalogue(self):
        from repro.experiments.runner import STRATEGIES

        assert "FEC" in STRATEGIES

    def test_study_runs(self):
        result = fec_study(
            duration=4.0,
            seeds=(0,),
            failure_probabilities=(0.0, 0.06),
            strategies=("FEC", "Multipath"),
        )
        assert result.x_values == [0.0, 0.06]
        fec = result.cell(0.0, "FEC")
        multipath = result.cell(0.0, "Multipath")
        # (3, 2) code carries less *volume* redundancy than duplication
        # (fragments are 1/k sized), though it sends more frames.
        assert fec.traffic_per_subscriber < multipath.traffic_per_subscriber
        assert fec.packets_per_subscriber > fec.traffic_per_subscriber

"""Tests for the loss-heterogeneity study and the Theorem 1 ablation."""

import pytest

from repro.core.computation import compute_dr_table
from repro.extensions.heterogeneous import (
    NaiveOrderDcrdStrategy,
    heterogeneity_study,
    reorder_table_by_delay,
)
from repro.overlay.monitor import LinkEstimate
from tests.conftest import build_ctx, make_topology, single_topic_workload


def lossy_diamond_estimates(topology):
    """Fast-but-lossy route via 1, slower-but-clean route via 2."""
    gammas = {(0, 1): 0.5, (1, 3): 0.5, (0, 2): 0.99, (2, 3): 0.99}
    return {
        edge: LinkEstimate(alpha=topology.delay(*edge), gamma=gammas[edge])
        for edge in topology.edges()
    }


def diamond():
    # The lossy route must be clearly faster, so delay-only ordering picks
    # it while Theorem 1's d/r ordering prefers the clean detour.
    return make_topology(
        [(0, 1, 0.005), (1, 3, 0.005), (0, 2, 0.014), (2, 3, 0.014)]
    )


class TestReorder:
    def test_delay_order_differs_from_theorem1(self):
        topo = diamond()
        table = compute_dr_table(
            topo, lossy_diamond_estimates(topo), publisher=0, subscriber=3,
            deadline=1.0,
        )
        # Theorem 1 prefers the clean route (d/r) despite its longer delay.
        assert table.sending_list(0)[0] == 2
        naive = reorder_table_by_delay(table)
        assert naive.sending_list(0)[0] == 1

    def test_reorder_preserves_delivery_ratio(self):
        topo = diamond()
        table = compute_dr_table(
            topo, lossy_diamond_estimates(topo), publisher=0, subscriber=3,
            deadline=1.0,
        )
        naive = reorder_table_by_delay(table)
        for node in topo.nodes:
            assert naive.state(node).r == pytest.approx(table.state(node).r)

    def test_reorder_never_improves_expected_delay(self):
        topo = diamond()
        table = compute_dr_table(
            topo, lossy_diamond_estimates(topo), publisher=0, subscriber=3,
            deadline=1.0,
        )
        naive = reorder_table_by_delay(table)
        for node in topo.nodes:
            if table.state(node).sending_list:
                assert naive.state(node).d >= table.state(node).d - 1e-12


class TestNaiveStrategy:
    def test_registered(self):
        from repro.experiments.runner import STRATEGIES

        assert "DCRD-naive-order" in STRATEGIES

    def test_uses_delay_order_at_runtime(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx = build_ctx(topo, workload)
        # Heterogeneous gammas through per-link loss on the network.
        ctx.network.link_loss_rates.update({(0, 1): 0.5, (1, 3): 0.5})
        ctx.monitor.refresh()
        strategy = NaiveOrderDcrdStrategy(ctx)
        strategy.setup()
        assert strategy.sending_list(0, 3, 0)[0] == 1  # fast-but-lossy first

    def test_theorem1_order_wins_under_heterogeneous_loss(self):
        # Per-seed results are noisy; average a few repetitions. The
        # sharpest signal is traffic: trying clean links first wastes
        # fewer transmissions, so theorem-ordered DCRD always sends less.
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.sweeps import run_repetitions

        config = ExperimentConfig(
            topology_kind="regular",
            degree=5,
            duration=30.0,
            failure_probability=0.0,
            loss_rate_range=(0.0, 0.4),
            num_topics=6,
        )
        seeds = (0, 1, 4)
        theorem = run_repetitions(config, "DCRD", seeds)
        naive = run_repetitions(config, "DCRD-naive-order", seeds)
        assert theorem.qos_delivery_ratio > naive.qos_delivery_ratio
        assert theorem.packets_per_subscriber < naive.packets_per_subscriber
        assert theorem.mean_delay < naive.mean_delay


class TestStudy:
    def test_axis_labels_and_strategies(self):
        result = heterogeneity_study(
            duration=4.0,
            seeds=(0,),
            spreads=((0.1, 0.1), (0.0, 0.2)),
            strategies=("DCRD", "D-Tree"),
        )
        assert result.x_values == ["U[0.10,0.10]", "U[0.00,0.20]"]
        for x in result.x_values:
            assert 0.0 <= result.cell(x, "DCRD").qos_delivery_ratio <= 1.0

"""Tests for the node-failure study (§V extension)."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.extensions.node_failures import node_failure_study


def test_study_axis_and_strategies():
    result = node_failure_study(
        duration=4.0,
        seeds=(0,),
        probabilities=(0.0, 0.05),
        strategies=("DCRD", "D-Tree"),
    )
    assert result.x_values == [0.0, 0.05]
    assert result.strategies == ["DCRD", "D-Tree"]


def test_node_crashes_hurt_delivery():
    base = ExperimentConfig(
        topology_kind="regular",
        degree=6,
        duration=15.0,
        failure_probability=0.0,
        num_topics=5,
    )
    healthy = run_single(base, "DCRD", seed=1)
    crashing = run_single(
        base.with_updates(node_failure_probability=0.2), "DCRD", seed=1
    )
    assert crashing.delivery_ratio < healthy.delivery_ratio


def test_dcrd_degrades_more_gracefully_than_tree_under_crashes():
    config = ExperimentConfig(
        topology_kind="regular",
        degree=6,
        duration=15.0,
        failure_probability=0.0,
        node_failure_probability=0.08,
        num_topics=5,
    )
    dcrd = run_single(config, "DCRD", seed=2)
    dtree = run_single(config, "D-Tree", seed=2)
    assert dcrd.delivery_ratio >= dtree.delivery_ratio

"""Tests for the persistency-mode extension (§III)."""

import pytest

from repro.extensions.persistence import PersistentDcrdStrategy
from repro.util.errors import ConfigurationError
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)


def diamond():
    return make_topology(
        [(0, 1, 0.010), (1, 3, 0.010), (0, 2, 0.020), (2, 3, 0.020)]
    )


def run_once(topo, workload, failures=None, until=60.0, **strategy_kwargs):
    ctx = build_ctx(topo, workload, failures=failures)
    strategy = PersistentDcrdStrategy(ctx, **strategy_kwargs)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]
    ctx.metrics.expect(1, 0, 0.0, {s.node: s.deadline for s in spec.subscriptions})
    strategy.publish(spec, msg_id=1)
    ctx.sim.run(until=until)
    return ctx, strategy


def test_behaves_like_dcrd_when_healthy():
    topo = diamond()
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx, strategy = run_once(topo, workload)
    assert ctx.metrics.outcome(1, 3).delivered
    assert strategy.store.stored == 0


def test_recovers_after_transient_total_outage():
    # Both branches dead for 2 s, then the network heals: plain DCRD drops
    # the packet, the persistency mode delivers it late.
    topo = diamond()
    failures = ScriptedFailures({(0, 1): [(0.0, 2.0)], (0, 2): [(0.0, 2.0)]})
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx, strategy = run_once(topo, workload, failures=failures, retry_backoff=1.0)
    outcome = ctx.metrics.outcome(1, 3)
    assert outcome.delivered
    assert not outcome.on_time  # recovered, but after the deadline
    assert strategy.store.stored == 1
    assert strategy.store.recovered == 1
    assert strategy.still_pending == 0


def test_gives_up_after_retry_budget():
    topo = make_topology([(0, 1, 0.010)])
    failures = ScriptedFailures({(0, 1): [(0.0, 1e9)]})
    workload = single_topic_workload(0, [(1, 1.0)])
    ctx, strategy = run_once(
        topo, workload, failures=failures, retry_backoff=0.5, max_retries=3
    )
    outcome = ctx.metrics.outcome(1, 1)
    assert not outcome.delivered
    assert outcome.gave_up
    assert strategy.store.exhausted == 1
    assert strategy.still_pending == 0
    # Exhausted entries must not be re-persisted by late task failures.
    assert strategy.store.stored == 1


def test_no_duplicate_store_entries_per_destination():
    topo = diamond()
    failures = ScriptedFailures(
        {(0, 1): [(0.0, 5.0)], (0, 2): [(0.0, 5.0)]}
    )
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx, strategy = run_once(topo, workload, failures=failures, retry_backoff=1.0)
    assert strategy.store.stored == 1


def test_invalid_parameters_rejected():
    topo = diamond()
    ctx = build_ctx(topo, single_topic_workload(0, [(3, 1.0)]))
    with pytest.raises(ConfigurationError):
        PersistentDcrdStrategy(ctx, retry_backoff=0.0)
    with pytest.raises(ConfigurationError):
        PersistentDcrdStrategy(ctx, max_retries=0)


def test_registered_in_strategy_catalogue():
    from repro.experiments.runner import STRATEGIES

    assert "DCRD+persist" in STRATEGIES


def test_full_run_dominates_plain_dcrd_on_delivery():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_single

    config = ExperimentConfig(
        topology_kind="regular",
        degree=4,
        num_nodes=12,
        failure_probability=0.15,
        duration=15.0,
        drain=20.0,
        num_topics=4,
    )
    plain = run_single(config, "DCRD", seed=3)
    persistent = run_single(config, "DCRD+persist", seed=3)
    assert persistent.delivery_ratio >= plain.delivery_ratio


def test_traced_custody_journeys_are_complete(tmp_path):
    """Custody events flow through the probe bus into the tracer, so a
    stored-then-redelivered frame has a *complete* journey: the lineage
    link recorded at redelivery stitches the fresh copy to the transfer
    that carried the frame into the storing broker, and ``journey()``
    walks straight through the custody gap back to the publisher.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import build_environment
    from repro.trace import load_jsonl

    config = ExperimentConfig(
        topology_kind="regular",
        degree=4,
        num_nodes=12,
        failure_probability=0.15,
        duration=15.0,
        drain=20.0,
        num_topics=4,
        trace=True,
    )
    env = build_environment(config, "DCRD+persist", seed=1)
    env.execute()
    tracer = env.tracer

    custody = [e for e in tracer.events() if e.kind == "custody"]
    stored = [e for e in custody if e.info["action"] == "stored"]
    redelivered = [e for e in custody if e.info["action"] == "redelivered"]
    assert stored and redelivered  # the run must actually trip persistence

    delivered = {(e.msg, e.node) for e in tracer.events() if e.kind == "deliver"}
    followed = 0
    for event in redelivered:
        pair = (event.msg, event.info["subscriber"])
        if pair not in delivered:
            continue  # retry still in flight (or lost again) at run end
        journey = tracer.journey(*pair)
        # Pre-bus behaviour was complete=False here: the walk hit the
        # fresh copy's parentless transfer and gave up at the broker.
        assert journey.complete
        assert event.node in journey.chain  # passes through the custodian
        followed += 1
    assert followed > 0

    # The custody lineage survives a JSONL round trip.
    path = tmp_path / "persist.jsonl"
    tracer.export_jsonl(path)
    loaded = load_jsonl(str(path))
    for event in redelivered:
        pair = (event.msg, event.info["subscriber"])
        if pair in delivered:
            assert loaded.journey(*pair).chain == tracer.journey(*pair).chain
            assert loaded.journey(*pair).complete

"""Tests for the priority-queueing (EDF) baseline and study."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.extensions.priority import priority_queueing_study


BASE = ExperimentConfig(
    topology_kind="regular",
    degree=5,
    duration=15.0,
    failure_probability=0.0,
    publish_interval=0.125,
    link_service_time=0.02,
    deadline_factor_choices=(4.0, 16.0),
    num_topics=10,
)


def test_pdtree_registered():
    from repro.experiments.runner import STRATEGIES

    assert "P-DTree" in STRATEGIES


def test_pdtree_equals_dtree_on_fifo_links():
    # Priorities are inert without an EDF discipline.
    pdtree = run_single(BASE, "P-DTree", seed=1)
    dtree = run_single(BASE, "D-Tree", seed=1)
    assert pdtree.as_dict() == dtree.as_dict() or (
        pdtree.delivery_ratio == dtree.delivery_ratio
        and pdtree.data_transmissions == dtree.data_transmissions
    )


def test_edf_reordering_helps_at_moderate_load():
    fifo = run_single(BASE, "P-DTree", seed=0)
    edf = run_single(BASE.with_updates(queue_discipline="edf"), "P-DTree", seed=0)
    assert edf.qos_delivery_ratio >= fifo.qos_delivery_ratio
    # Reordering never loses packets.
    assert edf.delivery_ratio == pytest.approx(fifo.delivery_ratio, abs=0.005)


def test_drop_expired_trades_delivery_for_timeliness():
    overload = BASE.with_updates(publish_interval=0.0625)
    edf = run_single(overload.with_updates(queue_discipline="edf"), "P-DTree", seed=0)
    drop = run_single(
        overload.with_updates(queue_discipline="edf", edf_drop_expired=True),
        "P-DTree",
        seed=0,
    )
    assert drop.qos_delivery_ratio > edf.qos_delivery_ratio
    assert drop.delivery_ratio < edf.delivery_ratio


def test_drop_expired_is_noop_without_overload():
    light = BASE.with_updates(publish_interval=1.0)
    plain = run_single(light.with_updates(queue_discipline="edf"), "P-DTree", seed=2)
    drop = run_single(
        light.with_updates(queue_discipline="edf", edf_drop_expired=True),
        "P-DTree",
        seed=2,
    )
    assert drop.delivery_ratio == pytest.approx(plain.delivery_ratio, abs=0.002)


def test_study_returns_one_sweep_per_mode():
    results = priority_queueing_study(
        duration=5.0,
        seeds=(0,),
        publish_intervals=(0.5,),
        modes=("fifo", "edf"),
    )
    assert set(results) == {"fifo", "edf"}
    for result in results.values():
        assert result.strategies == ["P-DTree"]

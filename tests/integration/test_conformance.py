"""Differential conformance: all strategies, one world, cross-checked facts.

Every strategy in the paper's comparison runs against the *same* seeded
world (identical topology, link delays, workload placement, and failure
schedule — the fairness guarantee of :mod:`repro.experiments.runner`),
under the SimSanitizer. The harness then cross-checks facts that hold
*between* strategies rather than within one run:

* world identity — each strategy really did face the identical topology,
  workload, failure schedule, and expected (message, subscriber) pairs;
* ORACLE dominance — in a loss-only world the omniscient ORACLE delivers
  a superset of what either tree baseline delivers, a superset of their
  on-time pairs, and never with a larger delay on a commonly delivered
  pair (time-invariant shortest paths dominate any fixed tree path);
* sanitizer cleanliness — no strategy trips a runtime invariant, and the
  ``sanity.*`` counters confirm the checks actually ran.

The ORACLE checks are deliberately restricted to the loss-only world:
under link *failures* the ORACLE's earliest-arrival search does not wait
out a failure epoch at an intermediate broker, so path dominance across
epochs is not a theorem there.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment

SEED = 11

CORE_STRATEGIES = ("DCRD", "R-Tree", "D-Tree", "ORACLE", "Multipath")

#: Pure-loss world: links never fail, frames are only randomly lost.
LOSS_CONFIG = ExperimentConfig(
    topology_kind="regular",
    degree=5,
    num_nodes=16,
    num_topics=4,
    failure_probability=0.0,
    loss_rate=0.02,
    m=1,
    duration=8.0,
    drain=4.0,
    sanitize=True,
)

#: Failure world: transient link failures on top of mild random loss.
FAILURE_CONFIG = ExperimentConfig(
    topology_kind="regular",
    degree=5,
    num_nodes=16,
    num_topics=4,
    failure_probability=0.08,
    loss_rate=0.01,
    m=2,
    duration=8.0,
    drain=4.0,
    sanitize=True,
)


def _run_world(config):
    """Execute every core strategy against *config*; keep env + summary."""
    runs = {}
    for name in CORE_STRATEGIES:
        env = build_environment(config, name, SEED)
        runs[name] = (env, env.execute())
    return runs


@pytest.fixture(scope="module")
def loss_world():
    return _run_world(LOSS_CONFIG)


@pytest.fixture(scope="module")
def failure_world():
    return _run_world(FAILURE_CONFIG)


def _delivered(env):
    return {
        (o.msg_id, o.subscriber)
        for o in env.ctx.metrics.outcomes()
        if o.delivered
    }


def _on_time(env):
    return {
        (o.msg_id, o.subscriber)
        for o in env.ctx.metrics.outcomes()
        if o.on_time
    }


def _delays(env):
    return {
        (o.msg_id, o.subscriber): o.delay
        for o in env.ctx.metrics.outcomes()
        if o.delivered
    }


def _world_signature(env):
    """Everything strategy-independent about a run's world."""
    topology = env.ctx.topology
    workload = env.ctx.workload
    return {
        "nodes": tuple(topology.nodes),
        "links": {edge: topology.delay(*edge) for edge in topology.edges()},
        "topics": tuple(
            (spec.topic, spec.publisher, tuple(sorted(spec.subscriber_nodes)))
            for spec in workload.topics
        ),
        "pairs": frozenset(
            (o.msg_id, o.subscriber) for o in env.ctx.metrics.outcomes()
        ),
        "deadlines": {
            (o.msg_id, o.subscriber): o.deadline
            for o in env.ctx.metrics.outcomes()
        },
    }


@pytest.mark.parametrize("world_name", ["loss_world", "failure_world"])
def test_identical_worlds_across_strategies(world_name, request):
    """Same seed => every strategy faced byte-identical surroundings."""
    runs = request.getfixturevalue(world_name)
    reference = _world_signature(runs["DCRD"][0])
    for name, (env, summary) in runs.items():
        assert _world_signature(env) == reference, name
        assert summary.messages_published == runs["DCRD"][1].messages_published
        assert (
            summary.expected_deliveries == runs["DCRD"][1].expected_deliveries
        )


@pytest.mark.parametrize("world_name", ["loss_world", "failure_world"])
def test_all_strategies_sanitizer_clean(world_name, request):
    """No strategy violates a runtime invariant; checks actually ran."""
    runs = request.getfixturevalue(world_name)
    for name, (env, summary) in runs.items():
        assert summary.perf["sanity.violations"] == 0, name
        assert summary.perf["sanity.events_checked"] > 0, name
        assert summary.perf["sanity.accepts_checked"] > 0, name
        # Conservation ran: every expected pair got classified somewhere,
        # and the categories sum back up to the expectation count.
        classified = sum(
            value
            for key, value in summary.perf.items()
            if key.startswith("sanity.pairs_")
        )
        assert classified == float(summary.expected_deliveries), name
        assert summary.perf["sanity.pairs_leaked"] == 0, name


@pytest.mark.parametrize("tree", ["R-Tree", "D-Tree"])
def test_oracle_delivery_superset_in_loss_only_world(tree, loss_world):
    """ORACLE delivers (at least) everything a fixed tree delivers."""
    oracle = _delivered(loss_world["ORACLE"][0])
    assert _delivered(loss_world[tree][0]) <= oracle


@pytest.mark.parametrize("tree", ["R-Tree", "D-Tree"])
def test_oracle_on_time_superset_in_loss_only_world(tree, loss_world):
    """ORACLE's on-time pairs dominate any fixed tree's on-time pairs."""
    oracle = _on_time(loss_world["ORACLE"][0])
    assert _on_time(loss_world[tree][0]) <= oracle


@pytest.mark.parametrize("tree", ["R-Tree", "D-Tree"])
def test_oracle_delay_dominance_in_loss_only_world(tree, loss_world):
    """On commonly delivered pairs, ORACLE is never slower than a tree."""
    oracle_delays = _delays(loss_world["ORACLE"][0])
    tree_delays = _delays(loss_world[tree][0])
    common = set(oracle_delays) & set(tree_delays)
    assert common, "worlds too small: no commonly delivered pairs"
    for pair in common:
        assert oracle_delays[pair] <= tree_delays[pair] + 1e-9, pair


def test_reliable_strategies_deliver_everything_in_loss_only_world(loss_world):
    """With no failures, retransmitting strategies approach ratio 1.0.

    ORACLE is lossless by construction; DCRD recovers random losses via
    upstream custody, so both must deliver every expected pair here.
    """
    for name in ("ORACLE", "DCRD"):
        _, summary = loss_world[name]
        assert summary.delivery_ratio == pytest.approx(1.0), name


def test_sanitized_run_matches_unsanitized(loss_world):
    """The sanitizer observes without perturbing: summaries are identical."""
    _, sanitized = loss_world["DCRD"]
    plain = build_environment(
        LOSS_CONFIG.with_updates(sanitize=False), "DCRD", SEED
    ).execute()
    a = dict(sanitized.as_dict())
    b = dict(plain.as_dict())
    # perf legitimately differs: the sanitized run adds sanity.* counters.
    a.pop("perf", None)
    b.pop("perf", None)
    assert a == b

"""Property-based tests of DCRD's delivery guarantee.

The paper claims delivery "as long as there exists a path (without
persistent failures) from the publisher and subscriber". We verify the
strongest testable form: under arbitrary *persistent* link outages, DCRD
delivers exactly when the surviving subgraph still connects publisher and
subscriber, and always terminates.
"""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.forwarding import DcrdStrategy
from repro.overlay.topology import canonical_edge, full_mesh, random_regular
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)

ALWAYS = (0.0, 1e12)


def run_dcrd(topo, publisher, subscriber, dead_edges, deadline=10.0, until=60.0):
    failures = ScriptedFailures({edge: [ALWAYS] for edge in dead_edges})
    workload = single_topic_workload(publisher, [(subscriber, deadline)])
    ctx = build_ctx(topo, workload, failures=failures)
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]
    ctx.metrics.expect(1, 0, 0.0, {subscriber: deadline})
    strategy.publish(spec, msg_id=1)
    ctx.sim.run(until=until)
    return ctx


def surviving_graph(topo, dead_edges):
    graph = nx.Graph()
    graph.add_nodes_from(topo.nodes)
    dead = {canonical_edge(*edge) for edge in dead_edges}
    for edge in topo.edges():
        if edge not in dead:
            graph.add_edge(*edge)
    return graph


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_delivery_iff_survivor_path_exists_in_mesh(rng, data):
    topo = full_mesh(6, rng)
    all_edges = sorted(topo.edges())
    dead = data.draw(
        st.lists(st.sampled_from(all_edges), unique=True, max_size=len(all_edges))
    )
    ctx = run_dcrd(topo, publisher=0, subscriber=5, dead_edges=dead)
    connected = nx.has_path(surviving_graph(topo, dead), 0, 5)
    outcome = ctx.metrics.outcome(1, 5)
    assert outcome.delivered == connected
    # Protocol settles either way (no event storm left behind).
    assert ctx.sim.pending_events == 0


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_delivery_iff_survivor_path_exists_in_sparse_graph(rng, data):
    topo = random_regular(10, 3, rng)
    all_edges = sorted(topo.edges())
    dead = data.draw(st.lists(st.sampled_from(all_edges), unique=True, max_size=8))
    ctx = run_dcrd(topo, publisher=0, subscriber=9, dead_edges=dead)
    connected = nx.has_path(surviving_graph(topo, dead), 0, 9)
    assert ctx.metrics.outcome(1, 9).delivered == connected


def test_delivery_through_forced_long_detour():
    # Ring of 6: cut one side entirely; DCRD must go the long way round.
    topo = make_topology(
        [(i, (i + 1) % 6, 0.010) for i in range(6)]
    )
    ctx = run_dcrd(topo, 0, 3, dead_edges=[(0, 1)])
    outcome = ctx.metrics.outcome(1, 3)
    assert outcome.delivered
    # The long way is 0-5-4-3 after first burning a timeout on 0-1's side?
    # Either direction works; what matters is delivery despite the cut.


def test_bounce_chain_across_multiple_levels():
    # A two-level tree with the only working leaf link far from the first
    # branch tried: forces bounces through intermediate nodes.
    topo = make_topology(
        [
            (0, 1, 0.010),
            (1, 2, 0.010),
            (2, 5, 0.010),
            (0, 3, 0.020),
            (3, 4, 0.020),
            (4, 5, 0.020),
        ]
    )
    # Kill the fast branch deep inside (2-5), so the packet travels
    # 0-1-2, bounces 2->1->0, then succeeds via 3-4-5.
    ctx = run_dcrd(topo, 0, 5, dead_edges=[(2, 5)])
    assert ctx.metrics.outcome(1, 5).delivered
